//! Certain answers over universal solutions, and the redundancy
//! elimination shown at the bottom of Listing 1.

use crate::chase::UniversalSolution;
use crate::equivalence::EquivalenceIndex;
use rps_query::{evaluate_query, GraphPatternQuery, Semantics, UnionQuery};
use rps_rdf::Term;
use std::collections::{BTreeMap, BTreeSet};

/// Answer tuples of a query against an RPS.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnswerSet {
    /// Free-variable names, in projection order.
    pub vars: Vec<String>,
    /// The certain answers (never contain blank nodes).
    pub tuples: BTreeSet<Vec<Term>>,
}

impl AnswerSet {
    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` iff there are no answers.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Removes redundancy induced by equivalence classes (the "Result
    /// without redundancy" of Listing 1): among tuples that are equal
    /// position-wise up to `≡ₑ`, only the lexicographically least
    /// representative is kept.
    pub fn without_redundancy(&self, index: &EquivalenceIndex) -> AnswerSet {
        let mut best: BTreeMap<Vec<Term>, Vec<Term>> = BTreeMap::new();
        for tuple in &self.tuples {
            let key: Vec<Term> = tuple.iter().map(|t| index.canonical_term(t)).collect();
            match best.get(&key) {
                Some(existing) if existing <= tuple => {}
                _ => {
                    best.insert(key, tuple.clone());
                }
            }
        }
        AnswerSet {
            vars: self.vars.clone(),
            tuples: best.into_values().collect(),
        }
    }

    /// Renders the answers as a simple aligned table (for examples and
    /// the benchmark harness).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            &self
                .vars
                .iter()
                .map(|v| format!("?{v}"))
                .collect::<Vec<_>>()
                .join("\t"),
        );
        out.push('\n');
        for tuple in &self.tuples {
            let row: Vec<String> = tuple.iter().map(|t| t.to_string()).collect();
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }
}

/// Evaluates a graph pattern query over a universal solution, yielding
/// the certain answers (Definition 3 + the observation that evaluating
/// `Q_J` drops blank-node tuples automatically).
pub fn certain_answers(solution: &UniversalSolution, query: &GraphPatternQuery) -> AnswerSet {
    let tuples = evaluate_query(&solution.graph, query, Semantics::Certain);
    AnswerSet {
        vars: query
            .free_vars()
            .iter()
            .map(|v| v.name().to_string())
            .collect(),
        tuples,
    }
}

/// Evaluates a UCQ over a universal solution (certain semantics).
pub fn certain_answers_union(solution: &UniversalSolution, query: &UnionQuery) -> AnswerSet {
    let tuples = query.evaluate(&solution.graph, Semantics::Certain);
    AnswerSet {
        vars: query
            .free_vars()
            .iter()
            .map(|v| v.name().to_string())
            .collect(),
        tuples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::RpsChaseStats;
    use crate::mapping::EquivalenceMapping;
    use rps_rdf::Iri;

    fn solution(turtle: &str) -> UniversalSolution {
        UniversalSolution {
            graph: rps_rdf::turtle::parse(turtle).unwrap(),
            stats: RpsChaseStats::default(),
            complete: true,
        }
    }

    fn q_subject() -> GraphPatternQuery {
        GraphPatternQuery::new(
            vec![rps_query::Variable::new("x")],
            rps_query::GraphPattern::triple(
                rps_query::TermOrVar::var("x"),
                rps_query::TermOrVar::iri("p"),
                rps_query::TermOrVar::var("y"),
            ),
        )
    }

    #[test]
    fn blanks_never_appear() {
        let sol = solution("<a> <p> <o> .\n_:b <p> <o> .");
        let ans = certain_answers(&sol, &q_subject());
        assert_eq!(ans.len(), 1);
        assert!(ans.tuples.contains(&vec![Term::iri("a")]));
    }

    #[test]
    fn redundancy_elimination_keeps_least_member() {
        let sol = solution("<a> <p> <o> .\n<b> <p> <o> .\n<z> <p> <o> .");
        let ans = certain_answers(&sol, &q_subject());
        assert_eq!(ans.len(), 3);
        let index = EquivalenceIndex::from_mappings(&[EquivalenceMapping::new(
            Iri::new("a"),
            Iri::new("b"),
        )]);
        let lean = ans.without_redundancy(&index);
        assert_eq!(lean.len(), 2);
        assert!(lean.tuples.contains(&vec![Term::iri("a")]));
        assert!(!lean.tuples.contains(&vec![Term::iri("b")]));
        assert!(lean.tuples.contains(&vec![Term::iri("z")]));
    }

    #[test]
    fn render_is_tab_separated() {
        let sol = solution("<a> <p> <o> .");
        let ans = certain_answers(&sol, &q_subject());
        let text = ans.render();
        assert!(text.starts_with("?x\n"));
        assert!(text.contains("<a>"));
    }

    #[test]
    fn union_answers() {
        let sol = solution("<a> <p> <o> .\n<b> <q> <o> .");
        let u = rps_query::UnionQuery::new(
            vec![rps_query::Variable::new("x")],
            vec![
                rps_query::GraphPattern::triple(
                    rps_query::TermOrVar::var("x"),
                    rps_query::TermOrVar::iri("p"),
                    rps_query::TermOrVar::var("y"),
                ),
                rps_query::GraphPattern::triple(
                    rps_query::TermOrVar::var("x"),
                    rps_query::TermOrVar::iri("q"),
                    rps_query::TermOrVar::var("y"),
                ),
            ],
        );
        let ans = certain_answers_union(&sol, &u);
        assert_eq!(ans.len(), 2);
    }
}
