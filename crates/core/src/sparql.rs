//! SPARQL text on the session façades.
//!
//! `rps_query::sparql` lowers a SPARQL SELECT/ASK query to a list of
//! plain conjunctive queries plus a term-level assembly tail. This
//! module wires that front-end onto [`Session`] and
//! [`FrozenSession`]: each lowered CQ rides the session's *ordinary*
//! prepare/execute pipeline — route resolution, plan cache, rewriting,
//! cost-based join ordering, all unchanged — and the assembly tail
//! combines the answer sets into the final [`SparqlResult`]. Because
//! the tail is shared and deterministic, the same query text answers
//! byte-identically on every session type and route.
//!
//! Prefixed names resolve against the query's own `PREFIX`/`BASE`
//! prologue, falling back to the common well-known namespaces
//! ([`rps_rdf::PrefixMap::common`]).

use crate::error::RpsError;
use crate::session::frozen::FrozenSession;
use crate::session::{PreparedQuery, Session};
use rps_query::sparql::LoweredSparql;
use rps_query::{parse_sparql, SparqlResult};
use rps_rdf::{PrefixMap, Term};
use std::collections::BTreeSet;
use std::sync::Arc;

/// A SPARQL query compiled against a session: the lowered plan recipe
/// plus one prepared conjunctive plan per lowered CQ. Execute it with
/// [`Session::execute_sparql`] / [`FrozenSession::execute_sparql`] on
/// the session that prepared it (the underlying plans are
/// session-bound, exactly like [`PreparedQuery`]).
pub struct PreparedSparql {
    pub(crate) lowered: LoweredSparql,
    pub(crate) plans: Vec<Arc<PreparedQuery>>,
}

impl PreparedSparql {
    /// The number of conjunctive plans behind this query (one per
    /// UNION branch plus one per OPTIONAL block per branch).
    pub fn plan_count(&self) -> usize {
        self.plans.len()
    }

    /// `true` for ASK queries.
    pub fn is_ask(&self) -> bool {
        self.lowered.is_ask()
    }

    /// The output column names, in order (empty for ASK).
    pub fn columns(&self) -> Vec<String> {
        self.lowered.columns()
    }
}

fn lower_text(text: &str) -> Result<LoweredSparql, RpsError> {
    let query = parse_sparql(text, &PrefixMap::common())?;
    Ok(query.lower())
}

impl Session {
    /// Compiles a SPARQL SELECT/ASK query (the subset documented in
    /// [`rps_query::sparql`]: BGPs, OPTIONAL, UNION, FILTER, DISTINCT,
    /// ORDER BY, LIMIT/OFFSET) for repeated execution. Malformed or
    /// out-of-subset text is a typed [`RpsError::Sparql`] with the
    /// offending span — never a panic.
    ///
    /// ```
    /// use rps_core::{EngineConfig, PeerId, RpsBuilder, Session};
    ///
    /// let mut p = PeerId(0);
    /// let system = RpsBuilder::new()
    ///     .peer_turtle(
    ///         "A",
    ///         "<http://a/f1> <http://a/cast> <http://a/p1> .",
    ///         &mut p,
    ///     )
    ///     .unwrap()
    ///     .build();
    /// let mut session = Session::open(system, EngineConfig::default()).unwrap();
    ///
    /// let prepared = session
    ///     .prepare_sparql("SELECT ?f ?who WHERE { ?f <http://a/cast> ?who }")
    ///     .unwrap();
    /// let result = session.execute_sparql(&prepared).unwrap();
    /// let rows = result.rows().unwrap();
    /// assert_eq!(rows.vars, ["f", "who"]);
    /// assert_eq!(rows.rows.len(), 1);
    /// ```
    pub fn prepare_sparql(&mut self, text: &str) -> Result<PreparedSparql, RpsError> {
        let lowered = lower_text(text)?;
        let plans = lowered
            .queries()
            .into_iter()
            .map(|cq| self.prepare(cq).map(Arc::new))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PreparedSparql { lowered, plans })
    }

    /// Executes a prepared SPARQL query: every underlying conjunctive
    /// plan runs through [`Session::execute`], and the term-level tail
    /// (left joins, filters, ordering) assembles the final result.
    pub fn execute_sparql(&mut self, prepared: &PreparedSparql) -> Result<SparqlResult, RpsError> {
        let answers = prepared
            .plans
            .iter()
            .map(|plan| {
                self.execute(plan)
                    .map(|stream| stream.collect::<BTreeSet<Vec<Term>>>())
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(prepared.lowered.assemble(&answers))
    }

    /// Parses, prepares and executes in one call. Prefer
    /// [`Session::prepare_sparql`] + [`Session::execute_sparql`] when
    /// the same query runs repeatedly.
    pub fn answer_sparql(&mut self, text: &str) -> Result<SparqlResult, RpsError> {
        let prepared = self.prepare_sparql(text)?;
        self.execute_sparql(&prepared)
    }
}

impl FrozenSession {
    /// [`Session::prepare_sparql`] on a frozen session: each lowered
    /// CQ goes through the frozen session's bounded plan cache, so hot
    /// SPARQL queries reuse their compiled plans across threads.
    ///
    /// ```
    /// use rps_core::{EngineConfig, PeerId, RpsBuilder, Session};
    ///
    /// let mut p = PeerId(0);
    /// let system = RpsBuilder::new()
    ///     .peer_turtle(
    ///         "A",
    ///         "<http://a/f1> <http://a/cast> <http://a/p1> .",
    ///         &mut p,
    ///     )
    ///     .unwrap()
    ///     .build();
    /// let frozen = Session::open(system, EngineConfig::default())
    ///     .unwrap()
    ///     .freeze()
    ///     .unwrap();
    ///
    /// let ok = frozen
    ///     .answer_sparql("ASK { ?f <http://a/cast> ?who }")
    ///     .unwrap();
    /// assert_eq!(ok.boolean(), Some(true));
    /// ```
    pub fn prepare_sparql(&self, text: &str) -> Result<PreparedSparql, RpsError> {
        let lowered = lower_text(text)?;
        let plans = lowered
            .queries()
            .into_iter()
            .map(|cq| self.prepare(cq))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PreparedSparql { lowered, plans })
    }

    /// Executes a prepared SPARQL query against this frozen session.
    pub fn execute_sparql(&self, prepared: &PreparedSparql) -> Result<SparqlResult, RpsError> {
        let answers = prepared
            .plans
            .iter()
            .map(|plan| {
                self.execute(plan)
                    .map(|stream| stream.collect::<BTreeSet<Vec<Term>>>())
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(prepared.lowered.assemble(&answers))
    }

    /// Parses, prepares and executes in one call.
    pub fn answer_sparql(&self, text: &str) -> Result<SparqlResult, RpsError> {
        let prepared = self.prepare_sparql(text)?;
        self.execute_sparql(&prepared)
    }
}
