//! Equivalence-class machinery for `≡ₑ` mappings.
//!
//! Algorithm 1 saturates equivalence mappings by *copying triples* across
//! equivalent IRIs in all three positions — simple, faithful to the
//! paper, but quadratic in the class size (a class of `k` IRIs with `m`
//! triples each materialises `k·m` variants of every triple).
//!
//! This module adds the engineering fast path used as an ablation in
//! experiment E9: a union-find [`EquivalenceIndex`] with canonical
//! representatives. Instead of saturating, the engine canonicalises the
//! graph and queries, evaluates once, and *expands* answers over class
//! members on demand. Property tests (and
//! [`saturate_naive`] which implements the paper's repair literally)
//! establish that both routes produce identical answer sets.

use crate::mapping::EquivalenceMapping;
use rps_rdf::{Graph, Iri, Term};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Union-find over IRIs with lexicographically-least canonical
/// representatives.
#[derive(Clone, Debug, Default)]
pub struct EquivalenceIndex {
    parent: HashMap<Iri, Iri>,
    /// Canonical representative per class root (least member).
    canon: HashMap<Iri, Iri>,
    /// Members per canonical representative.
    members: BTreeMap<Iri, BTreeSet<Iri>>,
}

impl EquivalenceIndex {
    /// Builds the index from a set of equivalence mappings.
    pub fn from_mappings(mappings: &[EquivalenceMapping]) -> Self {
        let mut idx = EquivalenceIndex::default();
        for m in mappings {
            idx.union(&m.left, &m.right);
        }
        idx.rebuild_canonical();
        idx
    }

    fn find_root(&mut self, iri: &Iri) -> Iri {
        let mut cur = iri.clone();
        let mut path = Vec::new();
        while let Some(p) = self.parent.get(&cur) {
            if p == &cur {
                break;
            }
            path.push(cur.clone());
            cur = p.clone();
        }
        for node in path {
            self.parent.insert(node, cur.clone());
        }
        cur
    }

    fn union(&mut self, a: &Iri, b: &Iri) {
        self.parent.entry(a.clone()).or_insert_with(|| a.clone());
        self.parent.entry(b.clone()).or_insert_with(|| b.clone());
        let ra = self.find_root(a);
        let rb = self.find_root(b);
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }

    fn rebuild_canonical(&mut self) {
        let keys: Vec<Iri> = self.parent.keys().cloned().collect();
        let mut classes: BTreeMap<Iri, BTreeSet<Iri>> = BTreeMap::new();
        for k in keys {
            let root = self.find_root(&k);
            classes.entry(root).or_default().insert(k);
        }
        self.canon.clear();
        self.members.clear();
        for (root, members) in classes {
            let canon = members.iter().next().expect("non-empty class").clone();
            for m in &members {
                self.canon.insert(m.clone(), canon.clone());
            }
            self.canon.insert(root, canon.clone());
            self.members.insert(canon, members);
        }
    }

    /// The canonical representative of an IRI (itself if unmapped).
    pub fn canonical(&self, iri: &Iri) -> Iri {
        self.canon.get(iri).cloned().unwrap_or_else(|| iri.clone())
    }

    /// The canonical form of a term (non-IRIs are untouched).
    pub fn canonical_term(&self, term: &Term) -> Term {
        match term {
            Term::Iri(iri) => Term::Iri(self.canonical(iri)),
            other => other.clone(),
        }
    }

    /// `true` iff the two IRIs are in the same class.
    pub fn same(&self, a: &Iri, b: &Iri) -> bool {
        self.canonical(a) == self.canonical(b)
    }

    /// The members of an IRI's class (singleton if unmapped).
    pub fn class_of(&self, iri: &Iri) -> BTreeSet<Iri> {
        let canon = self.canonical(iri);
        self.members
            .get(&canon)
            .cloned()
            .unwrap_or_else(|| [iri.clone()].into_iter().collect())
    }

    /// The members of a term's class (singleton for non-IRIs).
    pub fn class_of_term(&self, term: &Term) -> BTreeSet<Term> {
        match term {
            Term::Iri(iri) => self.class_of(iri).into_iter().map(Term::Iri).collect(),
            other => [other.clone()].into_iter().collect(),
        }
    }

    /// Iterates over non-trivial classes `(canonical, members)`.
    pub fn classes(&self) -> impl Iterator<Item = (&Iri, &BTreeSet<Iri>)> {
        self.members.iter().filter(|(_, m)| m.len() > 1)
    }

    /// Number of non-trivial classes.
    pub fn class_count(&self) -> usize {
        self.classes().count()
    }
}

/// Saturates a graph under equivalence mappings exactly as Algorithm 1
/// does: copy triples across each `c ≡ c'` pair in all three positions,
/// both directions, until fixpoint. Returns the saturated graph.
pub fn saturate_naive(graph: &Graph, mappings: &[EquivalenceMapping]) -> Graph {
    let mut g = graph.clone();
    loop {
        let mut added = 0usize;
        for eq in mappings {
            let c = Term::Iri(eq.left.clone());
            let cp = Term::Iri(eq.right.clone());
            for pos in rps_rdf::TriplePosition::ALL {
                added += copy_position(&mut g, &c, &cp, pos);
                added += copy_position(&mut g, &cp, &c, pos);
            }
        }
        if added == 0 {
            return g;
        }
    }
}

fn copy_position(graph: &mut Graph, from: &Term, to: &Term, pos: rps_rdf::TriplePosition) -> usize {
    let Some(from_id) = graph.term_id(from) else {
        return 0;
    };
    let (s, p, o) = match pos {
        rps_rdf::TriplePosition::Subject => (Some(from_id), None, None),
        rps_rdf::TriplePosition::Predicate => (None, Some(from_id), None),
        rps_rdf::TriplePosition::Object => (None, None, Some(from_id)),
    };
    let matches: Vec<_> = graph.match_ids(s, p, o).collect();
    if matches.is_empty() {
        return 0;
    }
    let to_id = graph.intern(to);
    let mut added = 0;
    for t in matches {
        if graph.insert_ids(t.with(pos, to_id)) {
            added += 1;
        }
    }
    added
}

/// Rewrites a graph onto canonical representatives: every IRI is replaced
/// by its class canonical. The result is the quotient graph the fast
/// path evaluates against.
pub fn canonicalize_graph(graph: &Graph, index: &EquivalenceIndex) -> Graph {
    let mut out = Graph::new();
    // Memoise per distinct source term id: each term is canonicalised and
    // re-interned once, not once per occurrence.
    let mut memo: Vec<Option<rps_rdf::TermId>> = vec![None; graph.dict().len()];
    let mut map = |id: rps_rdf::TermId, out: &mut Graph| match memo[id.index()] {
        Some(mapped) => mapped,
        None => {
            let mapped = out.intern(&index.canonical_term(graph.term(id)));
            memo[id.index()] = Some(mapped);
            mapped
        }
    };
    for t in graph.iter_ids() {
        let s = map(t.s, &mut out);
        let p = map(t.p, &mut out);
        let o = map(t.o, &mut out);
        out.insert_ids(rps_rdf::IdTriple::new(s, p, o));
    }
    out
}

/// Rewrites a graph pattern query's constants onto canonical
/// representatives (the query-side half of the quotient construction).
pub fn canonicalize_query(
    query: &rps_query::GraphPatternQuery,
    index: &EquivalenceIndex,
) -> rps_query::GraphPatternQuery {
    let pattern = rps_query::GraphPattern::from_patterns(
        query
            .pattern()
            .patterns()
            .iter()
            .map(|tp| {
                let fix = |tv: &rps_query::TermOrVar| match tv {
                    rps_query::TermOrVar::Term(t) => {
                        rps_query::TermOrVar::Term(index.canonical_term(t))
                    }
                    v => v.clone(),
                };
                rps_query::TriplePattern::new(fix(&tp.s), fix(&tp.p), fix(&tp.o))
            })
            .collect(),
    );
    rps_query::GraphPatternQuery::new(query.free_vars().to_vec(), pattern)
}

/// Expands answer tuples over equivalence classes: each position ranges
/// over the class of its term, producing the cross product. This is the
/// inverse of canonicalisation: evaluating a canonicalised query over
/// the canonical graph and expanding yields exactly the answers over the
/// naively saturated graph.
pub fn expand_answers(
    answers: &BTreeSet<Vec<Term>>,
    index: &EquivalenceIndex,
) -> BTreeSet<Vec<Term>> {
    let mut out = BTreeSet::new();
    for tuple in answers {
        let choices: Vec<Vec<Term>> = tuple
            .iter()
            .map(|t| index.class_of_term(t).into_iter().collect())
            .collect();
        cross_product(&choices, &mut Vec::new(), &mut out);
    }
    out
}

fn cross_product(choices: &[Vec<Term>], prefix: &mut Vec<Term>, out: &mut BTreeSet<Vec<Term>>) {
    if prefix.len() == choices.len() {
        out.insert(prefix.clone());
        return;
    }
    for t in &choices[prefix.len()] {
        prefix.push(t.clone());
        cross_product(choices, prefix, out);
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rps_query::{
        evaluate_query, GraphPattern, GraphPatternQuery, Semantics, TermOrVar, Variable,
    };
    use rps_rdf::Triple;

    fn eq(a: &str, b: &str) -> EquivalenceMapping {
        EquivalenceMapping::new(Iri::new(a), Iri::new(b))
    }

    #[test]
    fn union_find_transitivity() {
        let idx = EquivalenceIndex::from_mappings(&[eq("b", "a"), eq("b", "c"), eq("x", "y")]);
        assert!(idx.same(&Iri::new("a"), &Iri::new("c")));
        assert!(!idx.same(&Iri::new("a"), &Iri::new("x")));
        assert_eq!(idx.canonical(&Iri::new("c")), Iri::new("a"));
        assert_eq!(idx.class_of(&Iri::new("b")).len(), 3);
        assert_eq!(idx.class_count(), 2);
        // Unmapped IRIs are their own canonical singleton class.
        assert_eq!(idx.canonical(&Iri::new("zzz")), Iri::new("zzz"));
        assert_eq!(idx.class_of(&Iri::new("zzz")).len(), 1);
    }

    #[test]
    fn naive_saturation_fixpoint() {
        let g = rps_rdf::turtle::parse("<a> <p> <o> .").unwrap();
        let sat = saturate_naive(&g, &[eq("a", "b"), eq("b", "c")]);
        // a, b, c each as subject → 3 triples.
        assert_eq!(sat.len(), 3);
        assert!(sat.contains(&Triple::new(Term::iri("c"), Term::iri("p"), Term::iri("o")).unwrap()));
    }

    #[test]
    fn canonical_route_equals_naive_route() {
        let g = rps_rdf::turtle::parse(
            "<a> <p> <o> .\n<x> <a> <y> .\n<m> <q> <a2> .\n<other> <p> <o2> .",
        )
        .unwrap();
        let mappings = [eq("a", "a2"), eq("o", "o2")];
        let index = EquivalenceIndex::from_mappings(&mappings);

        // Query: q(s) <- (s, p, o_var) with constant p.
        let q = GraphPatternQuery::new(
            vec![Variable::new("s"), Variable::new("v")],
            GraphPattern::triple(
                TermOrVar::var("s"),
                TermOrVar::iri("p"),
                TermOrVar::var("v"),
            ),
        );
        // Naive route.
        let naive = evaluate_query(&saturate_naive(&g, &mappings), &q, Semantics::Star);
        // Canonical route: canonicalise graph AND query constants, then
        // expand.
        let canon_graph = canonicalize_graph(&g, &index);
        let canon_q = GraphPatternQuery::new(
            q.free_vars().to_vec(),
            q.pattern().substitute(&|_| None).clone(),
        ); // the query has no IRI constants needing canonicalisation except p (unmapped)
        let canon_answers = evaluate_query(&canon_graph, &canon_q, Semantics::Star);
        let expanded = expand_answers(&canon_answers, &index);
        assert_eq!(naive, expanded);
    }

    #[test]
    fn expansion_is_cross_product() {
        let index = EquivalenceIndex::from_mappings(&[eq("a", "b")]);
        let answers: BTreeSet<Vec<Term>> =
            [vec![Term::iri("a"), Term::iri("a")]].into_iter().collect();
        let expanded = expand_answers(&answers, &index);
        assert_eq!(expanded.len(), 4);
    }

    #[test]
    fn canonicalize_graph_shrinks() {
        let g = rps_rdf::turtle::parse("<a> <p> <o> .\n<b> <p> <o> .").unwrap();
        let index = EquivalenceIndex::from_mappings(&[eq("a", "b")]);
        let c = canonicalize_graph(&g, &index);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn literals_are_never_merged() {
        let index = EquivalenceIndex::from_mappings(&[eq("a", "b")]);
        let lit = Term::literal("a");
        assert_eq!(index.canonical_term(&lit), lit);
        assert_eq!(index.class_of_term(&lit).len(), 1);
    }
}
