//! # rps-core — RDF Peer Systems
//!
//! The primary contribution of *Peer-to-Peer Semantic Integration of
//! Linked Data* (Dimartino, Calì, Poulovassilis, Wood; EDBT/ICDT 2015
//! workshops): a peer-to-peer data-integration framework for Linked Data
//! with
//!
//! * **peers** carrying peer schemas and stored RDF databases
//!   ([`peer`]),
//! * **graph mapping assertions** `Q ⇝ Q'` and **equivalence mappings**
//!   `c ≡ₑ c'` ([`mapping`]), assembled into systems `P = (S, G, E)`
//!   ([`system`]),
//! * **Algorithm 1** — the chase producing a universal solution, over
//!   which certain answers are evaluated ([`chase`], [`answers`]);
//!   Theorem 1 (PTIME data complexity) is exercised by the `rps-bench`
//!   scaling experiments,
//! * the **Section 3 reduction** to relational data exchange
//!   ([`encode`]),
//! * the **Section 4 rewriting** machinery — classification-driven UCQ
//!   rewriting (Proposition 2), the Boolean certain-answer procedure of
//!   Example 3 / Listing 2, and the non-FO-rewritability witness of
//!   Proposition 3 ([`rewriting`]),
//! * a union-find fast path for equivalence saturation used as an
//!   engineering ablation ([`equivalence`]),
//! * the unified answering façade — [`session::Session`],
//!   [`session::PreparedQuery`], streaming [`session::AnswerStream`]
//!   results and the typed [`error::RpsError`] — plus the legacy
//!   [`engine::RpsEngine`] shim kept for its historical contract.

#![warn(missing_docs)]

pub mod answers;
pub mod chase;
pub mod datalog_route;
pub mod discovery;
pub mod encode;
pub mod engine;
pub mod equivalence;
pub mod error;
pub mod fault;
pub mod live;
pub mod mapping;
pub mod peer;
pub mod rewriting;
pub mod session;
pub mod sparql;
pub mod system;

pub use answers::{certain_answers, certain_answers_union, AnswerSet};
pub use chase::{
    chase_system, is_solution, FiringMode, RpsChaseConfig, RpsChaseStats, UniversalSolution,
};
pub use datalog_route::DatalogEngine;
pub use discovery::{
    discover, evaluate as evaluate_discovery, Candidate, DiscoveryConfig, DiscoveryQuality,
};
pub use encode::{
    encode_system, graph_as_tt, graph_as_tt_mapped, query_to_cq, DataExchange, Encoder,
};
pub use engine::{AnswerRoute, RpsEngine};
pub use equivalence::{canonicalize_graph, expand_answers, saturate_naive, EquivalenceIndex};
pub use error::RpsError;
pub use fault::{splitmix64, FailureCause, FailurePolicy, RetryPolicy};
pub use live::{LivePlan, LiveReader, LiveSession, UpdateBatch};
pub use mapping::{EquivalenceMapping, GraphMappingAssertion, MappingError};
pub use peer::{Peer, PeerId, PeerValidationError};
pub use rewriting::{cq_to_pattern, RpsRewriter, RpsRewriting};
pub use rps_query::{JoinOrder, SparqlError, SparqlResult, SparqlRows};
pub use session::{
    canonical_plan_key, AnswerStream, EngineConfig, ExecConfig, ExecRoute, FrozenSession,
    PlanCache, PlanCacheStats, PreparedQuery, Session, Strategy, DEFAULT_PLAN_CACHE_CAPACITY,
};
pub use sparql::PreparedSparql;
pub use system::{RdfPeerSystem, RpsBuilder, SystemValidationError};
