//! Section 4: query rewriting for RPSs.
//!
//! The rewriter encodes the system's mappings as TGDs (dropping the `rt`
//! guards, which is lossless for blank-node-free sources — the paper's
//! own simplification), classifies them (Proposition 2: linear / sticky /
//! sticky-join sets admit a perfect UCQ rewriting), expands the query
//! with the `rps-tgd` rewriting engine, and evaluates the union directly
//! over the stored database.
//!
//! It also implements the Example 3 / Listing 2 procedure literally:
//! deciding whether a tuple is a certain answer by substituting it into
//! the query, rewriting the resulting Boolean query into a UNION of ASKs,
//! and evaluating that over the sources.

use crate::answers::AnswerSet;
use crate::encode::{
    encode_system, graph_as_tt, graph_as_tt_mapped, query_to_cq, DataExchange, Encoder,
};
use crate::system::RdfPeerSystem;
use rps_query::{
    GraphPattern, GraphPatternQuery, PlanSlot, PreparedQueryIds, TermOrVar, UnionQuery, Variable,
};
use rps_rdf::{Graph, Term, TermId};
use rps_tgd::{AtomArg, Classification, Cq, IdArg, IdCq, IdTgdSet, Instance, RewriteConfig, Tgd};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Which instance dictionary a rewriting's id-CQs were interned against
/// (ids are only meaningful relative to their dictionary).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum RewriteSpace {
    /// The canonical stored database (`rewrite_canonical`).
    Canon,
    /// The raw stored database (`rewrite`, the paper-verbatim route).
    Pure,
}

/// A rewriting of an RPS query.
#[derive(Clone, Debug)]
pub struct RpsRewriting {
    /// The union of relational CQs over `tt` (decoded, canonical — the
    /// display / federation form of `id_cqs`).
    pub cqs: Vec<Cq>,
    /// The id-level union the engine actually produced and evaluates
    /// (empty for the retained naive oracle path, which falls back to
    /// string-level evaluation).
    pub(crate) id_cqs: Vec<IdCq>,
    /// Which of the rewriter's instances minted `id_cqs`' ids.
    pub(crate) space: RewriteSpace,
    /// `true` iff the expansion reached a fixpoint — together with an
    /// FO-rewritable classification this makes the union perfect.
    pub complete: bool,
    /// Number of CQs explored during expansion.
    pub explored: usize,
}

impl RpsRewriting {
    /// Decodes the union back to RDF-level graph patterns for display
    /// (the UNION query of Listing 2). CQs with non-`tt` atoms are
    /// skipped, and each branch's head variables are renamed back to the
    /// requested names. Branches whose head was specialised to a
    /// constant are skipped here (use [`Self::branches`] for evaluation).
    pub fn to_union_query(&self, head: &[Variable], encoder: &Encoder) -> UnionQuery {
        let mut union = UnionQuery::new(head.to_vec(), Vec::new());
        for (gp, template) in self.branches(encoder) {
            if template.iter().any(|t| matches!(t, TermOrVar::Term(_))) {
                continue;
            }
            // Rename the branch's head variables to the requested names,
            // avoiding collisions by prefixing every other variable.
            let head_names: Vec<Variable> = template
                .iter()
                .map(|t| match t {
                    TermOrVar::Var(v) => v.clone(),
                    TermOrVar::Term(_) => unreachable!("filtered above"),
                })
                .collect();
            let mut out = rps_query::GraphPattern::new();
            for tp in gp.patterns() {
                let fix = |tv: &TermOrVar| -> TermOrVar {
                    match tv {
                        TermOrVar::Var(v) => {
                            if let Some(i) = head_names.iter().position(|h| h == v) {
                                TermOrVar::Var(head[i].clone())
                            } else {
                                TermOrVar::Var(Variable::new(format!("b_{}", v.name())))
                            }
                        }
                        other => other.clone(),
                    }
                };
                out.push(rps_query::TriplePattern::new(
                    fix(&tp.s),
                    fix(&tp.p),
                    fix(&tp.o),
                ));
            }
            union.add_branch(out);
        }
        union
    }

    /// Decodes every CQ of the union into an RDF-level `(pattern, head
    /// template)` pair for evaluation. Head templates may contain
    /// constants when rewriting specialised an answer position.
    pub fn branches(&self, encoder: &Encoder) -> Vec<(GraphPattern, Vec<TermOrVar>)> {
        let mut out = Vec::new();
        for cq in &self.cqs {
            let Some(gp) = cq_to_pattern(cq, encoder) else {
                continue;
            };
            let template: Vec<TermOrVar> = cq
                .head
                .iter()
                .map(|arg| match arg {
                    AtomArg::Var(v) => TermOrVar::Var(Variable::new(v.to_string())),
                    AtomArg::Const(c) => {
                        TermOrVar::Term(encoder.decode(&rps_tgd::GroundTerm::Const(c.clone())))
                    }
                    AtomArg::Null(n) => {
                        TermOrVar::Term(encoder.decode(&rps_tgd::GroundTerm::Null(*n)))
                    }
                })
                .collect();
            out.push((gp, template));
        }
        out
    }
}

/// One UCQ branch compiled for execution over the canonical stored
/// graph (see `RpsRewriter::compile_branches`): an id-level
/// `rps_query` plan plus the head template interleaving projected
/// variables with constants the rewriting specialised. Crate-internal:
/// the plans' term ids are only meaningful against the rewriter's
/// canonical graph, so `Session` is the one consumer.
pub(crate) struct RewrittenBranch {
    /// The prepared id-level plan (evaluated against
    /// [`RpsRewriter::canon_graph`]).
    pub(crate) plan: PreparedQueryIds,
    /// Head template, one entry per answer position: `None` consumes
    /// the next projected variable of a result tuple, `Some(term)`
    /// injects a constant.
    pub(crate) head: Vec<Option<Term>>,
}

/// Decodes a relational CQ over `tt` into an RDF graph pattern.
pub fn cq_to_pattern(cq: &Cq, encoder: &Encoder) -> Option<GraphPattern> {
    let mut gp = GraphPattern::new();
    for atom in &cq.body {
        if atom.pred.as_ref() != "tt" || atom.args.len() != 3 {
            return None;
        }
        let decode_arg = |arg: &AtomArg| -> TermOrVar {
            match arg {
                AtomArg::Var(v) => TermOrVar::Var(Variable::new(v.to_string())),
                AtomArg::Const(c) => {
                    TermOrVar::Term(encoder.decode(&rps_tgd::GroundTerm::Const(c.clone())))
                }
                AtomArg::Null(n) => TermOrVar::Term(encoder.decode(&rps_tgd::GroundTerm::Null(*n))),
            }
        };
        gp.push(rps_query::TriplePattern::new(
            decode_arg(&atom.args[0]),
            decode_arg(&atom.args[1]),
            decode_arg(&atom.args[2]),
        ));
    }
    Some(gp)
}

/// The Section 4 rewriter for one system.
///
/// Two routes are provided:
///
/// * the **pure** route feeds every dependency — graph-mapping TGDs *and*
///   the six-per-mapping equivalence TGDs — to the generic rewriting
///   engine. This is the paper's construction verbatim (Listing 2), but
///   the perfect UCQ grows multiplicatively in the number of equivalent
///   constants per query position;
/// * the **combined** route (the default for [`Self::answers`]) realises
///   the paper's future-work item 1 ("queries are rewritten according to
///   some of the dependencies only"): equivalence mappings are handled by
///   a union-find *quotient* — query constants, mapping constants and the
///   stored database are canonicalised, only the graph-mapping TGDs are
///   rewritten, and answers are expanded back over the classes. Property
///   tests establish both routes agree with the chase.
pub struct RpsRewriter {
    exchange: DataExchange,
    /// Full TGD set for the pure route (GMA + equivalence TGDs).
    tgds: Vec<Tgd>,
    /// The stored database loaded as `tt` facts.
    stored_tt: Instance,
    classification: Classification,
    /// Union-find over the system's equivalence mappings.
    index: crate::equivalence::EquivalenceIndex,
    /// Canonicalised graph-mapping TGDs (combined route).
    canon_gma_tgds: Vec<Tgd>,
    /// The canonicalised stored database as `tt` facts.
    canon_stored_tt: Instance,
    /// The canonicalised stored database as an RDF graph — the
    /// evaluation substrate for [`Self::compile_branches`] plans.
    /// `Arc`-shared and sealed at build time so compiled plans (and the
    /// frozen sessions of `rps-core`/`rps-p2p`) can evaluate against it
    /// concurrently without holding the rewriter.
    canon_graph: Arc<Graph>,
    /// `canon_stored_tt` value id → `canon_graph` term id, seeded from
    /// the encoding pass and extended lazily for query constants.
    val_to_term: Vec<Option<TermId>>,
    /// The canonical GMA TGDs compiled for id-level rewriting (built on
    /// first use; ids live in `canon_stored_tt`'s dictionaries).
    canon_tgds_id: Option<IdTgdSet>,
    /// The full TGD set compiled for the pure route (ids live in
    /// `stored_tt`'s dictionaries).
    pure_tgds_id: Option<IdTgdSet>,
}

impl RpsRewriter {
    /// Builds a rewriter from a system.
    pub fn new(system: &RdfPeerSystem) -> Self {
        let mut exchange = encode_system(system);
        let mut tgds = exchange.mapping_tgds_unguarded.clone();
        tgds.extend(exchange.equivalence_tgds.clone());
        let classification = Classification::of(&tgds);
        let stored = system.stored_database();
        let stored_tt = graph_as_tt(&stored, &mut exchange.encoder);

        let index = crate::equivalence::EquivalenceIndex::from_mappings(system.equivalences());
        let canon_gma_tgds: Vec<Tgd> = system
            .assertions()
            .iter()
            .map(|gma| {
                let premise = crate::equivalence::canonicalize_query(&gma.premise, &index);
                let conclusion = crate::equivalence::canonicalize_query(&gma.conclusion, &index);
                crate::encode::gma_tgd_unguarded(&premise, &conclusion, &mut exchange.encoder)
            })
            .collect();
        let mut canon_graph = crate::equivalence::canonicalize_graph(&stored, &index);
        // The canonical graph never changes after this point: seal it so
        // branch-plan scans merge immutable runs only.
        canon_graph.seal();
        let (canon_stored_tt, term_to_val) =
            graph_as_tt_mapped(&canon_graph, &mut exchange.encoder);
        // Invert the encoding map so id-CQ values translate to graph
        // term ids by array lookup.
        let mut val_to_term = vec![None; canon_stored_tt.values().len()];
        for (ti, val) in term_to_val.iter().enumerate() {
            if let Some(v) = val {
                val_to_term[v.index()] = Some(TermId(ti as u32));
            }
        }

        RpsRewriter {
            exchange,
            tgds,
            stored_tt,
            classification,
            index,
            canon_gma_tgds,
            canon_stored_tt,
            canon_graph: Arc::new(canon_graph),
            val_to_term,
            canon_tgds_id: None,
            pure_tgds_id: None,
        }
    }

    /// The union-find equivalence index of the system.
    pub fn index(&self) -> &crate::equivalence::EquivalenceIndex {
        &self.index
    }

    /// The shared id-level pipeline behind both routes: compile the TGD
    /// set into `cache` on first use, intern the query against `inst`,
    /// run the pruned id-level expansion, and decode the union once.
    /// An associated function (not a method) so callers can hand in
    /// disjoint field borrows.
    fn rewrite_in_space(
        cq: &Cq,
        cfg: &RewriteConfig,
        space: RewriteSpace,
        tgd_src: &[Tgd],
        inst: &mut Instance,
        cache: &mut Option<IdTgdSet>,
    ) -> RpsRewriting {
        if cache.is_none() {
            *cache = Some(IdTgdSet::compile(tgd_src, inst));
        }
        let id_query = rps_tgd::intern_cq(cq, inst);
        let r = rps_tgd::rewrite_ids(&id_query, cache.as_ref().expect("just compiled"), cfg);
        let cqs: Vec<Cq> = r.cqs.iter().map(|c| rps_tgd::decode_cq(c, inst)).collect();
        RpsRewriting {
            cqs,
            id_cqs: r.cqs,
            space,
            complete: r.complete,
            explored: r.explored,
        }
    }

    /// Rewrites a query under the *canonicalised graph-mapping TGDs only*
    /// (combined route), entirely at the id level: the TGD set is
    /// compiled once, the query is interned, the expansion runs on
    /// numbered-variable CQs, and the emitted union is
    /// subsumption-pruned. Evaluate over the canonical stored database
    /// with [`Self::evaluate_canonical`] (which hands the id-CQs
    /// straight to the id-level evaluator) and expand answers with
    /// [`crate::equivalence::expand_answers`].
    pub fn rewrite_canonical(
        &mut self,
        query: &GraphPatternQuery,
        cfg: &RewriteConfig,
    ) -> RpsRewriting {
        let canon_query = crate::equivalence::canonicalize_query(query, &self.index);
        let cq = query_to_cq(&canon_query, &mut self.exchange.encoder, false);
        Self::rewrite_in_space(
            &cq,
            cfg,
            RewriteSpace::Canon,
            &self.canon_gma_tgds,
            &mut self.canon_stored_tt,
            &mut self.canon_tgds_id,
        )
    }

    /// [`Self::rewrite_canonical`] through the retained naive rewriting
    /// engine (`rps_tgd::naive`) — string-keyed canonicalisation, CQ-set
    /// duplicate detection, no subsumption pruning. Used by benchmarks
    /// (experiment e14) and property tests as the oracle; its union has
    /// the same certain answers as the pruned id-level one.
    pub fn rewrite_canonical_naive(
        &mut self,
        query: &GraphPatternQuery,
        cfg: &RewriteConfig,
    ) -> RpsRewriting {
        let canon_query = crate::equivalence::canonicalize_query(query, &self.index);
        let cq = query_to_cq(&canon_query, &mut self.exchange.encoder, false);
        let r = rps_tgd::naive::rewrite(&cq, &self.canon_gma_tgds, cfg);
        RpsRewriting {
            cqs: r.cqs,
            id_cqs: Vec::new(),
            space: RewriteSpace::Canon,
            complete: r.complete,
            explored: r.explored,
        }
    }

    /// The classification of the mapping TGDs (drives Proposition 2).
    pub fn classification(&self) -> Classification {
        self.classification
    }

    /// `true` iff Proposition 2 guarantees a perfect, terminating
    /// rewriting.
    pub fn fo_rewritable(&self) -> bool {
        self.classification.fo_rewritable()
    }

    /// The encoder (for decoding rewritings and answers).
    pub fn encoder(&self) -> &Encoder {
        &self.exchange.encoder
    }

    /// Rewrites a graph pattern query into a UCQ over the sources — the
    /// paper-verbatim route, under the *full* dependency set (graph
    /// mappings + equivalence TGDs). Runs on the id-level engine like
    /// [`Self::rewrite_canonical`], with ids minted against the raw
    /// stored database.
    pub fn rewrite(&mut self, query: &GraphPatternQuery, cfg: &RewriteConfig) -> RpsRewriting {
        let cq = query_to_cq(query, &mut self.exchange.encoder, false);
        Self::rewrite_in_space(
            &cq,
            cfg,
            RewriteSpace::Pure,
            &self.tgds,
            &mut self.stored_tt,
            &mut self.pure_tgds_id,
        )
    }

    /// Evaluates a previously-computed *canonical* rewriting (see
    /// [`Self::rewrite_canonical`]) over the canonical stored database,
    /// decoding the relational tuples and expanding them back over the
    /// equivalence classes. Rewrite once, evaluate repeatedly. Id-level
    /// rewritings evaluate without any string round-trip — only the
    /// distinct answer ids are decoded; the naive-oracle path (no
    /// id-CQs) falls back to string-level evaluation.
    pub fn evaluate_canonical(&self, rewriting: &RpsRewriting) -> BTreeSet<Vec<Term>> {
        let enc = &self.exchange.encoder;
        let decoded: BTreeSet<Vec<Term>> =
            if rewriting.space == RewriteSpace::Canon && !rewriting.id_cqs.is_empty() {
                rps_tgd::evaluate_union_ids(&rewriting.id_cqs, &self.canon_stored_tt)
                    .iter()
                    .map(|row| {
                        row.iter()
                            .map(|&v| enc.decode(self.canon_stored_tt.values().value(v)))
                            .collect()
                    })
                    .collect()
            } else {
                rps_tgd::evaluate_union(&rewriting.cqs, &self.canon_stored_tt)
                    .iter()
                    .map(|row| row.iter().map(|g| enc.decode(g)).collect())
                    .collect()
            };
        crate::equivalence::expand_answers(&decoded, &self.index)
    }

    /// The canonicalised stored database as an RDF graph — the substrate
    /// the compiled rewrite-route branch plans execute over.
    pub fn canon_graph(&self) -> &Graph {
        &self.canon_graph
    }

    /// The shared handle to the canonical stored graph (sealed at
    /// construction). Compiled branch plans carry a clone of this so
    /// execution needs no access to the rewriter itself.
    pub(crate) fn canon_graph_arc(&self) -> Arc<Graph> {
        self.canon_graph.clone()
    }

    /// Compiles the canonical-route `IdTgdSet` eagerly (normally built
    /// on the first rewrite). Freezing a session — `Session::freeze`
    /// here, `FederatedSession::freeze` in `rps-p2p` — calls this so the
    /// first concurrent `prepare` does not pay the compilation inside
    /// the compile lock.
    pub fn precompile_canonical(&mut self) {
        if self.canon_tgds_id.is_none() {
            self.canon_tgds_id = Some(IdTgdSet::compile(
                &self.canon_gma_tgds,
                &mut self.canon_stored_tt,
            ));
        }
    }

    /// Translates a `canon_stored_tt` value id to the canonical graph's
    /// term id. Seeded by the encoding pass; values interned later
    /// (query constants) resolve lazily — `None` means the value does
    /// not occur in the stored data at all.
    fn term_of_val(&mut self, v: rps_tgd::ValId) -> Option<TermId> {
        if self.val_to_term.len() < self.canon_stored_tt.values().len() {
            self.val_to_term
                .resize(self.canon_stored_tt.values().len(), None);
        }
        if let Some(t) = self.val_to_term[v.index()] {
            return Some(t);
        }
        let term = self
            .exchange
            .encoder
            .decode(self.canon_stored_tt.values().value(v));
        let tid = self.canon_graph.term_id(&term);
        if let Some(t) = tid {
            self.val_to_term[v.index()] = Some(t);
        }
        tid
    }

    /// Compiles a canonical rewriting's id-CQ branches into prepared
    /// [`rps_query::PreparedQueryIds`] plans over the canonical stored
    /// graph. Branch bodies are `tt/3` atoms by construction, so each
    /// maps positionally onto triple-pattern conjuncts; values translate
    /// to term ids through the table built while encoding the graph —
    /// no CQ is decoded and no term re-interned on the way. Branches
    /// whose head was specialised to a labelled null are dropped (no
    /// certain tuple can come from them); branches mentioning values
    /// absent from the stored data compile to unsatisfiable plans.
    pub(crate) fn compile_branches(&mut self, rewriting: &RpsRewriting) -> Vec<RewrittenBranch> {
        debug_assert_eq!(rewriting.space, RewriteSpace::Canon);
        let tt = self.canon_stored_tt.pred_id("tt");
        let mut out = Vec::with_capacity(rewriting.id_cqs.len());
        'branches: for cq in &rewriting.id_cqs {
            let nvars = (cq.nvars() as usize).max(1);
            let mut satisfiable = true;
            let mut conjuncts: Vec<[PlanSlot; 3]> = Vec::with_capacity(cq.body.len());
            for atom in &cq.body {
                if Some(atom.pred) != tt || atom.args.len() != 3 {
                    continue 'branches; // not a stored-triple atom
                }
                let mut slot = [PlanSlot::Var(0); 3];
                for (i, arg) in atom.args.iter().enumerate() {
                    slot[i] = match arg {
                        IdArg::Var(v) => PlanSlot::Var(*v as usize),
                        IdArg::Const(c) => match self.term_of_val(*c) {
                            Some(t) => PlanSlot::Const(t),
                            None => {
                                // Dead branch; the placeholder slot is
                                // never consulted.
                                satisfiable = false;
                                PlanSlot::Var(0)
                            }
                        },
                    };
                }
                conjuncts.push(slot);
            }
            let mut in_body = vec![false; nvars];
            for slot in &conjuncts {
                for s in slot {
                    if let PlanSlot::Var(v) = s {
                        in_body[*v] = true;
                    }
                }
            }
            let mut proj: Vec<usize> = Vec::new();
            let mut head: Vec<Option<Term>> = Vec::with_capacity(cq.head.len());
            let mut head_bound = true;
            for arg in &cq.head {
                match arg {
                    IdArg::Var(v) => {
                        head_bound &= in_body[*v as usize];
                        proj.push(*v as usize);
                        head.push(None);
                    }
                    IdArg::Const(c) => {
                        let g = self.canon_stored_tt.values().value(*c);
                        if g.is_null() {
                            continue 'branches; // never a certain answer
                        }
                        head.push(Some(self.exchange.encoder.decode(g)));
                    }
                }
            }
            let plan = PreparedQueryIds::from_id_slots(
                &self.canon_graph,
                &conjuncts,
                nvars,
                head_bound.then_some(proj),
                satisfiable,
            );
            out.push(RewrittenBranch { plan, head });
        }
        out
    }

    /// Rewrites and evaluates a query over the stored database via the
    /// *combined* route (quotient for equivalences, UCQ rewriting for
    /// graph mappings). Returns the answers and whether the rewriting
    /// was exhaustive.
    pub fn answers(&mut self, query: &GraphPatternQuery, cfg: &RewriteConfig) -> (AnswerSet, bool) {
        let rewriting = self.rewrite_canonical(query, cfg);
        (
            AnswerSet {
                vars: query
                    .free_vars()
                    .iter()
                    .map(|v| v.name().to_string())
                    .collect(),
                tuples: self.evaluate_canonical(&rewriting),
            },
            rewriting.complete,
        )
    }

    /// The paper-verbatim route: rewrite under the *full* dependency set
    /// (graph mappings + equivalence TGDs) and evaluate over the raw
    /// stored database. Exponentially larger unions than
    /// [`Self::answers`], kept for Listing 2 and the E9 ablation.
    pub fn answers_pure(
        &mut self,
        query: &GraphPatternQuery,
        cfg: &RewriteConfig,
    ) -> (AnswerSet, bool) {
        let rewriting = self.rewrite(query, cfg);
        let tuples = rps_tgd::evaluate_union_ids(&rewriting.id_cqs, &self.stored_tt);
        let enc = &self.exchange.encoder;
        let decoded: BTreeSet<Vec<Term>> = tuples
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&v| enc.decode(self.stored_tt.values().value(v)))
                    .collect()
            })
            .collect();
        (
            AnswerSet {
                vars: query
                    .free_vars()
                    .iter()
                    .map(|v| v.name().to_string())
                    .collect(),
                tuples: decoded,
            },
            rewriting.complete,
        )
    }

    /// The Example 3 decision procedure: is `tuple` a certain answer of
    /// `query`? Substitutes the tuple into the free variables, rewrites
    /// the resulting Boolean query, and evaluates the UNION of ASKs over
    /// the stored database (Listing 2).
    pub fn is_certain_answer(
        &mut self,
        query: &GraphPatternQuery,
        tuple: &[Term],
        cfg: &RewriteConfig,
    ) -> bool {
        assert_eq!(tuple.len(), query.arity(), "tuple arity mismatch");
        let free = query.free_vars().to_vec();
        let tuple: Vec<Term> = tuple.iter().map(|t| self.index.canonical_term(t)).collect();
        let subst = |v: &Variable| -> Option<Term> {
            free.iter().position(|f| f == v).map(|i| tuple[i].clone())
        };
        let canon_query = crate::equivalence::canonicalize_query(query, &self.index);
        let bound = canon_query.pattern().substitute(&subst);
        let boolean = GraphPatternQuery::boolean(bound);
        let cq = query_to_cq(&boolean, &mut self.exchange.encoder, false);
        let r = Self::rewrite_in_space(
            &cq,
            cfg,
            RewriteSpace::Canon,
            &self.canon_gma_tgds,
            &mut self.canon_stored_tt,
            &mut self.canon_tgds_id,
        );
        rps_tgd::union_has_answer(&r.id_cqs, &self.canon_stored_tt)
    }

    /// The full Example 3 pipeline: enumerate all candidate tuples of
    /// names from the stored database (polynomially many: `n^arity`) and
    /// decide each with the Boolean rewriting. Returns `None` if the
    /// candidate space exceeds `max_candidates` — callers should fall
    /// back to [`Self::answers`].
    pub fn certain_answers_via_boolean(
        &mut self,
        query: &GraphPatternQuery,
        cfg: &RewriteConfig,
        max_candidates: usize,
    ) -> Option<AnswerSet> {
        // Candidate constants: all names (IRIs and literals) in the
        // stored database, decoded from the tt instance.
        let names: Vec<Term> = {
            let enc = &self.exchange.encoder;
            self.stored_tt
                .constants()
                .iter()
                .map(|c| enc.decode(&rps_tgd::GroundTerm::Const(c.clone())))
                .collect()
        };
        let arity = query.arity();
        let total = names.len().checked_pow(arity as u32)?;
        if total > max_candidates {
            return None;
        }
        let mut tuples = BTreeSet::new();
        let mut idx = vec![0usize; arity];
        loop {
            let tuple: Vec<Term> = idx.iter().map(|&i| names[i].clone()).collect();
            if self.is_certain_answer(query, &tuple, cfg) {
                tuples.insert(tuple);
            }
            // Odometer increment.
            let mut k = 0;
            loop {
                if k == arity {
                    return Some(AnswerSet {
                        vars: query
                            .free_vars()
                            .iter()
                            .map(|v| v.name().to_string())
                            .collect(),
                        tuples,
                    });
                }
                idx[k] += 1;
                if idx[k] < names.len() {
                    break;
                }
                idx[k] = 0;
                k += 1;
            }
            if arity == 0 {
                return Some(AnswerSet {
                    vars: Vec::new(),
                    tuples,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::{chase_system, RpsChaseConfig};
    use crate::system::RpsBuilder;
    use crate::PeerId;

    fn v(n: &str) -> Variable {
        Variable::new(n)
    }

    /// Linear system: peer B's `actor` facts imply peer A's `cast` facts
    /// (single-triple premise and conclusion keep everything linear).
    fn linear_system() -> RdfPeerSystem {
        let mut a = PeerId(0);
        let mut b = PeerId(0);
        let premise = GraphPatternQuery::new(
            vec![v("x"), v("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://b/actor"),
                TermOrVar::var("y"),
            ),
        );
        let conclusion = GraphPatternQuery::new(
            vec![v("x"), v("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://a/cast"),
                TermOrVar::var("y"),
            ),
        );
        RpsBuilder::new()
            .peer_turtle("A", "<http://a/f1> <http://a/cast> <http://a/p1> .", &mut a)
            .unwrap()
            .peer_turtle(
                "B",
                "<http://b/f2> <http://b/actor> <http://b/p2> .",
                &mut b,
            )
            .unwrap()
            .assertion(b, a, premise, conclusion)
            .unwrap()
            .equivalence("http://a/p1", "http://b/p2")
            .build()
    }

    fn cast_query() -> GraphPatternQuery {
        GraphPatternQuery::new(
            vec![v("x"), v("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://a/cast"),
                TermOrVar::var("y"),
            ),
        )
    }

    #[test]
    fn linear_system_is_fo_rewritable() {
        let mut rw = RpsRewriter::new(&linear_system());
        assert!(rw.classification().linear);
        assert!(rw.fo_rewritable());
        let r = rw.rewrite(&cast_query(), &RewriteConfig::default());
        assert!(r.complete);
        assert!(r.cqs.len() >= 2);
    }

    #[test]
    fn rewriting_answers_equal_chase_answers() {
        let sys = linear_system();
        let mut rw = RpsRewriter::new(&sys);
        let (ans, complete) = rw.answers(&cast_query(), &RewriteConfig::default());
        assert!(complete);
        let sol = chase_system(&sys, &RpsChaseConfig::default());
        let chased = crate::answers::certain_answers(&sol, &cast_query());
        assert_eq!(ans.tuples, chased.tuples);
        // Both vocabularies' actors appear thanks to the equivalence.
        assert!(ans
            .tuples
            .contains(&vec![Term::iri("http://b/f2"), Term::iri("http://b/p2")]));
        assert!(ans
            .tuples
            .contains(&vec![Term::iri("http://b/f2"), Term::iri("http://a/p1")]));
    }

    #[test]
    fn boolean_certain_answer_listing2_shape() {
        let sys = linear_system();
        let mut rw = RpsRewriter::new(&sys);
        // (f2, p1) is a certain answer only via the equivalence mapping:
        // the stored data has (f2, actor, p2) and p1 ≡ p2.
        let yes = rw.is_certain_answer(
            &cast_query(),
            &[Term::iri("http://b/f2"), Term::iri("http://a/p1")],
            &RewriteConfig::default(),
        );
        assert!(yes);
        let no = rw.is_certain_answer(
            &cast_query(),
            &[Term::iri("http://a/f1"), Term::iri("http://b/f2")],
            &RewriteConfig::default(),
        );
        assert!(!no);
    }

    #[test]
    fn boolean_enumeration_matches_direct_rewriting() {
        let sys = linear_system();
        let mut rw = RpsRewriter::new(&sys);
        let (direct, _) = rw.answers(&cast_query(), &RewriteConfig::default());
        let enumerated = rw
            .certain_answers_via_boolean(&cast_query(), &RewriteConfig::default(), 10_000)
            .expect("candidate space is small");
        assert_eq!(direct.tuples, enumerated.tuples);
    }

    #[test]
    fn candidate_budget_overflow_returns_none() {
        let sys = linear_system();
        let mut rw = RpsRewriter::new(&sys);
        assert!(rw
            .certain_answers_via_boolean(&cast_query(), &RewriteConfig::default(), 3)
            .is_none());
    }

    #[test]
    fn union_query_decoding() {
        let sys = linear_system();
        let mut rw = RpsRewriter::new(&sys);
        let q = cast_query();
        let r = rw.rewrite(&q, &RewriteConfig::default());
        let union = r.to_union_query(q.free_vars(), rw.encoder());
        assert!(union.len() >= 2);
        // Every branch is a valid RDF-level pattern over tt-decoded terms.
        for b in union.branches() {
            assert!(!b.is_empty());
        }
    }
}
