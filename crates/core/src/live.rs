//! Live updates under serving: incremental chase maintenance behind
//! epoch-stamped immutable snapshots.
//!
//! The mutable [`crate::Session`] re-chases from scratch whenever the
//! system changes, and the [`crate::FrozenSession`] forbids change
//! altogether. This module fills the gap between them: a
//! [`LiveSession`] owns the write side of a peer system and keeps its
//! materialised universal solution *incrementally* maintained while
//! any number of [`LiveReader`]s keep answering queries concurrently.
//!
//! # Epoch MVCC
//!
//! Every committed update batch publishes a new **epoch**: an immutable
//! snapshot holding the sealed universal solution and a fresh
//! per-epoch plan cache. Publication is an atomic pointer swap behind an
//! `RwLock<Arc<_>>`, generalising the configuration-generation check of
//! the mutable session into real multi-version concurrency:
//!
//! - readers never block the writer and never observe a torn graph —
//!   they either see epoch *N* or epoch *N+1*, complete in both cases;
//! - a [`LivePlan`] prepared against epoch *N* keeps executing against
//!   epoch *N*'s pinned solution even after later epochs land, until
//!   the writer's retention floor passes it — then execution fails with
//!   the typed [`RpsError::StalePlan`] and the caller re-prepares;
//! - the plan cache is per-epoch, so a cached plan can never be
//!   executed against a graph it was not compiled for.
//!
//! # Incremental maintenance
//!
//! Insertions extend the solution by the semi-naive chase from the
//! delta window only (the engine's persistent per-assertion log marks).
//! Deletions run **delete-and-rederive** over the derivation provenance
//! recorded during conclusion firing: an over-deleting cascade removes
//! everything the retracted base tuples transitively support, then a
//! rederivation phase re-fires every retracted firing whose premise
//! still holds and restores equivalence copies with surviving sources.
//!
//! Byte-identity of the incrementally maintained solution with a
//! from-scratch re-chase requires a *confluent* chase, so live sessions
//! force [`FiringMode::Skolem`]:
//! fresh blanks are named deterministically by the firing that creates
//! them, making the fixpoint independent of insertion order.

use crate::chase::{ChaseEngine, FiringMode, RpsChaseStats, UniversalSolution};
use crate::error::RpsError;
use crate::peer::PeerId;
use crate::session::{
    canonical_plan_key, stream_vars, AnswerStream, EngineConfig, ExecRoute, PlanCache, Strategy,
    DEFAULT_PLAN_CACHE_CAPACITY,
};
use crate::system::{scoped_term, RdfPeerSystem};
use rps_query::{GraphPatternQuery, PreparedQueryIds, Semantics};
use rps_rdf::{IdTriple, Term, Triple};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// A batch of peer-database updates, applied atomically by
/// [`LiveSession::apply`]: readers observe either none of the batch or
/// all of it (plus its chase consequences). Within a batch, removals
/// are applied before insertions, so removing and re-inserting the same
/// triple is a no-op.
#[derive(Default, Debug, Clone)]
pub struct UpdateBatch {
    inserts: Vec<(PeerId, Triple)>,
    removes: Vec<(PeerId, Triple)>,
}

impl UpdateBatch {
    /// An empty batch.
    pub fn new() -> Self {
        UpdateBatch::default()
    }

    /// Queues a triple for insertion into a peer's database.
    pub fn insert(mut self, peer: PeerId, triple: Triple) -> Self {
        self.inserts.push((peer, triple));
        self
    }

    /// Queues a triple for removal from a peer's database. Removing a
    /// triple the peer does not hold is a no-op.
    pub fn remove(mut self, peer: PeerId, triple: Triple) -> Self {
        self.removes.push((peer, triple));
        self
    }

    /// `true` iff the batch queues no work.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.removes.is_empty()
    }
}

/// One committed, immutable version of the universal solution. Readers
/// pin the snapshot their plans were compiled against; the writer never
/// mutates a published snapshot.
struct EpochSnapshot {
    epoch: u32,
    solution: Arc<UniversalSolution>,
    /// Per-epoch plan cache: compiled id-level plans are only valid
    /// against the dictionary of the graph they were compiled for, so
    /// the cache is scoped to the snapshot and dies with it.
    plans: Mutex<PlanCache<PreparedQueryIds>>,
}

/// State shared between the writer and all readers: the current
/// snapshot pointer and the retention floor below which plans are
/// rejected as stale.
struct LiveShared {
    current: RwLock<Arc<EpochSnapshot>>,
    /// Lowest epoch still executable. `floor = epoch − retain`
    /// (saturating); plans below it fail with
    /// [`RpsError::StalePlan`].
    floor: AtomicU32,
}

/// The write side of a live peer system: owns the system, the
/// incremental chase engine and the publication state. Single-writer by
/// construction (`apply` takes `&mut self`); concurrent reads go
/// through cloneable [`LiveReader`] handles.
pub struct LiveSession {
    system: RdfPeerSystem,
    config: EngineConfig,
    engine: ChaseEngine,
    /// Multiplicity of each scoped base triple across peers (engine id
    /// space). A triple only becomes a retraction candidate when its
    /// count reaches zero — two peers asserting the same IRI-only
    /// triple keep it alive until both drop it.
    base: HashMap<IdTriple, u32>,
    shared: Arc<LiveShared>,
    epoch: u32,
    retain: u32,
    cache_capacity: usize,
}

impl LiveSession {
    /// Validates the system, materialises the initial universal
    /// solution and publishes it as epoch 0. Plans stay executable
    /// forever (unbounded retention); see [`LiveSession::open_with_retention`]
    /// to bound the window instead.
    ///
    /// The rewrite and Datalog routes assume an immutable base instance,
    /// so `config.strategy` must be `Materialise` or `Auto` (both serve
    /// the maintained materialisation); anything else fails with
    /// [`RpsError::LiveNeedsMaterialisation`]. The chase firing mode is
    /// forced to `Skolem` — see the [module docs](self).
    pub fn open(system: RdfPeerSystem, config: EngineConfig) -> Result<Self, RpsError> {
        Self::open_with_retention(system, config, u32::MAX)
    }

    /// Like [`LiveSession::open`], but plans prepared against an epoch
    /// more than `retain` epochs behind the current one fail with
    /// [`RpsError::StalePlan`]. `retain = 0` means only current-epoch
    /// plans execute.
    pub fn open_with_retention(
        system: RdfPeerSystem,
        config: EngineConfig,
        retain: u32,
    ) -> Result<Self, RpsError> {
        system.validate().map_err(RpsError::Validation)?;
        match config.strategy {
            Strategy::Materialise | Strategy::Auto => {}
            Strategy::Rewrite | Strategy::Datalog => {
                return Err(RpsError::LiveNeedsMaterialisation)
            }
        }
        let mut chase = config.chase.clone();
        chase.firing = FiringMode::Skolem;
        let mut engine = ChaseEngine::new(&system, &chase, true);
        let mut base: HashMap<IdTriple, u32> = HashMap::new();
        for (idx, peer) in system.peers().iter().enumerate() {
            for triple in peer.database.iter() {
                let t = scoped_id(&mut engine, idx, &triple);
                *base.entry(t).or_insert(0) += 1;
            }
        }
        if !engine.run() {
            return Err(RpsError::ChaseBudget {
                rounds: engine.stats.rounds,
                triples: engine.graph.len(),
            });
        }
        engine.graph.seal();
        let snapshot = Arc::new(EpochSnapshot {
            epoch: 0,
            solution: Arc::new(UniversalSolution {
                graph: engine.graph.clone(),
                stats: engine.stats,
                complete: true,
            }),
            plans: Mutex::new(PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY)),
        });
        let shared = Arc::new(LiveShared {
            current: RwLock::new(snapshot),
            floor: AtomicU32::new(0),
        });
        Ok(LiveSession {
            system,
            config,
            engine,
            base,
            shared,
            epoch: 0,
            retain,
            cache_capacity: DEFAULT_PLAN_CACHE_CAPACITY,
        })
    }

    /// Applies a batch to the peer databases, repairs the universal
    /// solution incrementally and publishes the result as a new epoch.
    /// Returns the committed epoch number. An empty batch still commits
    /// (and bumps) an epoch.
    ///
    /// On a chase-budget failure the error is returned and **no epoch
    /// is published** — readers keep serving the last committed epoch —
    /// but the write side is left mid-repair and the session should be
    /// discarded (rebuild via [`LiveSession::open`] from the peers'
    /// databases, which the failed batch has already mutated).
    ///
    /// # Panics
    ///
    /// If a batch entry names a peer index outside the system.
    pub fn apply(&mut self, batch: &UpdateBatch) -> Result<u32, RpsError> {
        // --- Removals first (batch semantics: remove-then-insert of the
        // same triple is a no-op). ---
        let mut candidates: Vec<IdTriple> = Vec::new();
        for (peer, triple) in &batch.removes {
            let idx = peer.0;
            if !self.system.peer_mut(*peer).database.remove(triple) {
                continue; // absent at the peer — nothing to retract
            }
            let t = scoped_id(&mut self.engine, idx, triple);
            match self.base.get_mut(&t) {
                Some(n) if *n > 1 => *n -= 1,
                Some(_) => {
                    self.base.remove(&t);
                    candidates.push(t);
                }
                None => {}
            }
        }
        // --- Insertions: extend the peer database (and its schema, so
        // the system stays valid), then the base multiplicity map. ---
        let mut fresh: Vec<IdTriple> = Vec::new();
        for (peer, triple) in &batch.inserts {
            let idx = peer.0;
            let p = self.system.peer_mut(*peer);
            for term in [triple.subject(), triple.predicate(), triple.object()] {
                if let Term::Iri(iri) = term {
                    p.schema.insert(iri.clone());
                }
            }
            if !p.database.insert(triple) {
                continue; // the peer already held it
            }
            let t = scoped_id(&mut self.engine, idx, triple);
            let count = self.base.entry(t).or_insert(0);
            *count += 1;
            if *count == 1 {
                fresh.push(t);
            }
        }
        // --- Repair the materialisation: delete-and-rederive for the
        // retracted base tuples, then the semi-naive delta chase over
        // the (re-)insertions. ---
        let complete = if candidates.is_empty() {
            true
        } else {
            let base = &self.base;
            self.engine
                .retract_base(candidates, &|t| base.contains_key(&t))
        };
        for t in fresh {
            self.engine.insert_base(t);
        }
        if !(complete && self.engine.run()) {
            return Err(RpsError::ChaseBudget {
                rounds: self.engine.stats.rounds,
                triples: self.engine.graph.len(),
            });
        }
        self.epoch += 1;
        self.publish();
        Ok(self.epoch)
    }

    /// Seals the write-side graph and swaps the published snapshot.
    /// Readers holding the previous `Arc` keep it alive; new preparations
    /// see the new epoch. Sealed runs are `Arc`-shared between the write
    /// side and the published clone, so the clone cost is proportional
    /// to the un-merged tail, not the whole graph.
    fn publish(&mut self) {
        self.engine.graph.seal();
        let snapshot = Arc::new(EpochSnapshot {
            epoch: self.epoch,
            solution: Arc::new(UniversalSolution {
                graph: self.engine.graph.clone(),
                stats: self.engine.stats,
                complete: true,
            }),
            plans: Mutex::new(PlanCache::new(self.cache_capacity)),
        });
        *self.shared.current.write().expect("epoch lock") = snapshot;
        self.shared
            .floor
            .store(self.epoch.saturating_sub(self.retain), Ordering::Release);
    }

    /// A cloneable read handle over the published epochs. Readers stay
    /// valid (and keep answering) after the `LiveSession` is dropped —
    /// they serve the last published epoch forever.
    pub fn reader(&self) -> LiveReader {
        LiveReader {
            shared: Arc::clone(&self.shared),
            semantics: self.config.semantics,
        }
    }

    /// The last committed epoch number.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The peer system in its current (post-batch) state.
    pub fn system(&self) -> &RdfPeerSystem {
        &self.system
    }

    /// The currently published universal solution.
    pub fn solution(&self) -> Arc<UniversalSolution> {
        self.shared
            .current
            .read()
            .expect("epoch lock")
            .solution
            .clone()
    }

    /// Cumulative chase statistics across the initial materialisation
    /// and every applied batch (`retractions` / `refirings` count the
    /// delete-and-rederive work).
    pub fn stats(&self) -> RpsChaseStats {
        self.engine.stats
    }
}

/// Interns a peer triple into the engine's dictionary under the peer's
/// blank scope — the same `p{idx}_` scoping the stored database uses,
/// so live updates and the from-scratch chase agree on identity.
fn scoped_id(engine: &mut ChaseEngine, idx: usize, triple: &Triple) -> IdTriple {
    let s = engine.intern(&scoped_term(idx, triple.subject()));
    let p = engine.intern(&scoped_term(idx, triple.predicate()));
    let o = engine.intern(&scoped_term(idx, triple.object()));
    IdTriple::new(s, p, o)
}

/// A shareable, cloneable read handle over a [`LiveSession`]'s published
/// epochs. All methods take `&self`; the handle is `Send + Sync`, so
/// worker threads can prepare and execute concurrently while the writer
/// publishes.
#[derive(Clone)]
pub struct LiveReader {
    shared: Arc<LiveShared>,
    semantics: Semantics,
}

impl LiveReader {
    /// The epoch a preparation issued right now would pin.
    pub fn epoch(&self) -> u32 {
        self.shared.current.read().expect("epoch lock").epoch
    }

    /// A handle answering under a different result semantics (`Q` drops
    /// blank-node tuples, `Q*` keeps them). The materialised route
    /// serves both, so no re-chase is involved — plans are even shared,
    /// as the semantics is applied at execution.
    pub fn with_semantics(mut self, semantics: Semantics) -> Self {
        self.semantics = semantics;
        self
    }

    /// Compiles a query against the current epoch — or adopts the
    /// cached plan of an α-equivalent query prepared earlier against
    /// the same epoch. The returned plan pins the epoch's solution:
    /// executing it always answers over that exact graph, regardless of
    /// later publications.
    ///
    /// Unlike the frozen session's cache, the projection variable
    /// *names* are always the caller's own (α-equivalent queries share
    /// the compiled plan but not the name vector).
    pub fn prepare(&self, query: &GraphPatternQuery) -> Result<LivePlan, RpsError> {
        let snapshot = self.shared.current.read().expect("epoch lock").clone();
        let key = canonical_plan_key(query);
        let cached = snapshot.plans.lock().expect("plan cache lock").lookup(&key);
        let plan = match cached {
            Some(hit) => hit,
            None => {
                // Compile outside the cache lock; first insert wins.
                let compiled = Arc::new(PreparedQueryIds::compile_only(
                    &snapshot.solution.graph,
                    query,
                ));
                snapshot
                    .plans
                    .lock()
                    .expect("plan cache lock")
                    .insert(key, compiled)
            }
        };
        Ok(LivePlan {
            epoch: snapshot.epoch,
            solution: snapshot.solution.clone(),
            plan,
            vars: stream_vars(query),
            semantics: self.semantics,
        })
    }

    /// Executes a prepared plan against the epoch it was compiled for.
    /// Fails with [`RpsError::StalePlan`] iff the writer's retention
    /// floor has passed the plan's epoch — until then, the answers are
    /// exactly epoch `plan.epoch()`'s, torn-read-free by construction.
    pub fn execute(&self, plan: &LivePlan) -> Result<AnswerStream, RpsError> {
        let floor = self.shared.floor.load(Ordering::Acquire);
        if plan.epoch < floor {
            return Err(RpsError::StalePlan {
                prepared: plan.epoch,
                current: self.epoch(),
            });
        }
        let ids = plan.plan.evaluate(&plan.solution.graph, plan.semantics);
        Ok(AnswerStream::from_ids(
            plan.vars.clone(),
            ExecRoute::Materialised,
            plan.solution.clone(),
            ids,
        ))
    }

    /// Prepare-and-execute against the current epoch.
    pub fn answer(&self, query: &GraphPatternQuery) -> Result<AnswerStream, RpsError> {
        let plan = self.prepare(query)?;
        self.execute(&plan)
    }
}

/// A query compiled by [`LiveReader::prepare`] against one specific
/// epoch. Holds the epoch's solution alive; executable any number of
/// times (on any thread) until the writer's retention floor passes it.
pub struct LivePlan {
    epoch: u32,
    solution: Arc<UniversalSolution>,
    plan: Arc<PreparedQueryIds>,
    vars: Vec<String>,
    semantics: Semantics,
}

impl LivePlan {
    /// The epoch this plan is pinned to.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::RpsBuilder;
    use rps_query::{GraphPattern, TermOrVar, Variable};
    use std::collections::BTreeSet;

    fn v(n: &str) -> Variable {
        Variable::new(n)
    }

    /// Two peers: peer B holds `actor` facts, peer A uses
    /// `starring`/`artist`; one GMA translates B into A's shape with an
    /// existential witness (`z`) between the two A-triples.
    fn small_system() -> RdfPeerSystem {
        let mut a = PeerId(0);
        let mut b = PeerId(0);
        let premise = GraphPatternQuery::new(
            vec![v("x"), v("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://b/actor"),
                TermOrVar::var("y"),
            ),
        );
        let conclusion = GraphPatternQuery::new(
            vec![v("x"), v("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://a/starring"),
                TermOrVar::var("z"),
            )
            .and(GraphPattern::triple(
                TermOrVar::var("z"),
                TermOrVar::iri("http://a/artist"),
                TermOrVar::var("y"),
            )),
        );
        RpsBuilder::new()
            .peer_turtle(
                "A",
                "<http://a/film> <http://a/starring> _:c .\n\
                 _:c <http://a/artist> <http://a/actor1> .",
                &mut a,
            )
            .unwrap()
            .peer_turtle(
                "B",
                "<http://b/film2> <http://b/actor> <http://b/actor2> .",
                &mut b,
            )
            .unwrap()
            .assertion(b, a, premise, conclusion)
            .unwrap()
            .build()
    }

    /// Join through the existential witness, so both projected
    /// positions are IRIs and survive `Certain` semantics.
    fn cast_query() -> GraphPatternQuery {
        GraphPatternQuery::new(
            vec![v("x"), v("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://a/starring"),
                TermOrVar::var("z"),
            )
            .and(GraphPattern::triple(
                TermOrVar::var("z"),
                TermOrVar::iri("http://a/artist"),
                TermOrVar::var("y"),
            )),
        )
    }

    fn iri(s: &str) -> Term {
        Term::Iri(rps_rdf::Iri::new(s))
    }

    fn actor_triple(film: &str, actor: &str) -> Triple {
        Triple::new(
            iri(&format!("http://b/{film}")),
            iri("http://b/actor"),
            iri(&format!("http://b/{actor}")),
        )
        .expect("valid triple")
    }

    #[test]
    fn open_publishes_epoch_zero_with_chased_solution() {
        let live = LiveSession::open(small_system(), EngineConfig::default()).expect("opens");
        assert_eq!(live.epoch(), 0);
        let reader = live.reader();
        assert_eq!(reader.epoch(), 0);
        let answers = reader.answer(&cast_query()).expect("answers").into_set();
        // A's stored pair plus the chased translation of B's fact.
        assert_eq!(answers.len(), 2);
    }

    #[test]
    fn rewrite_strategy_is_rejected() {
        let config = EngineConfig::default().with_strategy(Strategy::Rewrite);
        match LiveSession::open(small_system(), config) {
            Err(e) => assert!(matches!(e, RpsError::LiveNeedsMaterialisation), "{e}"),
            Ok(_) => panic!("rewrite strategy must be rejected"),
        }
    }

    #[test]
    fn insert_extends_answers_and_bumps_epoch() {
        let mut live = LiveSession::open(small_system(), EngineConfig::default()).expect("opens");
        let reader = live.reader();
        let batch = UpdateBatch::new().insert(PeerId(1), actor_triple("film3", "actor3"));
        let epoch = live.apply(&batch).expect("applies");
        assert_eq!(epoch, 1);
        assert_eq!(reader.epoch(), 1);
        let answers = reader.answer(&cast_query()).expect("answers").into_set();
        assert_eq!(answers.len(), 3);
    }

    #[test]
    fn remove_retracts_derived_consequences() {
        let mut live = LiveSession::open(small_system(), EngineConfig::default()).expect("opens");
        let batch = UpdateBatch::new().remove(PeerId(1), actor_triple("film2", "actor2"));
        live.apply(&batch).expect("applies");
        let answers = live
            .reader()
            .answer(&cast_query())
            .expect("answers")
            .into_set();
        // The derived (film2, actor2) pair disappears with its base
        // support; only A's stored pair remains.
        assert_eq!(answers.len(), 1);
        assert!(live.stats().retractions > 0);
    }

    #[test]
    fn plans_pin_their_epoch_until_the_floor_passes() {
        let mut live = LiveSession::open_with_retention(small_system(), EngineConfig::default(), 1)
            .expect("opens");
        let reader = live.reader();
        let plan0 = reader.prepare(&cast_query()).expect("prepares");
        let before = reader.execute(&plan0).expect("executes").into_set();

        live.apply(&UpdateBatch::new().insert(PeerId(1), actor_triple("f3", "a3")))
            .expect("applies");
        // Epoch 1, retention 1: the epoch-0 plan still executes and
        // still answers epoch 0's graph.
        let pinned = reader.execute(&plan0).expect("still executable").into_set();
        assert_eq!(before, pinned);

        live.apply(&UpdateBatch::new().insert(PeerId(1), actor_triple("f4", "a4")))
            .expect("applies");
        // Epoch 2: the floor (2 − 1 = 1) passed epoch 0.
        match reader.execute(&plan0) {
            Err(RpsError::StalePlan { prepared, current }) => {
                assert_eq!(prepared, 0);
                assert_eq!(current, 2);
            }
            Err(other) => panic!("expected StalePlan, got {other}"),
            Ok(_) => panic!("expected StalePlan, got answers"),
        }
        // Re-preparing picks up the current epoch.
        let plan2 = reader.prepare(&cast_query()).expect("prepares");
        assert_eq!(plan2.epoch(), 2);
        assert!(reader.execute(&plan2).is_ok());
    }

    #[test]
    fn remove_then_insert_of_the_same_triple_is_a_noop() {
        let mut live = LiveSession::open(small_system(), EngineConfig::default()).expect("opens");
        let before = live
            .reader()
            .answer(&cast_query())
            .expect("answers")
            .into_set();
        let t = actor_triple("film2", "actor2");
        let batch = UpdateBatch::new()
            .remove(PeerId(1), t.clone())
            .insert(PeerId(1), t);
        live.apply(&batch).expect("applies");
        let after = live
            .reader()
            .answer(&cast_query())
            .expect("answers")
            .into_set();
        assert_eq!(before, after);
    }

    #[test]
    fn incremental_matches_from_scratch_rechase() {
        let mut live = LiveSession::open(small_system(), EngineConfig::default()).expect("opens");
        let batch = UpdateBatch::new()
            .insert(PeerId(1), actor_triple("film3", "actor3"))
            .remove(PeerId(1), actor_triple("film2", "actor2"));
        live.apply(&batch).expect("applies");

        // From-scratch oracle: chase the mutated system under the same
        // (confluent) configuration.
        let chase = crate::RpsChaseConfig {
            firing: FiringMode::Skolem,
            ..crate::RpsChaseConfig::default()
        };
        let scratch = crate::chase_system(live.system(), &chase);
        assert!(scratch.complete);
        let live_triples: BTreeSet<Triple> = live.solution().graph.iter().collect();
        let scratch_triples: BTreeSet<Triple> = scratch.graph.iter().collect();
        assert_eq!(live_triples, scratch_triples);
    }
}
