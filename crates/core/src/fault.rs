//! Fault-tolerance policies for federated answering.
//!
//! The federated pipeline (`rps-p2p`) talks to peers through a pluggable
//! transport that can time out, refuse connections, or answer with
//! transient errors. These types make that failure surface explicit in
//! the configuration instead of leaving it to crash the process:
//!
//! * [`RetryPolicy`] bounds how hard one peer exchange is retried —
//!   attempt count, exponential backoff with *deterministic* jitter, and
//!   a per-peer deadline budget that caps the total (virtual) time a
//!   branch may burn on one peer;
//! * [`FailurePolicy`] decides what a query execution does when a peer
//!   stays unreachable after the retries: fail the query
//!   ([`FailurePolicy::Strict`]), degrade gracefully
//!   ([`FailurePolicy::BestEffort`]), or degrade only while at least `k`
//!   peers respond ([`FailurePolicy::Quorum`]);
//! * [`FailureCause`] is the typed taxonomy both the
//!   `RpsError::PeerUnreachable` error and the per-query federation
//!   report classify give-ups with.
//!
//! They live in `rps-core` so [`crate::EngineConfig`] can carry them (the
//! federated session in `rps-p2p` reads them; the local routes ignore
//! them). All backoff and deadline arithmetic is *virtual* — measured in
//! simulated milliseconds reported by the transport — so a seeded fault
//! schedule produces bit-identical outcomes on every run and on every
//! thread interleaving.

/// Why one peer exchange was finally given up on (after retries).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FailureCause {
    /// No response arrived within the attempt's time budget.
    Timeout,
    /// The per-peer deadline budget was exhausted before the attempts
    /// were (retries and backoff burned it all).
    DeadlineExhausted,
    /// The peer answered, but with a (possibly injected) transient
    /// error response instead of an answer batch.
    Transient,
    /// The peer is down: connections are refused outright.
    PeerDown,
    /// The peer answered with bytes that do not decode as a wire
    /// message (version skew, corruption).
    Protocol,
}

impl std::fmt::Display for FailureCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FailureCause::Timeout => "timeout",
            FailureCause::DeadlineExhausted => "deadline exhausted",
            FailureCause::Transient => "transient error",
            FailureCause::PeerDown => "peer down",
            FailureCause::Protocol => "protocol error",
        };
        f.write_str(s)
    }
}

/// What a federated execution does when a peer stays unreachable after
/// the [`RetryPolicy`] is exhausted.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FailurePolicy {
    /// Any unreachable peer fails the whole query with the typed
    /// `RpsError::PeerUnreachable`. Answers are never silently
    /// incomplete. The default.
    #[default]
    Strict,
    /// Unreachable peers contribute nothing; the query still answers,
    /// and every skipped peer is listed in the per-query federation
    /// report. Answers equal the centralised answers restricted to the
    /// reachable peers.
    BestEffort,
    /// Like [`FailurePolicy::BestEffort`], but the execution fails with
    /// `RpsError::QuorumNotMet` unless at least `k` of the contacted
    /// peers responded.
    Quorum(usize),
}

/// Bounded-retry policy for one federated peer exchange.
///
/// Attempt `n` (1-based) of an exchange is preceded, for `n ≥ 2`, by an
/// exponential backoff of
/// `base_backoff_ms · 2^(n-2) · (1 + jitter · u)` virtual milliseconds,
/// where `u ∈ [0, 1)` is a SplitMix64 draw seeded from
/// `(jitter_seed, peer, attempt, request fingerprint)` — deterministic,
/// and independent of thread interleaving. Backoff and transport-reported
/// latency both charge the **per-peer deadline budget**: once a branch
/// has spent `peer_deadline_ms` on one peer, further attempts (and
/// further exchanges with that peer in the same branch) give up with
/// [`FailureCause::DeadlineExhausted`].
#[derive(Clone, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Maximum attempts per exchange (clamped to at least 1).
    pub max_attempts: u32,
    /// Base backoff before the second attempt, in virtual milliseconds.
    pub base_backoff_ms: f64,
    /// Jitter fraction in `[0, 1]`: attempt backoff is scaled by a
    /// deterministic factor in `[1, 1 + jitter]`.
    pub jitter: f64,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
    /// Virtual-millisecond budget one branch may spend on one peer
    /// (latency + backoff across all of that branch's exchanges with
    /// the peer).
    pub peer_deadline_ms: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 5.0,
            jitter: 0.5,
            jitter_seed: 0x5EED,
            peer_deadline_ms: 1_000.0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries and never waits: the first failure is
    /// final. Useful as the zero-overhead choice for perfect transports.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ms: 0.0,
            jitter: 0.0,
            jitter_seed: 0,
            peer_deadline_ms: f64::INFINITY,
        }
    }

    /// The deterministic backoff charged before `attempt` (1-based) of
    /// an exchange with `peer`, where `fingerprint` identifies the
    /// request (any stable hash). Attempt 1 has no backoff.
    pub fn backoff_ms(&self, peer: usize, attempt: u32, fingerprint: u64) -> f64 {
        if attempt <= 1 {
            return 0.0;
        }
        let exp = self.base_backoff_ms * f64::from(1u32 << (attempt - 2).min(20));
        let mix = splitmix64(
            self.jitter_seed
                ^ (peer as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ u64::from(attempt).wrapping_mul(0xBF58_476D_1CE4_E5B9)
                ^ fingerprint,
        );
        let unit = (mix >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        exp * (1.0 + self.jitter.clamp(0.0, 1.0) * unit)
    }
}

/// One SplitMix64 output step (shared by the jitter stream and the
/// fault schedules in `rps-p2p`).
pub fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_exponential() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ms(0, 1, 7), 0.0);
        let b2 = p.backoff_ms(0, 2, 7);
        let b3 = p.backoff_ms(0, 3, 7);
        let b4 = p.backoff_ms(0, 4, 7);
        assert!(b2 >= p.base_backoff_ms && b2 <= p.base_backoff_ms * 1.5);
        assert!(b3 >= 2.0 * p.base_backoff_ms && b3 <= 3.0 * p.base_backoff_ms);
        assert!(b4 >= 4.0 * p.base_backoff_ms && b4 <= 6.0 * p.base_backoff_ms);
        // Same inputs, same jitter — bit-identical.
        assert_eq!(b3, p.backoff_ms(0, 3, 7));
        // Different peers / fingerprints draw different jitter.
        assert_ne!(b3, p.backoff_ms(1, 3, 7));
        assert_ne!(b3, p.backoff_ms(0, 3, 8));
    }

    #[test]
    fn no_retry_policy_is_inert() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_attempts, 1);
        assert_eq!(p.backoff_ms(3, 2, 1), 0.0);
        assert!(p.peer_deadline_ms.is_infinite());
    }

    #[test]
    fn failure_policy_default_is_strict() {
        assert_eq!(FailurePolicy::default(), FailurePolicy::Strict);
    }
}
