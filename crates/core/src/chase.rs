//! Algorithm 1: the RPS chase, producing a universal solution.
//!
//! The chase starts from the stored database `D` and repeatedly repairs
//! violated mappings:
//!
//! * a graph mapping assertion `Q ⇝ Q'` is violated when some tuple
//!   `t ∈ Q_J \ Q'_J`; the repair instantiates the conclusion pattern
//!   with `t` on the free variables and *fresh blank nodes* on the
//!   existential variables (the labelled nulls of Section 3);
//! * an equivalence mapping `c ≡ₑ c'` is violated when the
//!   `subjQ*`/`predQ*`/`objQ*` result sets of `c` and `c'` differ; the
//!   repair copies the missing triples in both directions for all three
//!   positions (note the `Q*` semantics: blank nodes participate).
//!
//! Theorem 1's argument — only graph mapping assertions invent blanks and
//! (because `Q_J` drops blank tuples, the `rt` guard of the relational
//! encoding) freshly created blanks never re-trigger them — bounds the
//! chase, giving PTIME data complexity. Budgets are still enforced so
//! that misuse fails loudly.
//!
//! **Delta-driven execution.** The chase is monotone, so the engine is
//! semi-naive throughout:
//!
//! * equivalence repairs drain the graph's insertion log
//!   ([`Graph::log_since`]) — each inserted triple is examined once per
//!   equivalence neighbour of its terms, instead of rescanning every
//!   equivalence constant every round;
//! * each graph mapping assertion evaluates its premise only over the
//!   delta window since its previous evaluation
//!   ([`rps_query::evaluate_query_ids_delta`]), and a per-assertion memo
//!   of already-processed premise tuples (fired or found satisfied — both
//!   states are permanent) skips the per-tuple satisfaction subquery for
//!   everything seen before;
//! * all per-round work runs on interned [`TermId`]s; terms are only
//!   materialised when a firing instantiates its conclusion.
//!
//! **Two firing modes.** [`FiringMode::Restricted`] is the paper's chase:
//! a premise tuple whose conclusion is already satisfied (`t ∈ Q'_J`)
//! does not fire. That chase is *order-dependent* — which firings are
//! skipped depends on what happened to be derived first — so two runs
//! over the same final base data can produce different (homomorphically
//! equivalent, but not identical) universal solutions.
//! [`FiringMode::Skolem`] removes the satisfaction guard and names the
//! invented blanks deterministically from the firing itself (assertion
//! index + premise tuple), making the chase *confluent*: the result is
//! the least fixpoint of the repair rules, independent of execution
//! order. That order-independence is what lets the live-update layer
//! ([`crate::live`]) maintain a solution incrementally and still promise
//! byte-identical triples to a from-scratch re-chase. Termination still
//! holds: premise tuples are blank-free (the `rt` guard), so the skolem
//! chase fires at most once per assertion and base-domain tuple.

use crate::mapping::GraphMappingAssertion;
use crate::system::RdfPeerSystem;
use rps_query::{
    evaluate_query, evaluate_query_ids, evaluate_query_ids_delta, PreparedPattern, Semantics,
    Variable,
};
use rps_rdf::{Graph, IdTriple, Term, TermId, TriplePosition};
use std::collections::{BTreeSet, HashMap, HashSet};

/// How graph mapping assertions fire (see the module docs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FiringMode {
    /// The paper's restricted chase: skip a premise tuple when the
    /// conclusion is already satisfied; invent counter-named blanks.
    #[default]
    Restricted,
    /// The confluent variant: always fire, naming existential blanks
    /// deterministically from (assertion, premise tuple) so the result
    /// is the order-independent least fixpoint. Used by
    /// [`crate::live::LiveSession`] and its differential test oracle.
    Skolem,
}

/// Budgets for an RPS chase run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RpsChaseConfig {
    /// Maximum number of rounds (full passes over all mappings).
    pub max_rounds: usize,
    /// Maximum number of triples in the universal solution.
    pub max_triples: usize,
    /// The firing mode (restricted by default).
    pub firing: FiringMode,
}

impl Default for RpsChaseConfig {
    fn default() -> Self {
        RpsChaseConfig {
            max_rounds: 10_000,
            max_triples: 10_000_000,
            firing: FiringMode::Restricted,
        }
    }
}

/// Statistics of a chase run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RpsChaseStats {
    /// Rounds executed.
    pub rounds: usize,
    /// Graph-mapping-assertion firings.
    pub gma_firings: usize,
    /// Triples copied by equivalence repairs.
    pub eq_copies: usize,
    /// Fresh blank nodes created.
    pub blanks_created: u64,
    /// Firings skipped because instantiation would produce invalid RDF
    /// (e.g. a literal in subject position).
    pub invalid_firings: usize,
    /// Triples retracted by delete-and-rederive cascades (live updates).
    pub retractions: usize,
    /// Previously retracted firings re-fired because their premise still
    /// held after a deletion (live updates).
    pub refirings: usize,
}

/// A universal solution produced by the chase.
#[derive(Clone, Debug)]
pub struct UniversalSolution {
    /// The chased peer-to-peer database `J`.
    pub graph: Graph,
    /// Run statistics.
    pub stats: RpsChaseStats,
    /// `true` iff a fixpoint was reached (always the case within default
    /// budgets, per Theorem 1).
    pub complete: bool,
}

/// Runs Algorithm 1 on a system, producing a universal solution.
pub fn chase_system(system: &RdfPeerSystem, config: &RpsChaseConfig) -> UniversalSolution {
    let mut engine = ChaseEngine::new(system, config, false);
    let complete = engine.run();
    if complete {
        // Fixpoint: the solution never grows again. Seal the store
        // (flush the sorted-run tail into an immutable run) so every
        // later scan — including concurrent ones through a frozen
        // session — merges immutable runs only.
        engine.graph.seal();
    }
    UniversalSolution {
        stats: engine.stats,
        complete,
        graph: engine.graph,
    }
}

/// One firing of a graph mapping assertion, recorded when provenance
/// tracking is on: which assertion fired on which premise tuple, the
/// premise triples that supported it (one witness), and the conclusion
/// triples it stands behind. Delete-and-rederive walks these records.
struct FiringRecord {
    gma: usize,
    tuple: Vec<TermId>,
    witness: Vec<IdTriple>,
    conclusions: Vec<IdTriple>,
    live: bool,
}

/// Minimal derivation provenance, maintained only for live sessions
/// (`track_provenance`). Maps are additive and never shrink; stale
/// entries (a dead firing, a re-extracted witness) are filtered at use.
#[derive(Default)]
struct Provenance {
    firings: Vec<FiringRecord>,
    /// Triple → firings whose *current* witness contains it.
    dependents: HashMap<IdTriple, Vec<u32>>,
    /// Triple → every firing whose conclusions contain it (live or not).
    producers: HashMap<IdTriple, Vec<u32>>,
    /// Triple → equivalence copies first derived from it.
    eq_children: HashMap<IdTriple, Vec<IdTriple>>,
}

/// The chase loop's persistent state: graph, semi-naive marks, memos and
/// compiled plans. [`chase_system`] drives it once to a fixpoint;
/// [`crate::live::LiveSession`] keeps one alive across update batches so
/// every `run()` continues from the delta windows instead of starting
/// over.
pub(crate) struct ChaseEngine {
    pub(crate) graph: Graph,
    pub(crate) config: RpsChaseConfig,
    pub(crate) stats: RpsChaseStats,
    blank_counter: u64,
    /// Term-level equivalence adjacency (both directions); id-level
    /// neighbour lists are resolved lazily and cached — the dictionary
    /// is append-only, so cached ids stay valid.
    eq_adj: HashMap<Term, Vec<Term>>,
    eq_cache: HashMap<TermId, Vec<TermId>>,
    /// Log index up to which equivalence repairs have been applied.
    eq_mark: usize,
    gmas: Vec<GraphMappingAssertion>,
    /// Per assertion: the log index of its previous premise evaluation.
    gma_marks: Vec<usize>,
    /// Per assertion: premise tuples already processed (fired or
    /// satisfied — permanent states under the restricted chase; under
    /// the skolem chase a retraction may remove a tuple again).
    processed: Vec<HashSet<Vec<TermId>>>,
    /// Conclusions compiled to id slots, so firing assembles `IdTriple`s
    /// directly instead of substituting, validating and re-interning
    /// term-level patterns on every trigger.
    plans: Vec<ConclusionPlan>,
    /// Conclusion patterns compiled once for the per-tuple satisfaction
    /// checks (`t ∈ Q'_J`; restricted mode only).
    conclusion_pats: Vec<PreparedPattern>,
    /// Premise patterns compiled once for witness extraction and the
    /// rederive premise re-checks (provenance mode only).
    premise_pats: Vec<PreparedPattern>,
    prov: Option<Provenance>,
}

impl ChaseEngine {
    pub(crate) fn new(
        system: &RdfPeerSystem,
        config: &RpsChaseConfig,
        track_provenance: bool,
    ) -> Self {
        let mut graph = system.stored_database();
        let mut eq_adj: HashMap<Term, Vec<Term>> = HashMap::new();
        for eq in system.equivalences() {
            let c = Term::Iri(eq.left.clone());
            let cp = Term::Iri(eq.right.clone());
            eq_adj.entry(c.clone()).or_default().push(cp.clone());
            eq_adj.entry(cp).or_default().push(c);
        }
        let gmas: Vec<GraphMappingAssertion> = system.assertions().to_vec();
        let plans: Vec<ConclusionPlan> = gmas
            .iter()
            .map(|gma| ConclusionPlan::new(&gma.conclusion, &mut graph))
            .collect();
        let conclusion_pats: Vec<PreparedPattern> = gmas
            .iter()
            .map(|gma| PreparedPattern::new(&mut graph, gma.conclusion.pattern()))
            .collect();
        let premise_pats: Vec<PreparedPattern> = if track_provenance {
            gmas.iter()
                .map(|gma| PreparedPattern::new(&mut graph, gma.premise.pattern()))
                .collect()
        } else {
            Vec::new()
        };
        ChaseEngine {
            graph,
            config: config.clone(),
            stats: RpsChaseStats::default(),
            blank_counter: 0,
            eq_adj,
            eq_cache: HashMap::new(),
            eq_mark: 0,
            gma_marks: vec![0; gmas.len()],
            processed: vec![HashSet::new(); gmas.len()],
            plans,
            conclusion_pats,
            premise_pats,
            prov: track_provenance.then(Provenance::default),
            gmas,
        }
    }

    /// Interns a term into the chase graph's dictionary.
    pub(crate) fn intern(&mut self, term: &Term) -> TermId {
        self.graph.intern(term)
    }

    /// Inserts a base triple (live updates). Derivation provenance is
    /// not recorded — base multiplicity is the caller's bookkeeping.
    pub(crate) fn insert_base(&mut self, t: IdTriple) -> bool {
        self.graph.insert_ids(t)
    }

    /// Runs repair rounds until a fixpoint or until the budgets are
    /// exhausted; `true` iff a fixpoint was reached. The round budget is
    /// counted per call, so a long-lived engine gets a fresh allowance
    /// for every update batch. Does **not** seal the graph.
    pub(crate) fn run(&mut self) -> bool {
        let round_base = self.stats.rounds;
        loop {
            if self.stats.rounds - round_base >= self.config.max_rounds {
                return false;
            }
            self.stats.rounds += 1;
            let mut changed = false;

            // --- Equivalence mappings (Definition 2, item 3). ---
            // Drain the insertion log to a local fixpoint: every logged
            // triple (including the copies this loop itself inserts) is
            // examined once per equivalence neighbour of its terms. This
            // is the delta form of the `subjQ*`/`predQ*`/`objQ*` repairs.
            if !self.eq_adj.is_empty() {
                while self.eq_mark < self.graph.log_len() {
                    let Some(t) = self.graph.log_entry(self.eq_mark) else {
                        // Tombstoned by a removal; the log contract
                        // allows skipping dead entries.
                        self.eq_mark += 1;
                        continue;
                    };
                    self.eq_mark += 1;
                    for pos in TriplePosition::ALL {
                        let from_id = t.get(pos);
                        self.ensure_eq_neighbours(from_id);
                        for &to_id in &self.eq_cache[&from_id] {
                            let copy = t.with(pos, to_id);
                            if self.graph.insert_ids(copy) {
                                self.stats.eq_copies += 1;
                                changed = true;
                                if let Some(p) = &mut self.prov {
                                    p.eq_children.entry(t).or_default().push(copy);
                                }
                            }
                        }
                    }
                    if self.graph.len() > self.config.max_triples {
                        return false;
                    }
                }
            }

            // --- Graph mapping assertions (Definition 2, item 2). ---
            for gi in 0..self.gmas.len() {
                // Q_J under the blank-dropping semantics: the `rt`
                // guard. After the first full evaluation, only the delta
                // window since this assertion's previous evaluation is
                // joined: any tuple whose derivations all predate the
                // window was already enumerated (and memoised) back then.
                let from = self.gma_marks[gi];
                self.gma_marks[gi] = self.graph.log_len();
                let premise_tuples = if from == 0 {
                    evaluate_query_ids(&self.graph, &self.gmas[gi].premise, Semantics::Certain)
                } else {
                    evaluate_query_ids_delta(
                        &self.graph,
                        &self.gmas[gi].premise,
                        Semantics::Certain,
                        from,
                    )
                };
                for tuple in premise_tuples {
                    if !self.processed[gi].insert(tuple.clone()) {
                        continue;
                    }
                    if self.config.firing == FiringMode::Restricted
                        && tuple_satisfied(
                            &self.graph,
                            &self.conclusion_pats[gi],
                            &self.gmas[gi].conclusion,
                            &tuple,
                        )
                    {
                        continue;
                    }
                    if self.fire(gi, &tuple) {
                        changed = true;
                    }
                    if self.graph.len() > self.config.max_triples {
                        return false;
                    }
                }
            }

            if !changed {
                return true;
            }
        }
    }

    /// Fires assertion `gi` on `tuple`; `true` iff triples were derived
    /// (an RDF-invalid instantiation is counted and skipped).
    fn fire(&mut self, gi: usize, tuple: &[TermId]) -> bool {
        // Witness extraction happens before the conclusions go in, so a
        // firing can never be its own (cyclic) support.
        let witness = if self.prov.is_some() {
            let free = self.gmas[gi].premise.free_vars();
            self.premise_pats[gi].first_match_with(&self.graph, &|v: &Variable| {
                free.iter().position(|f| f == v).map(|i| tuple[i])
            })
        } else {
            None
        };
        let fired = match self.config.firing {
            FiringMode::Restricted => self.plans[gi]
                .fire(&mut self.graph, tuple, &mut self.blank_counter)
                .map(|blanks| (blanks, Vec::new())),
            FiringMode::Skolem => self.fire_skolem(gi, tuple),
        };
        match fired {
            Some((blanks, conclusions)) => {
                self.stats.gma_firings += 1;
                self.stats.blanks_created += blanks;
                if let Some(p) = &mut self.prov {
                    let witness = witness.expect("an enumerated premise tuple has a witness");
                    let fid = p.firings.len() as u32;
                    for &w in &witness {
                        p.dependents.entry(w).or_default().push(fid);
                    }
                    for &c in &conclusions {
                        p.producers.entry(c).or_default().push(fid);
                    }
                    p.firings.push(FiringRecord {
                        gma: gi,
                        tuple: tuple.to_vec(),
                        witness,
                        conclusions,
                        live: true,
                    });
                }
                true
            }
            None => {
                self.stats.invalid_firings += 1;
                false
            }
        }
    }

    /// The skolem firing path: deterministic blank labels, conclusions
    /// returned for provenance. Idempotent — refiring the same
    /// (assertion, tuple) re-derives the identical triples.
    fn fire_skolem(&mut self, gi: usize, tuple: &[TermId]) -> Option<(u64, Vec<IdTriple>)> {
        let labels = skolem_labels(&self.graph, gi, tuple, self.plans[gi].n_existentials);
        let dict_before = self.graph.dict().len();
        let fresh: Vec<TermId> = labels
            .iter()
            .map(|l| self.graph.intern(&Term::blank(l.clone())))
            .collect();
        let blanks = fresh.iter().filter(|id| id.index() >= dict_before).count() as u64;
        let conclusions = self.plans[gi].resolve(&self.graph, tuple, &fresh)?;
        self.graph.insert_batch(conclusions.iter().copied());
        Some((blanks, conclusions))
    }

    /// Resolves (and caches) the equivalence neighbours of a term id.
    fn ensure_eq_neighbours(&mut self, from_id: TermId) {
        if let std::collections::hash_map::Entry::Vacant(e) = self.eq_cache.entry(from_id) {
            let neighbours: Vec<TermId> = match self.eq_adj.get(self.graph.term(from_id)) {
                Some(terms) => {
                    let terms = terms.clone();
                    terms.iter().map(|n| self.graph.intern(n)).collect()
                }
                None => Vec::new(),
            };
            e.insert(neighbours);
        }
    }

    /// `true` iff `t` is one equivalence-repair step away from a triple
    /// currently in the graph — i.e. some position of `t` holds an
    /// equivalence constant whose neighbour, substituted back, names a
    /// present triple. The inverse direction of the eq drain, used by
    /// rederivation (adjacency is symmetric, so neighbours of `t`'s own
    /// terms are exactly the possible sources).
    fn eq_inverse_present(&mut self, t: IdTriple) -> bool {
        for pos in TriplePosition::ALL {
            let id = t.get(pos);
            self.ensure_eq_neighbours(id);
            for &from in &self.eq_cache[&id] {
                if self.graph.contains_ids(t.with(pos, from)) {
                    return true;
                }
            }
        }
        false
    }

    /// Delete-and-rederive (requires provenance tracking and the skolem
    /// firing mode). `candidates` are triples whose *base* support has
    /// dropped to zero; `is_base` reports whether a triple still has any
    /// base support. Returns `false` if a chase budget was exhausted
    /// while re-deriving.
    ///
    /// Phase 1 over-deletes: starting from the candidates, every triple
    /// whose recorded derivation is broken is removed — equivalence
    /// copies of a deleted source, and the conclusions of any firing
    /// whose witness lost a triple (such firings are retracted). A
    /// triple with some still-live producer firing, or base support, is
    /// kept; if that producer is retracted later in the cascade its
    /// conclusions re-enter the worklist, so the phase is a sound
    /// overestimate. Phase 2 re-derives: retracted firings whose premise
    /// still holds are re-fired (skolem naming makes this exact),
    /// deleted triples still one eq-step from a present triple are
    /// restored, and the semi-naive chase closes over the re-insertions;
    /// the loop runs to a joint fixpoint.
    pub(crate) fn retract_base(
        &mut self,
        candidates: Vec<IdTriple>,
        is_base: &dyn Fn(IdTriple) -> bool,
    ) -> bool {
        debug_assert!(
            self.prov.is_some() && self.config.firing == FiringMode::Skolem,
            "delete-and-rederive needs provenance and the confluent chase"
        );
        // --- Phase 1: over-deleting cascade. ---
        let mut deleted: Vec<IdTriple> = Vec::new();
        let mut deleted_set: HashSet<IdTriple> = HashSet::new();
        let mut retracted: Vec<u32> = Vec::new();
        let mut work = candidates;
        while let Some(t) = work.pop() {
            if deleted_set.contains(&t) || !self.graph.contains_ids(t) || is_base(t) {
                continue;
            }
            let p = self.prov.as_mut().expect("checked above");
            if let Some(fids) = p.producers.get(&t) {
                if fids.iter().any(|&f| p.firings[f as usize].live) {
                    // Still concluded by a live firing; if that firing is
                    // retracted later, `t` re-enters the worklist.
                    continue;
                }
            }
            self.graph.remove_ids(t);
            self.stats.retractions += 1;
            deleted.push(t);
            deleted_set.insert(t);
            if let Some(children) = p.eq_children.get(&t) {
                work.extend(children.iter().copied());
            }
            let fids: Vec<u32> = p.dependents.get(&t).cloned().unwrap_or_default();
            for fid in fids {
                let f = &mut p.firings[fid as usize];
                if f.live && f.witness.contains(&t) {
                    f.live = false;
                    retracted.push(fid);
                    work.extend(f.conclusions.iter().copied());
                }
            }
        }

        // --- Phase 2: rederive to a joint fixpoint. ---
        loop {
            let mut progress = false;
            // Retracted firings whose premise still holds re-fire with
            // identical conclusions (deterministic skolem naming); the
            // rest forget their premise tuple so a future insertion can
            // re-enumerate it through the delta window.
            for &fid in &retracted {
                let fid = fid as usize;
                let p = self.prov.as_ref().expect("checked above");
                if p.firings[fid].live {
                    continue;
                }
                let gi = p.firings[fid].gma;
                let tuple = p.firings[fid].tuple.clone();
                let free = self.gmas[gi].premise.free_vars();
                let witness = self.premise_pats[gi].first_match_with(&self.graph, &|v| {
                    free.iter().position(|f| f == v).map(|i| tuple[i])
                });
                match witness {
                    Some(witness) => {
                        let (blanks, conclusions) = self
                            .fire_skolem(gi, &tuple)
                            .expect("a previously fired tuple instantiates validly");
                        self.stats.gma_firings += 1;
                        self.stats.refirings += 1;
                        self.stats.blanks_created += blanks;
                        let p = self.prov.as_mut().expect("checked above");
                        for &w in &witness {
                            p.dependents.entry(w).or_default().push(fid as u32);
                        }
                        let f = &mut p.firings[fid];
                        f.witness = witness;
                        f.conclusions = conclusions;
                        f.live = true;
                        progress = true;
                    }
                    None => {
                        self.processed[gi].remove(&tuple);
                    }
                }
            }
            // Deleted triples still derivable by one inverse eq step.
            for &t in &deleted {
                if self.graph.contains_ids(t) {
                    continue;
                }
                if self.eq_inverse_present(t) {
                    self.graph.insert_ids(t);
                    self.stats.eq_copies += 1;
                    progress = true;
                }
            }
            if !progress {
                return true;
            }
            // Close over the re-insertions (they are in the log, so the
            // semi-naive machinery picks them up as a delta).
            if !self.run() {
                return false;
            }
        }
    }
}

/// Deterministic blank labels for a skolem firing: one per existential
/// variable, injectively encoding (assertion index, existential index,
/// premise tuple *terms*). Term-level encoding — not [`TermId`]s — keeps
/// the labels identical across engines with different interning orders,
/// which is what makes an incremental maintenance run byte-identical to
/// a from-scratch re-chase. The `sk` prefix cannot collide with peer
/// blanks (scoped `p{idx}_…`) or restricted-chase blanks (`b{n}`).
fn skolem_labels(graph: &Graph, gi: usize, tuple: &[TermId], n: usize) -> Vec<String> {
    let mut suffix = String::new();
    for &id in tuple {
        suffix.push('|');
        for ch in format!("{:?}", graph.term(id)).chars() {
            match ch {
                '|' => suffix.push_str("\\p"),
                '\\' => suffix.push_str("\\\\"),
                c => suffix.push(c),
            }
        }
    }
    (0..n).map(|j| format!("sk{gi}.{j}{suffix}")).collect()
}

/// One position of a compiled conclusion pattern.
#[derive(Clone, Copy)]
enum ConcSlot {
    /// A constant, interned up front.
    Const(TermId),
    /// The i-th free (answer) variable — instantiated from the tuple.
    Free(usize),
    /// The j-th existential variable — instantiated with a fresh blank.
    Exist(usize),
}

/// A conclusion pattern compiled against the chase graph's dictionary:
/// firing assembles [`rps_rdf::IdTriple`]s from the premise tuple's ids
/// without pattern substitution or term re-interning (fresh blanks are
/// the only per-firing dictionary traffic).
struct ConclusionPlan {
    slots: Vec<[ConcSlot; 3]>,
    n_existentials: usize,
}

impl ConclusionPlan {
    fn new(conclusion: &rps_query::GraphPatternQuery, graph: &mut Graph) -> Self {
        let free = conclusion.free_vars().to_vec();
        let existentials: Vec<Variable> = conclusion.existential_vars().into_iter().collect();
        let compile_tv = |tv: &rps_query::TermOrVar, graph: &mut Graph| match tv {
            rps_query::TermOrVar::Term(t) => ConcSlot::Const(graph.intern(t)),
            rps_query::TermOrVar::Var(v) => match free.iter().position(|f| f == v) {
                Some(i) => ConcSlot::Free(i),
                None => ConcSlot::Exist(
                    existentials
                        .iter()
                        .position(|e| e == v)
                        .expect("non-free conclusion variable is existential"),
                ),
            },
        };
        let slots = conclusion
            .pattern()
            .patterns()
            .iter()
            .map(|tp| {
                [
                    compile_tv(&tp.s, graph),
                    compile_tv(&tp.p, graph),
                    compile_tv(&tp.o, graph),
                ]
            })
            .collect();
        ConclusionPlan {
            slots,
            n_existentials: existentials.len(),
        }
    }

    /// Instantiates and inserts the conclusion for one premise tuple.
    /// Returns the number of fresh blanks on success, or `None` when the
    /// instantiation violates RDF positional constraints (a literal in
    /// subject position, a non-IRI predicate) — nothing is inserted then.
    fn fire(&self, graph: &mut Graph, tuple: &[TermId], blank_counter: &mut u64) -> Option<u64> {
        let fresh: Vec<TermId> = (0..self.n_existentials)
            .map(|_| {
                let b = Term::Blank(rps_rdf::BlankNode::fresh(*blank_counter));
                *blank_counter += 1;
                graph.intern(&b)
            })
            .collect();
        let to_insert = self.resolve(graph, tuple, &fresh)?;
        // The batch path: conclusions with several conjuncts go into the
        // store in one merge-batch instead of per-triple tail pushes.
        graph.insert_batch(to_insert);
        Some(self.n_existentials as u64)
    }

    /// Instantiates the conclusion triples for one premise tuple and a
    /// pre-interned existential assignment, validating RDF positional
    /// constraints. Nothing is inserted.
    fn resolve(&self, graph: &Graph, tuple: &[TermId], fresh: &[TermId]) -> Option<Vec<IdTriple>> {
        let resolve = |s: &ConcSlot| match s {
            ConcSlot::Const(id) => *id,
            ConcSlot::Free(i) => tuple[*i],
            ConcSlot::Exist(j) => fresh[*j],
        };
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let t = IdTriple::new(resolve(&slot[0]), resolve(&slot[1]), resolve(&slot[2]));
            let dict = graph.dict();
            if dict.kind(t.s) == rps_rdf::TermKind::Literal
                || dict.kind(t.p) != rps_rdf::TermKind::Iri
            {
                return None;
            }
            out.push(t);
        }
        Some(out)
    }
}

/// Checks `t ∈ Q'_J`: bind the conclusion's free variables to the tuple's
/// term ids and test for a match against the pre-compiled pattern — no
/// pattern copy, no per-check compilation, no re-interning.
fn tuple_satisfied(
    graph: &Graph,
    prepared: &PreparedPattern,
    conclusion: &rps_query::GraphPatternQuery,
    tuple: &[TermId],
) -> bool {
    let free = conclusion.free_vars();
    prepared.has_match_with(graph, &|v: &Variable| {
        free.iter().position(|f| f == v).map(|i| tuple[i])
    })
}

/// Checks Definition 2 directly: is `candidate` a solution for the system
/// based on its stored database? Used by tests and property checks.
pub fn is_solution(system: &RdfPeerSystem, candidate: &Graph) -> bool {
    // (1) D ⊆ I.
    if !system.stored_database().is_subgraph_of(candidate) {
        return false;
    }
    // (2) Q_I ⊆ Q'_I for every graph mapping assertion.
    for gma in system.assertions() {
        let lhs = evaluate_query(candidate, &gma.premise, Semantics::Certain);
        let rhs = evaluate_query(candidate, &gma.conclusion, Semantics::Certain);
        if !lhs.is_subset(&rhs) {
            return false;
        }
    }
    // (3) star-query equality for every equivalence mapping.
    for eq in system.equivalences() {
        let c = Term::Iri(eq.left.clone());
        let cp = Term::Iri(eq.right.clone());
        for (qc, qcp) in [
            (
                rps_query::GraphPatternQuery::subj_q(c.clone()),
                rps_query::GraphPatternQuery::subj_q(cp.clone()),
            ),
            (
                rps_query::GraphPatternQuery::pred_q(c.clone()),
                rps_query::GraphPatternQuery::pred_q(cp.clone()),
            ),
            (
                rps_query::GraphPatternQuery::obj_q(c.clone()),
                rps_query::GraphPatternQuery::obj_q(cp.clone()),
            ),
        ] {
            let a: BTreeSet<_> = evaluate_query(candidate, &qc, Semantics::Star);
            let b: BTreeSet<_> = evaluate_query(candidate, &qcp, Semantics::Star);
            if a != b {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peer::Peer;
    use crate::system::RpsBuilder;
    use crate::PeerId;
    use rps_query::{GraphPattern, GraphPatternQuery, TermOrVar};
    use rps_rdf::Triple;

    fn v(n: &str) -> Variable {
        Variable::new(n)
    }

    /// Two peers: peer B has `actor` facts, peer A uses
    /// `starring`/`artist`; one GMA translates B into A's shape.
    fn two_peer_system() -> RdfPeerSystem {
        let mut a = PeerId(0);
        let mut b = PeerId(0);
        let premise = GraphPatternQuery::new(
            vec![v("x"), v("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://b/actor"),
                TermOrVar::var("y"),
            ),
        );
        let conclusion = GraphPatternQuery::new(
            vec![v("x"), v("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://a/starring"),
                TermOrVar::var("z"),
            )
            .and(GraphPattern::triple(
                TermOrVar::var("z"),
                TermOrVar::iri("http://a/artist"),
                TermOrVar::var("y"),
            )),
        );
        RpsBuilder::new()
            .peer_turtle(
                "A",
                "<http://a/film> <http://a/starring> _:c .\n\
                 _:c <http://a/artist> <http://a/actor1> .",
                &mut a,
            )
            .unwrap()
            .peer_turtle(
                "B",
                "<http://b/film2> <http://b/actor> <http://b/actor2> .",
                &mut b,
            )
            .unwrap()
            .assertion(b, a, premise, conclusion)
            .unwrap()
            .build()
    }

    #[test]
    fn gma_fires_with_fresh_blank() {
        let sys = two_peer_system();
        let sol = chase_system(&sys, &RpsChaseConfig::default());
        assert!(sol.complete);
        assert_eq!(sol.stats.gma_firings, 1);
        assert_eq!(sol.stats.blanks_created, 1);
        // film2 now has a starring/artist path through a fresh blank.
        let q = GraphPatternQuery::new(
            vec![v("y")],
            GraphPattern::triple(
                TermOrVar::iri("http://b/film2"),
                TermOrVar::iri("http://a/starring"),
                TermOrVar::var("z"),
            )
            .and(GraphPattern::triple(
                TermOrVar::var("z"),
                TermOrVar::iri("http://a/artist"),
                TermOrVar::var("y"),
            )),
        );
        let ans = evaluate_query(&sol.graph, &q, Semantics::Certain);
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&vec![Term::iri("http://b/actor2")]));
    }

    #[test]
    fn chase_is_idempotent_on_satisfied_systems() {
        let sys = two_peer_system();
        let sol1 = chase_system(&sys, &RpsChaseConfig::default());
        // Chasing a system whose mappings are satisfied adds nothing:
        // rebuild a system with the solution as a single peer.
        let mut sys2 = RdfPeerSystem::new();
        sys2.add_peer(Peer::from_database("all", sol1.graph.clone()));
        for gma in sys.assertions() {
            sys2.add_assertion(gma.clone());
        }
        for eq in sys.equivalences() {
            sys2.add_equivalence(eq.clone());
        }
        let sol2 = chase_system(&sys2, &RpsChaseConfig::default());
        assert_eq!(sol2.stats.gma_firings, 0);
        assert_eq!(sol1.graph.len(), sol2.graph.len());
    }

    #[test]
    fn universal_solution_is_a_solution() {
        let sys = two_peer_system();
        let sol = chase_system(&sys, &RpsChaseConfig::default());
        assert!(is_solution(&sys, &sol.graph));
        // The bare stored database is not (the GMA is violated).
        assert!(!is_solution(&sys, &sys.stored_database()));
    }

    #[test]
    fn skolem_chase_is_a_solution_and_order_independent() {
        let sys = two_peer_system();
        let cfg = RpsChaseConfig {
            firing: FiringMode::Skolem,
            ..RpsChaseConfig::default()
        };
        let sol = chase_system(&sys, &cfg);
        assert!(sol.complete);
        assert!(is_solution(&sys, &sol.graph));
        // Confluence: a second run over the same system produces the
        // same term-level triple set (the least fixpoint).
        let sol2 = chase_system(&sys, &cfg);
        let a: BTreeSet<_> = sol.graph.iter().collect();
        let b: BTreeSet<_> = sol2.graph.iter().collect();
        assert_eq!(a, b);
        // The skolem chase fires the satisfied assertion too (no guard),
        // so it derives at least as much as the restricted chase.
        let restricted = chase_system(&sys, &RpsChaseConfig::default());
        assert!(sol.graph.len() >= restricted.graph.len());
    }

    #[test]
    fn equivalence_copies_all_three_positions() {
        let mut p = PeerId(0);
        let sys = RpsBuilder::new()
            .peer_turtle(
                "s",
                "<http://x/a> <http://x/p> <http://x/b> .\n\
                 <http://x/b> <http://x/a> <http://x/c> .\n\
                 <http://x/c> <http://x/p> <http://x/a> .",
                &mut p,
            )
            .unwrap()
            .equivalence("http://x/a", "http://y/a2")
            .build();
        let sol = chase_system(&sys, &RpsChaseConfig::default());
        assert!(sol.complete);
        let g = &sol.graph;
        let contains = |s: &str, p: &str, o: &str| {
            g.contains(&Triple::new(Term::iri(s), Term::iri(p), Term::iri(o)).unwrap())
        };
        // subject copy
        assert!(contains("http://y/a2", "http://x/p", "http://x/b"));
        // predicate copy
        assert!(contains("http://x/b", "http://y/a2", "http://x/c"));
        // object copy
        assert!(contains("http://x/c", "http://x/p", "http://y/a2"));
        assert!(is_solution(&sys, g));
    }

    #[test]
    fn equivalence_chains_propagate_transitively() {
        let mut p = PeerId(0);
        let sys = RpsBuilder::new()
            .peer_turtle("s", "<http://x/a> <http://x/p> <http://x/o> .", &mut p)
            .unwrap()
            .equivalence("http://x/a", "http://x/b")
            .equivalence("http://x/b", "http://x/c")
            .build();
        let sol = chase_system(&sys, &RpsChaseConfig::default());
        assert!(sol.graph.contains(
            &Triple::new(
                Term::iri("http://x/c"),
                Term::iri("http://x/p"),
                Term::iri("http://x/o")
            )
            .unwrap()
        ));
    }

    #[test]
    fn blank_tuples_do_not_fire_gmas() {
        // The premise matches only via a blank-containing tuple; the
        // certain semantics (the rt guard) suppresses the firing.
        let mut a = PeerId(0);
        let mut b = PeerId(0);
        let premise = GraphPatternQuery::new(
            vec![v("x"), v("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://a/p"),
                TermOrVar::var("y"),
            ),
        );
        let conclusion = GraphPatternQuery::new(
            vec![v("x"), v("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://b/q"),
                TermOrVar::var("y"),
            ),
        );
        let sys = RpsBuilder::new()
            .peer_turtle("A", "<http://a/s> <http://a/p> _:hidden .", &mut a)
            .unwrap()
            .peer_turtle("B", "<http://b/s> <http://b/q> <http://b/o> .", &mut b)
            .unwrap()
            .assertion(a, b, premise, conclusion)
            .unwrap()
            .build();
        let sol = chase_system(&sys, &RpsChaseConfig::default());
        assert!(sol.complete);
        assert_eq!(sol.stats.gma_firings, 0);
    }

    #[test]
    fn budget_exhaustion_reports_incomplete() {
        let sys = two_peer_system();
        let sol = chase_system(
            &sys,
            &RpsChaseConfig {
                max_rounds: 0,
                max_triples: 10,
                ..RpsChaseConfig::default()
            },
        );
        assert!(!sol.complete);
    }

    #[test]
    fn invalid_firings_are_counted_not_inserted() {
        // Premise binds y to a literal; conclusion puts y in subject
        // position — un-instantiable, must be skipped.
        let mut a = PeerId(0);
        let mut b = PeerId(0);
        let premise = GraphPatternQuery::new(
            vec![v("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://a/p"),
                TermOrVar::var("y"),
            ),
        );
        let conclusion = GraphPatternQuery::new(
            vec![v("y")],
            GraphPattern::triple(
                TermOrVar::var("y"),
                TermOrVar::iri("http://b/q"),
                TermOrVar::var("z"),
            ),
        );
        let sys = RpsBuilder::new()
            .peer_turtle("A", "<http://a/s> <http://a/p> \"literal\" .", &mut a)
            .unwrap()
            .peer_turtle("B", "<http://b/s> <http://b/q> <http://b/o> .", &mut b)
            .unwrap()
            .assertion(a, b, premise, conclusion)
            .unwrap()
            .build();
        let sol = chase_system(&sys, &RpsChaseConfig::default());
        assert!(sol.complete);
        assert_eq!(sol.stats.gma_firings, 0);
        assert_eq!(sol.stats.invalid_firings, 1);
    }
}
