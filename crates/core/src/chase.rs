//! Algorithm 1: the RPS chase, producing a universal solution.
//!
//! The chase starts from the stored database `D` and repeatedly repairs
//! violated mappings:
//!
//! * a graph mapping assertion `Q ⇝ Q'` is violated when some tuple
//!   `t ∈ Q_J \ Q'_J`; the repair instantiates the conclusion pattern
//!   with `t` on the free variables and *fresh blank nodes* on the
//!   existential variables (the labelled nulls of Section 3);
//! * an equivalence mapping `c ≡ₑ c'` is violated when the
//!   `subjQ*`/`predQ*`/`objQ*` result sets of `c` and `c'` differ; the
//!   repair copies the missing triples in both directions for all three
//!   positions (note the `Q*` semantics: blank nodes participate).
//!
//! Theorem 1's argument — only graph mapping assertions invent blanks and
//! (because `Q_J` drops blank tuples, the `rt` guard of the relational
//! encoding) freshly created blanks never re-trigger them — bounds the
//! chase, giving PTIME data complexity. Budgets are still enforced so
//! that misuse fails loudly.

use crate::system::RdfPeerSystem;
use rps_query::{evaluate_query, has_match, Semantics, Variable};
use rps_rdf::{Graph, Term, Triple, TriplePosition};
use std::collections::BTreeSet;

/// Budgets for an RPS chase run.
#[derive(Clone, Debug)]
pub struct RpsChaseConfig {
    /// Maximum number of rounds (full passes over all mappings).
    pub max_rounds: usize,
    /// Maximum number of triples in the universal solution.
    pub max_triples: usize,
}

impl Default for RpsChaseConfig {
    fn default() -> Self {
        RpsChaseConfig {
            max_rounds: 10_000,
            max_triples: 10_000_000,
        }
    }
}

/// Statistics of a chase run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RpsChaseStats {
    /// Rounds executed.
    pub rounds: usize,
    /// Graph-mapping-assertion firings.
    pub gma_firings: usize,
    /// Triples copied by equivalence repairs.
    pub eq_copies: usize,
    /// Fresh blank nodes created.
    pub blanks_created: u64,
    /// Firings skipped because instantiation would produce invalid RDF
    /// (e.g. a literal in subject position).
    pub invalid_firings: usize,
}

/// A universal solution produced by the chase.
#[derive(Clone, Debug)]
pub struct UniversalSolution {
    /// The chased peer-to-peer database `J`.
    pub graph: Graph,
    /// Run statistics.
    pub stats: RpsChaseStats,
    /// `true` iff a fixpoint was reached (always the case within default
    /// budgets, per Theorem 1).
    pub complete: bool,
}

/// Runs Algorithm 1 on a system, producing a universal solution.
pub fn chase_system(system: &RdfPeerSystem, config: &RpsChaseConfig) -> UniversalSolution {
    let mut graph = system.stored_database();
    let mut stats = RpsChaseStats::default();
    let mut blank_counter: u64 = 0;

    loop {
        if stats.rounds >= config.max_rounds {
            return UniversalSolution {
                graph,
                stats,
                complete: false,
            };
        }
        stats.rounds += 1;
        let mut changed = false;

        // --- Equivalence mappings (Definition 2, item 3). ---
        // Iterate this inner repair to a local fixpoint: equivalence
        // repairs are cheap and confluent, and saturating them first
        // exposes more graph-mapping matches per outer round.
        loop {
            let copies = equivalence_round(&mut graph, system);
            if copies == 0 {
                break;
            }
            stats.eq_copies += copies;
            changed = true;
            if graph.len() > config.max_triples {
                return UniversalSolution {
                    graph,
                    stats,
                    complete: false,
                };
            }
        }

        // --- Graph mapping assertions (Definition 2, item 2). ---
        for gma in system.assertions() {
            // Q_J under the blank-dropping semantics: the `rt` guard.
            let premise_tuples = evaluate_query(&graph, &gma.premise, Semantics::Certain);
            for tuple in premise_tuples {
                if tuple_satisfied(&graph, &gma.conclusion, &tuple) {
                    continue;
                }
                // Fire: instantiate the conclusion with the tuple and
                // fresh blanks for existential variables.
                let free = gma.conclusion.free_vars().to_vec();
                let existentials: Vec<Variable> =
                    gma.conclusion.existential_vars().into_iter().collect();
                let fresh: Vec<Term> = existentials
                    .iter()
                    .map(|_| {
                        let b = Term::Blank(rps_rdf::BlankNode::fresh(blank_counter));
                        blank_counter += 1;
                        b
                    })
                    .collect();
                let subst = |v: &Variable| -> Option<Term> {
                    if let Some(i) = free.iter().position(|f| f == v) {
                        return Some(tuple[i].clone());
                    }
                    existentials
                        .iter()
                        .position(|e| e == v)
                        .map(|i| fresh[i].clone())
                };
                let grounded = gma.conclusion.pattern().substitute(&subst);
                let mut valid = true;
                let mut to_insert: Vec<Triple> = Vec::with_capacity(grounded.len());
                for tp in grounded.patterns() {
                    match tp.as_triple() {
                        Some(t) => to_insert.push(t),
                        None => {
                            valid = false;
                            break;
                        }
                    }
                }
                if !valid {
                    stats.invalid_firings += 1;
                    continue;
                }
                for t in to_insert {
                    graph.insert(&t);
                }
                stats.gma_firings += 1;
                stats.blanks_created += existentials.len() as u64;
                changed = true;
                if graph.len() > config.max_triples {
                    return UniversalSolution {
                        graph,
                        stats,
                        complete: false,
                    };
                }
            }
        }

        if !changed {
            return UniversalSolution {
                graph,
                stats,
                complete: true,
            };
        }
    }
}

/// Checks `t ∈ Q'_J`: substitute the tuple into the conclusion's free
/// variables and test for a match.
fn tuple_satisfied(
    graph: &Graph,
    conclusion: &rps_query::GraphPatternQuery,
    tuple: &[Term],
) -> bool {
    let free = conclusion.free_vars();
    let subst = |v: &Variable| -> Option<Term> {
        free.iter()
            .position(|f| f == v)
            .map(|i| tuple[i].clone())
    };
    let bound = conclusion.pattern().substitute(&subst);
    has_match(graph, &bound)
}

/// One pass of equivalence repairs; returns the number of triples added.
fn equivalence_round(graph: &mut Graph, system: &RdfPeerSystem) -> usize {
    let mut added = 0usize;
    for eq in system.equivalences() {
        let c = Term::Iri(eq.left.clone());
        let cp = Term::Iri(eq.right.clone());
        for pos in TriplePosition::ALL {
            added += copy_position(graph, &c, &cp, pos);
            added += copy_position(graph, &cp, &c, pos);
        }
    }
    added
}

/// Copies every triple having `from` at `pos` to the variant with `to`
/// at `pos` (the `subjQ*`/`predQ*`/`objQ*` repairs). Returns insertions.
fn copy_position(graph: &mut Graph, from: &Term, to: &Term, pos: TriplePosition) -> usize {
    let Some(from_id) = graph.term_id(from) else {
        return 0;
    };
    let (s, p, o) = match pos {
        TriplePosition::Subject => (Some(from_id), None, None),
        TriplePosition::Predicate => (None, Some(from_id), None),
        TriplePosition::Object => (None, None, Some(from_id)),
    };
    let matches: Vec<_> = graph.match_ids(s, p, o).collect();
    if matches.is_empty() {
        return 0;
    }
    let to_id = graph.intern(to);
    let mut added = 0;
    for t in matches {
        if graph.insert_ids(t.with(pos, to_id)) {
            added += 1;
        }
    }
    added
}

/// Checks Definition 2 directly: is `candidate` a solution for the system
/// based on its stored database? Used by tests and property checks.
pub fn is_solution(system: &RdfPeerSystem, candidate: &Graph) -> bool {
    // (1) D ⊆ I.
    if !system.stored_database().is_subgraph_of(candidate) {
        return false;
    }
    // (2) Q_I ⊆ Q'_I for every graph mapping assertion.
    for gma in system.assertions() {
        let lhs = evaluate_query(candidate, &gma.premise, Semantics::Certain);
        let rhs = evaluate_query(candidate, &gma.conclusion, Semantics::Certain);
        if !lhs.is_subset(&rhs) {
            return false;
        }
    }
    // (3) star-query equality for every equivalence mapping.
    for eq in system.equivalences() {
        let c = Term::Iri(eq.left.clone());
        let cp = Term::Iri(eq.right.clone());
        for (qc, qcp) in [
            (
                rps_query::GraphPatternQuery::subj_q(c.clone()),
                rps_query::GraphPatternQuery::subj_q(cp.clone()),
            ),
            (
                rps_query::GraphPatternQuery::pred_q(c.clone()),
                rps_query::GraphPatternQuery::pred_q(cp.clone()),
            ),
            (
                rps_query::GraphPatternQuery::obj_q(c.clone()),
                rps_query::GraphPatternQuery::obj_q(cp.clone()),
            ),
        ] {
            let a: BTreeSet<_> = evaluate_query(candidate, &qc, Semantics::Star);
            let b: BTreeSet<_> = evaluate_query(candidate, &qcp, Semantics::Star);
            if a != b {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peer::Peer;
    use crate::system::RpsBuilder;
    use crate::PeerId;
    use rps_query::{GraphPattern, GraphPatternQuery, TermOrVar};

    fn v(n: &str) -> Variable {
        Variable::new(n)
    }

    /// Two peers: peer B has `actor` facts, peer A uses
    /// `starring`/`artist`; one GMA translates B into A's shape.
    fn two_peer_system() -> RdfPeerSystem {
        let mut a = PeerId(0);
        let mut b = PeerId(0);
        let premise = GraphPatternQuery::new(
            vec![v("x"), v("y")],
            GraphPattern::triple(TermOrVar::var("x"), TermOrVar::iri("http://b/actor"), TermOrVar::var("y")),
        );
        let conclusion = GraphPatternQuery::new(
            vec![v("x"), v("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://a/starring"),
                TermOrVar::var("z"),
            )
            .and(GraphPattern::triple(
                TermOrVar::var("z"),
                TermOrVar::iri("http://a/artist"),
                TermOrVar::var("y"),
            )),
        );
        RpsBuilder::new()
            .peer_turtle(
                "A",
                "<http://a/film> <http://a/starring> _:c .\n\
                 _:c <http://a/artist> <http://a/actor1> .",
                &mut a,
            )
            .unwrap()
            .peer_turtle(
                "B",
                "<http://b/film2> <http://b/actor> <http://b/actor2> .",
                &mut b,
            )
            .unwrap()
            .assertion(b, a, premise, conclusion)
            .unwrap()
            .build()
    }

    #[test]
    fn gma_fires_with_fresh_blank() {
        let sys = two_peer_system();
        let sol = chase_system(&sys, &RpsChaseConfig::default());
        assert!(sol.complete);
        assert_eq!(sol.stats.gma_firings, 1);
        assert_eq!(sol.stats.blanks_created, 1);
        // film2 now has a starring/artist path through a fresh blank.
        let q = GraphPatternQuery::new(
            vec![v("y")],
            GraphPattern::triple(
                TermOrVar::iri("http://b/film2"),
                TermOrVar::iri("http://a/starring"),
                TermOrVar::var("z"),
            )
            .and(GraphPattern::triple(
                TermOrVar::var("z"),
                TermOrVar::iri("http://a/artist"),
                TermOrVar::var("y"),
            )),
        );
        let ans = evaluate_query(&sol.graph, &q, Semantics::Certain);
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&vec![Term::iri("http://b/actor2")]));
    }

    #[test]
    fn chase_is_idempotent_on_satisfied_systems() {
        let sys = two_peer_system();
        let sol1 = chase_system(&sys, &RpsChaseConfig::default());
        // Chasing a system whose mappings are satisfied adds nothing:
        // rebuild a system with the solution as a single peer.
        let mut sys2 = RdfPeerSystem::new();
        sys2.add_peer(Peer::from_database("all", sol1.graph.clone()));
        for gma in sys.assertions() {
            sys2.add_assertion(gma.clone());
        }
        for eq in sys.equivalences() {
            sys2.add_equivalence(eq.clone());
        }
        let sol2 = chase_system(&sys2, &RpsChaseConfig::default());
        assert_eq!(sol2.stats.gma_firings, 0);
        assert_eq!(sol1.graph.len(), sol2.graph.len());
    }

    #[test]
    fn universal_solution_is_a_solution() {
        let sys = two_peer_system();
        let sol = chase_system(&sys, &RpsChaseConfig::default());
        assert!(is_solution(&sys, &sol.graph));
        // The bare stored database is not (the GMA is violated).
        assert!(!is_solution(&sys, &sys.stored_database()));
    }

    #[test]
    fn equivalence_copies_all_three_positions() {
        let mut p = PeerId(0);
        let sys = RpsBuilder::new()
            .peer_turtle(
                "s",
                "<http://x/a> <http://x/p> <http://x/b> .\n\
                 <http://x/b> <http://x/a> <http://x/c> .\n\
                 <http://x/c> <http://x/p> <http://x/a> .",
                &mut p,
            )
            .unwrap()
            .equivalence("http://x/a", "http://y/a2")
            .build();
        let sol = chase_system(&sys, &RpsChaseConfig::default());
        assert!(sol.complete);
        let g = &sol.graph;
        let contains = |s: &str, p: &str, o: &str| {
            g.contains(&Triple::new(Term::iri(s), Term::iri(p), Term::iri(o)).unwrap())
        };
        // subject copy
        assert!(contains("http://y/a2", "http://x/p", "http://x/b"));
        // predicate copy
        assert!(contains("http://x/b", "http://y/a2", "http://x/c"));
        // object copy
        assert!(contains("http://x/c", "http://x/p", "http://y/a2"));
        assert!(is_solution(&sys, g));
    }

    #[test]
    fn equivalence_chains_propagate_transitively() {
        let mut p = PeerId(0);
        let sys = RpsBuilder::new()
            .peer_turtle("s", "<http://x/a> <http://x/p> <http://x/o> .", &mut p)
            .unwrap()
            .equivalence("http://x/a", "http://x/b")
            .equivalence("http://x/b", "http://x/c")
            .build();
        let sol = chase_system(&sys, &RpsChaseConfig::default());
        assert!(sol
            .graph
            .contains(&Triple::new(Term::iri("http://x/c"), Term::iri("http://x/p"), Term::iri("http://x/o")).unwrap()));
    }

    #[test]
    fn blank_tuples_do_not_fire_gmas() {
        // The premise matches only via a blank-containing tuple; the
        // certain semantics (the rt guard) suppresses the firing.
        let mut a = PeerId(0);
        let mut b = PeerId(0);
        let premise = GraphPatternQuery::new(
            vec![v("x"), v("y")],
            GraphPattern::triple(TermOrVar::var("x"), TermOrVar::iri("http://a/p"), TermOrVar::var("y")),
        );
        let conclusion = GraphPatternQuery::new(
            vec![v("x"), v("y")],
            GraphPattern::triple(TermOrVar::var("x"), TermOrVar::iri("http://b/q"), TermOrVar::var("y")),
        );
        let sys = RpsBuilder::new()
            .peer_turtle("A", "<http://a/s> <http://a/p> _:hidden .", &mut a)
            .unwrap()
            .peer_turtle("B", "<http://b/s> <http://b/q> <http://b/o> .", &mut b)
            .unwrap()
            .assertion(a, b, premise, conclusion)
            .unwrap()
            .build();
        let sol = chase_system(&sys, &RpsChaseConfig::default());
        assert!(sol.complete);
        assert_eq!(sol.stats.gma_firings, 0);
    }

    #[test]
    fn budget_exhaustion_reports_incomplete() {
        let sys = two_peer_system();
        let sol = chase_system(
            &sys,
            &RpsChaseConfig {
                max_rounds: 0,
                max_triples: 10,
            },
        );
        assert!(!sol.complete);
    }

    #[test]
    fn invalid_firings_are_counted_not_inserted() {
        // Premise binds y to a literal; conclusion puts y in subject
        // position — un-instantiable, must be skipped.
        let mut a = PeerId(0);
        let mut b = PeerId(0);
        let premise = GraphPatternQuery::new(
            vec![v("y")],
            GraphPattern::triple(TermOrVar::var("x"), TermOrVar::iri("http://a/p"), TermOrVar::var("y")),
        );
        let conclusion = GraphPatternQuery::new(
            vec![v("y")],
            GraphPattern::triple(TermOrVar::var("y"), TermOrVar::iri("http://b/q"), TermOrVar::var("z")),
        );
        let sys = RpsBuilder::new()
            .peer_turtle("A", "<http://a/s> <http://a/p> \"literal\" .", &mut a)
            .unwrap()
            .peer_turtle("B", "<http://b/s> <http://b/q> <http://b/o> .", &mut b)
            .unwrap()
            .assertion(a, b, premise, conclusion)
            .unwrap()
            .build();
        let sol = chase_system(&sys, &RpsChaseConfig::default());
        assert!(sol.complete);
        assert_eq!(sol.stats.gma_firings, 0);
        assert_eq!(sol.stats.invalid_firings, 1);
    }
}
