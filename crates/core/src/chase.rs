//! Algorithm 1: the RPS chase, producing a universal solution.
//!
//! The chase starts from the stored database `D` and repeatedly repairs
//! violated mappings:
//!
//! * a graph mapping assertion `Q ⇝ Q'` is violated when some tuple
//!   `t ∈ Q_J \ Q'_J`; the repair instantiates the conclusion pattern
//!   with `t` on the free variables and *fresh blank nodes* on the
//!   existential variables (the labelled nulls of Section 3);
//! * an equivalence mapping `c ≡ₑ c'` is violated when the
//!   `subjQ*`/`predQ*`/`objQ*` result sets of `c` and `c'` differ; the
//!   repair copies the missing triples in both directions for all three
//!   positions (note the `Q*` semantics: blank nodes participate).
//!
//! Theorem 1's argument — only graph mapping assertions invent blanks and
//! (because `Q_J` drops blank tuples, the `rt` guard of the relational
//! encoding) freshly created blanks never re-trigger them — bounds the
//! chase, giving PTIME data complexity. Budgets are still enforced so
//! that misuse fails loudly.
//!
//! **Delta-driven execution.** The chase is monotone, so the engine is
//! semi-naive throughout:
//!
//! * equivalence repairs drain the graph's insertion log
//!   ([`Graph::log_since`]) — each inserted triple is examined once per
//!   equivalence neighbour of its terms, instead of rescanning every
//!   equivalence constant every round;
//! * each graph mapping assertion evaluates its premise only over the
//!   delta window since its previous evaluation
//!   ([`rps_query::evaluate_query_ids_delta`]), and a per-assertion memo
//!   of already-processed premise tuples (fired or found satisfied — both
//!   states are permanent) skips the per-tuple satisfaction subquery for
//!   everything seen before;
//! * all per-round work runs on interned [`TermId`]s; terms are only
//!   materialised when a firing instantiates its conclusion.

use crate::system::RdfPeerSystem;
use rps_query::{
    evaluate_query, evaluate_query_ids, evaluate_query_ids_delta, Semantics, Variable,
};
use rps_rdf::{Graph, Term, TermId, TriplePosition};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Budgets for an RPS chase run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RpsChaseConfig {
    /// Maximum number of rounds (full passes over all mappings).
    pub max_rounds: usize,
    /// Maximum number of triples in the universal solution.
    pub max_triples: usize,
}

impl Default for RpsChaseConfig {
    fn default() -> Self {
        RpsChaseConfig {
            max_rounds: 10_000,
            max_triples: 10_000_000,
        }
    }
}

/// Statistics of a chase run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RpsChaseStats {
    /// Rounds executed.
    pub rounds: usize,
    /// Graph-mapping-assertion firings.
    pub gma_firings: usize,
    /// Triples copied by equivalence repairs.
    pub eq_copies: usize,
    /// Fresh blank nodes created.
    pub blanks_created: u64,
    /// Firings skipped because instantiation would produce invalid RDF
    /// (e.g. a literal in subject position).
    pub invalid_firings: usize,
}

/// A universal solution produced by the chase.
#[derive(Clone, Debug)]
pub struct UniversalSolution {
    /// The chased peer-to-peer database `J`.
    pub graph: Graph,
    /// Run statistics.
    pub stats: RpsChaseStats,
    /// `true` iff a fixpoint was reached (always the case within default
    /// budgets, per Theorem 1).
    pub complete: bool,
}

/// Runs Algorithm 1 on a system, producing a universal solution.
pub fn chase_system(system: &RdfPeerSystem, config: &RpsChaseConfig) -> UniversalSolution {
    let mut graph = system.stored_database();
    let mut stats = RpsChaseStats::default();
    let mut blank_counter: u64 = 0;

    // Term-level equivalence adjacency (both directions); id-level
    // neighbour lists are resolved lazily and cached — the dictionary is
    // append-only, so cached ids stay valid.
    let mut eq_adj: HashMap<Term, Vec<Term>> = HashMap::new();
    for eq in system.equivalences() {
        let c = Term::Iri(eq.left.clone());
        let cp = Term::Iri(eq.right.clone());
        eq_adj.entry(c.clone()).or_default().push(cp.clone());
        eq_adj.entry(cp).or_default().push(c);
    }
    let mut eq_cache: HashMap<TermId, Vec<TermId>> = HashMap::new();
    // Log index up to which equivalence repairs have been applied.
    let mut eq_mark = 0usize;

    let gmas = system.assertions();
    // Per assertion: the log index of its previous premise evaluation,
    // and the premise tuples already processed (fired or satisfied).
    let mut gma_marks: Vec<usize> = vec![0; gmas.len()];
    let mut processed: Vec<HashSet<Vec<TermId>>> = vec![HashSet::new(); gmas.len()];
    // Conclusions compiled to id slots, so firing assembles `IdTriple`s
    // directly instead of substituting, validating and re-interning
    // term-level patterns on every trigger.
    let plans: Vec<ConclusionPlan> = gmas
        .iter()
        .map(|gma| ConclusionPlan::new(&gma.conclusion, &mut graph))
        .collect();
    // Conclusion patterns compiled once for the per-tuple satisfaction
    // checks (`t ∈ Q'_J`).
    let prepared: Vec<rps_query::PreparedPattern> = gmas
        .iter()
        .map(|gma| rps_query::PreparedPattern::new(&mut graph, gma.conclusion.pattern()))
        .collect();

    loop {
        if stats.rounds >= config.max_rounds {
            return UniversalSolution {
                graph,
                stats,
                complete: false,
            };
        }
        stats.rounds += 1;
        let mut changed = false;

        // --- Equivalence mappings (Definition 2, item 3). ---
        // Drain the insertion log to a local fixpoint: every logged
        // triple (including the copies this loop itself inserts) is
        // examined once per equivalence neighbour of its terms. This is
        // the delta form of the `subjQ*`/`predQ*`/`objQ*` repairs.
        if !eq_adj.is_empty() {
            while eq_mark < graph.log_len() {
                let Some(t) = graph.log_entry(eq_mark) else {
                    // Tombstoned by a removal; chase graphs only grow, but
                    // the log contract allows skipping dead entries.
                    eq_mark += 1;
                    continue;
                };
                eq_mark += 1;
                for pos in TriplePosition::ALL {
                    let from_id = t.get(pos);
                    if let std::collections::hash_map::Entry::Vacant(e) = eq_cache.entry(from_id) {
                        let neighbours: Vec<TermId> = match eq_adj.get(graph.term(from_id)) {
                            Some(terms) => {
                                let terms = terms.clone();
                                terms.iter().map(|n| graph.intern(n)).collect()
                            }
                            None => Vec::new(),
                        };
                        e.insert(neighbours);
                    }
                    for &to_id in &eq_cache[&from_id] {
                        if graph.insert_ids(t.with(pos, to_id)) {
                            stats.eq_copies += 1;
                            changed = true;
                        }
                    }
                }
                if graph.len() > config.max_triples {
                    return UniversalSolution {
                        graph,
                        stats,
                        complete: false,
                    };
                }
            }
        }

        // --- Graph mapping assertions (Definition 2, item 2). ---
        for (gi, gma) in gmas.iter().enumerate() {
            // Q_J under the blank-dropping semantics: the `rt` guard.
            // After the first full evaluation, only the delta window
            // since this assertion's previous evaluation is joined: any
            // tuple whose derivations all predate the window was already
            // enumerated (and memoised) back then.
            let from = gma_marks[gi];
            gma_marks[gi] = graph.log_len();
            let premise_tuples = if from == 0 {
                evaluate_query_ids(&graph, &gma.premise, Semantics::Certain)
            } else {
                evaluate_query_ids_delta(&graph, &gma.premise, Semantics::Certain, from)
            };
            for tuple in premise_tuples {
                if !processed[gi].insert(tuple.clone()) {
                    continue;
                }
                if tuple_satisfied(&graph, &prepared[gi], &gma.conclusion, &tuple) {
                    continue;
                }
                // Fire: instantiate the compiled conclusion with the
                // tuple's ids and fresh blanks for existentials.
                match plans[gi].fire(&mut graph, &tuple, &mut blank_counter) {
                    Some(blanks) => {
                        stats.gma_firings += 1;
                        stats.blanks_created += blanks;
                        changed = true;
                    }
                    None => {
                        stats.invalid_firings += 1;
                        continue;
                    }
                }
                if graph.len() > config.max_triples {
                    return UniversalSolution {
                        graph,
                        stats,
                        complete: false,
                    };
                }
            }
        }

        if !changed {
            // Fixpoint: the solution never grows again. Seal the store
            // (flush the sorted-run tail into an immutable run) so every
            // later scan — including concurrent ones through a frozen
            // session — merges immutable runs only.
            graph.seal();
            return UniversalSolution {
                graph,
                stats,
                complete: true,
            };
        }
    }
}

/// One position of a compiled conclusion pattern.
#[derive(Clone, Copy)]
enum ConcSlot {
    /// A constant, interned up front.
    Const(TermId),
    /// The i-th free (answer) variable — instantiated from the tuple.
    Free(usize),
    /// The j-th existential variable — instantiated with a fresh blank.
    Exist(usize),
}

/// A conclusion pattern compiled against the chase graph's dictionary:
/// firing assembles [`rps_rdf::IdTriple`]s from the premise tuple's ids
/// without pattern substitution or term re-interning (fresh blanks are
/// the only per-firing dictionary traffic).
struct ConclusionPlan {
    slots: Vec<[ConcSlot; 3]>,
    n_existentials: usize,
}

impl ConclusionPlan {
    fn new(conclusion: &rps_query::GraphPatternQuery, graph: &mut Graph) -> Self {
        let free = conclusion.free_vars().to_vec();
        let existentials: Vec<Variable> = conclusion.existential_vars().into_iter().collect();
        let compile_tv = |tv: &rps_query::TermOrVar, graph: &mut Graph| match tv {
            rps_query::TermOrVar::Term(t) => ConcSlot::Const(graph.intern(t)),
            rps_query::TermOrVar::Var(v) => match free.iter().position(|f| f == v) {
                Some(i) => ConcSlot::Free(i),
                None => ConcSlot::Exist(
                    existentials
                        .iter()
                        .position(|e| e == v)
                        .expect("non-free conclusion variable is existential"),
                ),
            },
        };
        let slots = conclusion
            .pattern()
            .patterns()
            .iter()
            .map(|tp| {
                [
                    compile_tv(&tp.s, graph),
                    compile_tv(&tp.p, graph),
                    compile_tv(&tp.o, graph),
                ]
            })
            .collect();
        ConclusionPlan {
            slots,
            n_existentials: existentials.len(),
        }
    }

    /// Instantiates and inserts the conclusion for one premise tuple.
    /// Returns the number of fresh blanks on success, or `None` when the
    /// instantiation violates RDF positional constraints (a literal in
    /// subject position, a non-IRI predicate) — nothing is inserted then.
    fn fire(&self, graph: &mut Graph, tuple: &[TermId], blank_counter: &mut u64) -> Option<u64> {
        let fresh: Vec<TermId> = (0..self.n_existentials)
            .map(|_| {
                let b = Term::Blank(rps_rdf::BlankNode::fresh(*blank_counter));
                *blank_counter += 1;
                graph.intern(&b)
            })
            .collect();
        let resolve = |s: &ConcSlot| match s {
            ConcSlot::Const(id) => *id,
            ConcSlot::Free(i) => tuple[*i],
            ConcSlot::Exist(j) => fresh[*j],
        };
        let mut to_insert = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let t = rps_rdf::IdTriple::new(resolve(&slot[0]), resolve(&slot[1]), resolve(&slot[2]));
            let dict = graph.dict();
            if dict.kind(t.s) == rps_rdf::TermKind::Literal
                || dict.kind(t.p) != rps_rdf::TermKind::Iri
            {
                return None;
            }
            to_insert.push(t);
        }
        // The batch path: conclusions with several conjuncts go into the
        // store in one merge-batch instead of per-triple tail pushes.
        graph.insert_batch(to_insert);
        Some(self.n_existentials as u64)
    }
}

/// Checks `t ∈ Q'_J`: bind the conclusion's free variables to the tuple's
/// term ids and test for a match against the pre-compiled pattern — no
/// pattern copy, no per-check compilation, no re-interning.
fn tuple_satisfied(
    graph: &Graph,
    prepared: &rps_query::PreparedPattern,
    conclusion: &rps_query::GraphPatternQuery,
    tuple: &[TermId],
) -> bool {
    let free = conclusion.free_vars();
    prepared.has_match_with(graph, &|v: &Variable| {
        free.iter().position(|f| f == v).map(|i| tuple[i])
    })
}

/// Checks Definition 2 directly: is `candidate` a solution for the system
/// based on its stored database? Used by tests and property checks.
pub fn is_solution(system: &RdfPeerSystem, candidate: &Graph) -> bool {
    // (1) D ⊆ I.
    if !system.stored_database().is_subgraph_of(candidate) {
        return false;
    }
    // (2) Q_I ⊆ Q'_I for every graph mapping assertion.
    for gma in system.assertions() {
        let lhs = evaluate_query(candidate, &gma.premise, Semantics::Certain);
        let rhs = evaluate_query(candidate, &gma.conclusion, Semantics::Certain);
        if !lhs.is_subset(&rhs) {
            return false;
        }
    }
    // (3) star-query equality for every equivalence mapping.
    for eq in system.equivalences() {
        let c = Term::Iri(eq.left.clone());
        let cp = Term::Iri(eq.right.clone());
        for (qc, qcp) in [
            (
                rps_query::GraphPatternQuery::subj_q(c.clone()),
                rps_query::GraphPatternQuery::subj_q(cp.clone()),
            ),
            (
                rps_query::GraphPatternQuery::pred_q(c.clone()),
                rps_query::GraphPatternQuery::pred_q(cp.clone()),
            ),
            (
                rps_query::GraphPatternQuery::obj_q(c.clone()),
                rps_query::GraphPatternQuery::obj_q(cp.clone()),
            ),
        ] {
            let a: BTreeSet<_> = evaluate_query(candidate, &qc, Semantics::Star);
            let b: BTreeSet<_> = evaluate_query(candidate, &qcp, Semantics::Star);
            if a != b {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peer::Peer;
    use crate::system::RpsBuilder;
    use crate::PeerId;
    use rps_query::{GraphPattern, GraphPatternQuery, TermOrVar};
    use rps_rdf::Triple;

    fn v(n: &str) -> Variable {
        Variable::new(n)
    }

    /// Two peers: peer B has `actor` facts, peer A uses
    /// `starring`/`artist`; one GMA translates B into A's shape.
    fn two_peer_system() -> RdfPeerSystem {
        let mut a = PeerId(0);
        let mut b = PeerId(0);
        let premise = GraphPatternQuery::new(
            vec![v("x"), v("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://b/actor"),
                TermOrVar::var("y"),
            ),
        );
        let conclusion = GraphPatternQuery::new(
            vec![v("x"), v("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://a/starring"),
                TermOrVar::var("z"),
            )
            .and(GraphPattern::triple(
                TermOrVar::var("z"),
                TermOrVar::iri("http://a/artist"),
                TermOrVar::var("y"),
            )),
        );
        RpsBuilder::new()
            .peer_turtle(
                "A",
                "<http://a/film> <http://a/starring> _:c .\n\
                 _:c <http://a/artist> <http://a/actor1> .",
                &mut a,
            )
            .unwrap()
            .peer_turtle(
                "B",
                "<http://b/film2> <http://b/actor> <http://b/actor2> .",
                &mut b,
            )
            .unwrap()
            .assertion(b, a, premise, conclusion)
            .unwrap()
            .build()
    }

    #[test]
    fn gma_fires_with_fresh_blank() {
        let sys = two_peer_system();
        let sol = chase_system(&sys, &RpsChaseConfig::default());
        assert!(sol.complete);
        assert_eq!(sol.stats.gma_firings, 1);
        assert_eq!(sol.stats.blanks_created, 1);
        // film2 now has a starring/artist path through a fresh blank.
        let q = GraphPatternQuery::new(
            vec![v("y")],
            GraphPattern::triple(
                TermOrVar::iri("http://b/film2"),
                TermOrVar::iri("http://a/starring"),
                TermOrVar::var("z"),
            )
            .and(GraphPattern::triple(
                TermOrVar::var("z"),
                TermOrVar::iri("http://a/artist"),
                TermOrVar::var("y"),
            )),
        );
        let ans = evaluate_query(&sol.graph, &q, Semantics::Certain);
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&vec![Term::iri("http://b/actor2")]));
    }

    #[test]
    fn chase_is_idempotent_on_satisfied_systems() {
        let sys = two_peer_system();
        let sol1 = chase_system(&sys, &RpsChaseConfig::default());
        // Chasing a system whose mappings are satisfied adds nothing:
        // rebuild a system with the solution as a single peer.
        let mut sys2 = RdfPeerSystem::new();
        sys2.add_peer(Peer::from_database("all", sol1.graph.clone()));
        for gma in sys.assertions() {
            sys2.add_assertion(gma.clone());
        }
        for eq in sys.equivalences() {
            sys2.add_equivalence(eq.clone());
        }
        let sol2 = chase_system(&sys2, &RpsChaseConfig::default());
        assert_eq!(sol2.stats.gma_firings, 0);
        assert_eq!(sol1.graph.len(), sol2.graph.len());
    }

    #[test]
    fn universal_solution_is_a_solution() {
        let sys = two_peer_system();
        let sol = chase_system(&sys, &RpsChaseConfig::default());
        assert!(is_solution(&sys, &sol.graph));
        // The bare stored database is not (the GMA is violated).
        assert!(!is_solution(&sys, &sys.stored_database()));
    }

    #[test]
    fn equivalence_copies_all_three_positions() {
        let mut p = PeerId(0);
        let sys = RpsBuilder::new()
            .peer_turtle(
                "s",
                "<http://x/a> <http://x/p> <http://x/b> .\n\
                 <http://x/b> <http://x/a> <http://x/c> .\n\
                 <http://x/c> <http://x/p> <http://x/a> .",
                &mut p,
            )
            .unwrap()
            .equivalence("http://x/a", "http://y/a2")
            .build();
        let sol = chase_system(&sys, &RpsChaseConfig::default());
        assert!(sol.complete);
        let g = &sol.graph;
        let contains = |s: &str, p: &str, o: &str| {
            g.contains(&Triple::new(Term::iri(s), Term::iri(p), Term::iri(o)).unwrap())
        };
        // subject copy
        assert!(contains("http://y/a2", "http://x/p", "http://x/b"));
        // predicate copy
        assert!(contains("http://x/b", "http://y/a2", "http://x/c"));
        // object copy
        assert!(contains("http://x/c", "http://x/p", "http://y/a2"));
        assert!(is_solution(&sys, g));
    }

    #[test]
    fn equivalence_chains_propagate_transitively() {
        let mut p = PeerId(0);
        let sys = RpsBuilder::new()
            .peer_turtle("s", "<http://x/a> <http://x/p> <http://x/o> .", &mut p)
            .unwrap()
            .equivalence("http://x/a", "http://x/b")
            .equivalence("http://x/b", "http://x/c")
            .build();
        let sol = chase_system(&sys, &RpsChaseConfig::default());
        assert!(sol.graph.contains(
            &Triple::new(
                Term::iri("http://x/c"),
                Term::iri("http://x/p"),
                Term::iri("http://x/o")
            )
            .unwrap()
        ));
    }

    #[test]
    fn blank_tuples_do_not_fire_gmas() {
        // The premise matches only via a blank-containing tuple; the
        // certain semantics (the rt guard) suppresses the firing.
        let mut a = PeerId(0);
        let mut b = PeerId(0);
        let premise = GraphPatternQuery::new(
            vec![v("x"), v("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://a/p"),
                TermOrVar::var("y"),
            ),
        );
        let conclusion = GraphPatternQuery::new(
            vec![v("x"), v("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://b/q"),
                TermOrVar::var("y"),
            ),
        );
        let sys = RpsBuilder::new()
            .peer_turtle("A", "<http://a/s> <http://a/p> _:hidden .", &mut a)
            .unwrap()
            .peer_turtle("B", "<http://b/s> <http://b/q> <http://b/o> .", &mut b)
            .unwrap()
            .assertion(a, b, premise, conclusion)
            .unwrap()
            .build();
        let sol = chase_system(&sys, &RpsChaseConfig::default());
        assert!(sol.complete);
        assert_eq!(sol.stats.gma_firings, 0);
    }

    #[test]
    fn budget_exhaustion_reports_incomplete() {
        let sys = two_peer_system();
        let sol = chase_system(
            &sys,
            &RpsChaseConfig {
                max_rounds: 0,
                max_triples: 10,
            },
        );
        assert!(!sol.complete);
    }

    #[test]
    fn invalid_firings_are_counted_not_inserted() {
        // Premise binds y to a literal; conclusion puts y in subject
        // position — un-instantiable, must be skipped.
        let mut a = PeerId(0);
        let mut b = PeerId(0);
        let premise = GraphPatternQuery::new(
            vec![v("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://a/p"),
                TermOrVar::var("y"),
            ),
        );
        let conclusion = GraphPatternQuery::new(
            vec![v("y")],
            GraphPattern::triple(
                TermOrVar::var("y"),
                TermOrVar::iri("http://b/q"),
                TermOrVar::var("z"),
            ),
        );
        let sys = RpsBuilder::new()
            .peer_turtle("A", "<http://a/s> <http://a/p> \"literal\" .", &mut a)
            .unwrap()
            .peer_turtle("B", "<http://b/s> <http://b/q> <http://b/o> .", &mut b)
            .unwrap()
            .assertion(a, b, premise, conclusion)
            .unwrap()
            .build();
        let sol = chase_system(&sys, &RpsChaseConfig::default());
        assert!(sol.complete);
        assert_eq!(sol.stats.gma_firings, 0);
        assert_eq!(sol.stats.invalid_firings, 1);
    }
}
