//! The Datalog route (paper Section 5, future-work item 1): for systems
//! whose graph mapping assertions are *full* (no existential variables in
//! the conclusion after pairing with the premise), the mapping
//! dependencies form a Datalog program. Certain answers are then computed
//! by a semi-naive fixpoint over the (equivalence-quotiented) sources —
//! covering exactly the systems Proposition 3 puts beyond FO rewriting,
//! such as transitive closure.

use crate::answers::AnswerSet;
use crate::encode::{gma_tgd_unguarded, graph_as_tt, query_to_cq, Encoder};
use crate::equivalence::{
    canonicalize_graph, canonicalize_query, expand_answers, EquivalenceIndex,
};
use crate::system::RdfPeerSystem;
use rps_query::GraphPatternQuery;
use rps_rdf::Term;
use rps_tgd::{DatalogError, Instance, Program};
use std::collections::BTreeSet;

/// A compiled Datalog evaluator for one system.
pub struct DatalogEngine {
    program: Program,
    /// The saturated (least-model) canonical instance, computed lazily.
    saturated: Option<Instance>,
    canon_source: Instance,
    encoder: Encoder,
    index: EquivalenceIndex,
    /// Derivation rounds of the last fixpoint run.
    pub rounds: usize,
}

impl DatalogEngine {
    /// Compiles a system into a Datalog engine.
    ///
    /// Fails with [`DatalogError::NotFull`] if some graph mapping
    /// assertion's conclusion has existential variables — those need the
    /// chase (labelled nulls), not Datalog.
    pub fn new(system: &RdfPeerSystem) -> Result<Self, DatalogError> {
        let mut encoder = Encoder::new();
        let index = EquivalenceIndex::from_mappings(system.equivalences());
        let tgds: Vec<rps_tgd::Tgd> = system
            .assertions()
            .iter()
            .map(|gma| {
                let premise = canonicalize_query(&gma.premise, &index);
                let conclusion = canonicalize_query(&gma.conclusion, &index);
                gma_tgd_unguarded(&premise, &conclusion, &mut encoder)
            })
            .collect();
        let program = Program::compile(&tgds)?;
        let canon_graph = canonicalize_graph(&system.stored_database(), &index);
        let canon_source = graph_as_tt(&canon_graph, &mut encoder);
        Ok(DatalogEngine {
            program,
            saturated: None,
            canon_source,
            encoder,
            index,
            rounds: 0,
        })
    }

    /// The least model of the canonical sources under the program.
    fn saturated(&mut self) -> &Instance {
        if self.saturated.is_none() {
            let (inst, rounds) = self.program.fixpoint(self.canon_source.clone());
            self.rounds = rounds;
            self.saturated = Some(inst);
        }
        self.saturated.as_ref().expect("just computed")
    }

    /// Certain answers of a query: evaluate over the least model, expand
    /// over equivalence classes.
    pub fn answers(&mut self, query: &GraphPatternQuery) -> AnswerSet {
        let canon_query = canonicalize_query(query, &self.index);
        let cq = query_to_cq(&canon_query, &mut self.encoder, false);
        let saturated = {
            // Borrow dance: compute before borrowing encoder immutably.
            self.saturated();
            self.saturated.as_ref().expect("computed")
        };
        let raw = cq.evaluate(saturated, true);
        let decoded: BTreeSet<Vec<Term>> = raw
            .iter()
            .map(|row| row.iter().map(|g| self.encoder.decode(g)).collect())
            .collect();
        AnswerSet {
            vars: query
                .free_vars()
                .iter()
                .map(|v| v.name().to_string())
                .collect(),
            tuples: expand_answers(&decoded, &self.index),
        }
    }

    /// Number of facts in the least model (after saturation).
    pub fn model_size(&mut self) -> usize {
        self.saturated().len()
    }
}

/// Crate-internal test fixtures: the transitive-closure chain system
/// (the Proposition 3 workload) reimplemented locally to avoid a
/// dev-dependency cycle with `rps-lodgen`. Shared by this module's tests
/// and the [`crate::session`] tests.
#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;
    use crate::peer::Peer;
    use rps_query::{GraphPattern, TermOrVar, Variable};

    pub(crate) fn transitive_system(len: usize) -> RdfPeerSystem {
        let pred = Term::iri("http://c/A");
        let node = |i: usize| Term::iri(format!("http://c/n{i}"));
        let mut g = rps_rdf::Graph::new();
        for i in 0..len {
            g.insert_terms(node(i), pred.clone(), node(i + 1)).unwrap();
        }
        let mut sys = RdfPeerSystem::new();
        let p = sys.add_peer(Peer::from_database("chain", g));
        let premise = GraphPatternQuery::new(
            vec![Variable::new("x"), Variable::new("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::Term(pred.clone()),
                TermOrVar::var("z"),
            )
            .and(GraphPattern::triple(
                TermOrVar::var("z"),
                TermOrVar::Term(pred.clone()),
                TermOrVar::var("y"),
            )),
        );
        let conclusion = GraphPatternQuery::new(
            vec![Variable::new("x"), Variable::new("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::Term(pred),
                TermOrVar::var("y"),
            ),
        );
        sys.add_assertion(
            crate::mapping::GraphMappingAssertion::new(p, p, premise, conclusion).unwrap(),
        );
        sys
    }

    pub(crate) fn edge_query() -> GraphPatternQuery {
        GraphPatternQuery::new(
            vec![Variable::new("x"), Variable::new("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://c/A"),
                TermOrVar::var("y"),
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::{edge_query, transitive_system as tc_system};
    use super::*;
    use crate::chase::{chase_system, RpsChaseConfig};
    use crate::PeerId;

    #[test]
    fn datalog_equals_chase_on_transitive_closure() {
        let sys = tc_system(10);
        let mut engine = DatalogEngine::new(&sys).expect("full TGDs");
        let datalog = engine.answers(&edge_query());
        let sol = chase_system(&sys, &RpsChaseConfig::default());
        let chased = crate::answers::certain_answers(&sol, &edge_query());
        assert_eq!(datalog.tuples, chased.tuples);
        assert_eq!(datalog.len(), 55); // 11 choose 2
    }

    #[test]
    fn existential_systems_are_rejected() {
        use rps_query::{GraphPattern, TermOrVar, Variable};
        let mut sys = tc_system(3);
        // Add a hub-style assertion with an existential conclusion var.
        let premise = GraphPatternQuery::new(
            vec![Variable::new("x"), Variable::new("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://c/A"),
                TermOrVar::var("y"),
            ),
        );
        let conclusion = GraphPatternQuery::new(
            vec![Variable::new("x"), Variable::new("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://c/B"),
                TermOrVar::var("z"),
            )
            .and(GraphPattern::triple(
                TermOrVar::var("z"),
                TermOrVar::iri("http://c/C"),
                TermOrVar::var("y"),
            )),
        );
        sys.add_assertion(
            crate::mapping::GraphMappingAssertion::new(PeerId(0), PeerId(0), premise, conclusion)
                .unwrap(),
        );
        assert!(matches!(
            DatalogEngine::new(&sys),
            Err(DatalogError::NotFull { .. })
        ));
    }

    #[test]
    fn equivalences_are_quotiented() {
        let mut sys = tc_system(4);
        sys.add_equivalence(crate::mapping::EquivalenceMapping::new(
            rps_rdf::Iri::new("http://c/n0"),
            rps_rdf::Iri::new("http://c/alias"),
        ));
        let mut engine = DatalogEngine::new(&sys).unwrap();
        let ans = engine.answers(&edge_query());
        // alias inherits all of n0's closure edges.
        assert!(ans
            .tuples
            .contains(&vec![Term::iri("http://c/alias"), Term::iri("http://c/n4")]));
    }
}
