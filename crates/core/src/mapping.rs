//! Peer mappings: graph mapping assertions `Q ⇝ Q'` and equivalence
//! mappings `c ≡ₑ c'` (paper Section 2.2).

use crate::peer::PeerId;
use rps_query::{GraphPatternQuery, TermOrVar};
use rps_rdf::Iri;
use std::collections::BTreeSet;
use std::fmt;

/// A graph mapping assertion `Q ⇝ Q'` between two peers.
///
/// `Q` and `Q'` are graph pattern queries of the same arity over the
/// schemas of the source and target peer respectively. Semantics
/// (Definition 2, item 2): in every solution `I`, `Q_I ⊆ Q'_I`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphMappingAssertion {
    /// The peer whose vocabulary `Q` is expressed in.
    pub source: PeerId,
    /// The peer whose vocabulary `Q'` is expressed in.
    pub target: PeerId,
    /// The premise query `Q`.
    pub premise: GraphPatternQuery,
    /// The conclusion query `Q'`.
    pub conclusion: GraphPatternQuery,
}

impl GraphMappingAssertion {
    /// Creates an assertion, validating arity agreement and query safety.
    pub fn new(
        source: PeerId,
        target: PeerId,
        premise: GraphPatternQuery,
        conclusion: GraphPatternQuery,
    ) -> Result<Self, MappingError> {
        if premise.arity() != conclusion.arity() {
            return Err(MappingError::ArityMismatch {
                premise: premise.arity(),
                conclusion: conclusion.arity(),
            });
        }
        if !premise.is_safe() || !conclusion.is_safe() {
            return Err(MappingError::UnsafeQuery);
        }
        Ok(GraphMappingAssertion {
            source,
            target,
            premise,
            conclusion,
        })
    }

    /// The arity shared by premise and conclusion.
    pub fn arity(&self) -> usize {
        self.premise.arity()
    }

    /// The IRIs used by a query (for schema-conformance checks).
    pub fn iris_of(query: &GraphPatternQuery) -> BTreeSet<Iri> {
        let mut out = BTreeSet::new();
        for p in query.pattern().patterns() {
            for tv in [&p.s, &p.p, &p.o] {
                if let TermOrVar::Term(rps_rdf::Term::Iri(iri)) = tv {
                    out.insert(iri.clone());
                }
            }
        }
        out
    }
}

impl fmt::Display for GraphMappingAssertion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ~> {}  ({} to {})",
            self.premise, self.conclusion, self.source, self.target
        )
    }
}

/// An equivalence mapping `c ≡ₑ c'` between IRIs of two peers, the
/// formalisation of an `owl:sameAs` link (Definition 2, item 3).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EquivalenceMapping {
    /// Left IRI (`c`).
    pub left: Iri,
    /// Right IRI (`c'`).
    pub right: Iri,
}

impl EquivalenceMapping {
    /// Creates an equivalence mapping.
    pub fn new(left: Iri, right: Iri) -> Self {
        EquivalenceMapping { left, right }
    }

    /// A canonical form with the lexicographically smaller IRI first —
    /// the relation is symmetric, so `(a ≡ b)` and `(b ≡ a)` coincide.
    pub fn canonical(&self) -> EquivalenceMapping {
        if self.left <= self.right {
            self.clone()
        } else {
            EquivalenceMapping {
                left: self.right.clone(),
                right: self.left.clone(),
            }
        }
    }

    /// `true` iff the mapping is trivial (`c ≡ c`).
    pub fn is_trivial(&self) -> bool {
        self.left == self.right
    }
}

impl fmt::Display for EquivalenceMapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ≡ {}", self.left, self.right)
    }
}

/// Errors constructing mappings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MappingError {
    /// Premise and conclusion have different arities.
    ArityMismatch {
        /// Arity of `Q`.
        premise: usize,
        /// Arity of `Q'`.
        conclusion: usize,
    },
    /// A query's free variables do not all occur in its body.
    UnsafeQuery,
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::ArityMismatch {
                premise,
                conclusion,
            } => write!(
                f,
                "graph mapping assertion arity mismatch: premise {premise}, conclusion {conclusion}"
            ),
            MappingError::UnsafeQuery => write!(f, "mapping query is unsafe"),
        }
    }
}

impl std::error::Error for MappingError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rps_query::{GraphPattern, Variable};

    fn q1() -> GraphPatternQuery {
        // q(x, y) <- (x, starring, z) AND (z, artist, y)
        GraphPatternQuery::new(
            vec![Variable::new("x"), Variable::new("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://v/starring"),
                TermOrVar::var("z"),
            )
            .and(GraphPattern::triple(
                TermOrVar::var("z"),
                TermOrVar::iri("http://v/artist"),
                TermOrVar::var("y"),
            )),
        )
    }

    fn q2() -> GraphPatternQuery {
        // q(x, y) <- (x, actor, y)
        GraphPatternQuery::new(
            vec![Variable::new("x"), Variable::new("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://v/actor"),
                TermOrVar::var("y"),
            ),
        )
    }

    #[test]
    fn paper_assertion_validates() {
        let gma = GraphMappingAssertion::new(PeerId(1), PeerId(0), q2(), q1()).unwrap();
        assert_eq!(gma.arity(), 2);
        let iris = GraphMappingAssertion::iris_of(&gma.conclusion);
        assert!(iris.contains(&Iri::new("http://v/starring")));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let q_one = GraphPatternQuery::new(
            vec![Variable::new("x")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://v/actor"),
                TermOrVar::var("y"),
            ),
        );
        let err = GraphMappingAssertion::new(PeerId(0), PeerId(1), q_one, q1()).unwrap_err();
        assert!(matches!(err, MappingError::ArityMismatch { .. }));
    }

    #[test]
    fn unsafe_query_rejected() {
        let bad = GraphPatternQuery::new(
            vec![Variable::new("nope"), Variable::new("x")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://v/actor"),
                TermOrVar::var("y"),
            ),
        );
        let err = GraphMappingAssertion::new(PeerId(0), PeerId(1), bad, q2()).unwrap_err();
        assert_eq!(err, MappingError::UnsafeQuery);
    }

    #[test]
    fn equivalence_canonicalisation() {
        let e1 = EquivalenceMapping::new(Iri::new("http://b"), Iri::new("http://a"));
        let e2 = EquivalenceMapping::new(Iri::new("http://a"), Iri::new("http://b"));
        assert_eq!(e1.canonical(), e2.canonical());
        assert!(!e1.is_trivial());
        assert!(EquivalenceMapping::new(Iri::new("x"), Iri::new("x")).is_trivial());
    }
}
