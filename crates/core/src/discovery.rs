//! Automatic discovery of equivalence mappings (paper Section 5,
//! future-work item 3: "We want to be able to discover mappings between
//! peers automatically").
//!
//! The discoverer implements the classic *attribute fingerprint* baseline
//! from instance-based schema matching: two IRIs from different peers are
//! proposed as equivalent when they agree on enough distinctive literal
//! values. A literal value is distinctive when few subjects carry it, so
//! agreement is unlikely by chance. Scores are Jaccard overlaps of the
//! subjects' literal-fingerprint sets; pairs above a confidence threshold
//! become candidate `≡ₑ` mappings.
//!
//! This is deliberately a transparent baseline (the paper only sketches
//! the problem and points at probabilistic methods); experiment E11
//! measures its precision/recall against generated ground truth.

use crate::mapping::EquivalenceMapping;
use crate::system::RdfPeerSystem;
use rps_rdf::{Iri, Term};
use std::collections::{BTreeMap, BTreeSet};

/// Configuration for the fingerprint matcher.
#[derive(Clone, Debug)]
pub struct DiscoveryConfig {
    /// Minimum Jaccard overlap of literal fingerprints to propose a pair.
    pub min_score: f64,
    /// Minimum number of shared literal values.
    pub min_shared: usize,
    /// Values carried by more than this many subjects (per peer pair) are
    /// considered non-distinctive and ignored.
    pub max_value_popularity: usize,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            min_score: 0.5,
            min_shared: 2,
            max_value_popularity: 4,
        }
    }
}

/// A proposed equivalence with its evidence.
#[derive(Clone, Debug, PartialEq)]
pub struct Candidate {
    /// The proposed mapping.
    pub mapping: EquivalenceMapping,
    /// Jaccard overlap of the two fingerprints.
    pub score: f64,
    /// Number of shared distinctive literal values.
    pub shared: usize,
}

/// The literal fingerprint of each IRI subject in one peer: the set of
/// `(predicate-local-name, literal)` pairs. Predicate *local names* are
/// used (the part after the last `/` or `#`) so that vocabularies that
/// differ only by namespace still align — the common LOD situation.
fn fingerprints(system: &RdfPeerSystem, peer: usize) -> BTreeMap<Iri, BTreeSet<(String, String)>> {
    let mut out: BTreeMap<Iri, BTreeSet<(String, String)>> = BTreeMap::new();
    let g = &system.peers()[peer].database;
    for t in g.iter() {
        let (Term::Iri(subject), Term::Iri(pred), Term::Literal(lit)) =
            (t.subject(), t.predicate(), t.object())
        else {
            continue;
        };
        let local = pred
            .as_str()
            .rsplit(['/', '#'])
            .next()
            .unwrap_or(pred.as_str())
            .to_string();
        out.entry(subject.clone())
            .or_default()
            .insert((local, lit.to_string()));
    }
    out
}

/// Runs discovery over every ordered pair of distinct peers, returning
/// candidates sorted by descending score.
pub fn discover(system: &RdfPeerSystem, config: &DiscoveryConfig) -> Vec<Candidate> {
    let n = system.peers().len();
    let prints: Vec<BTreeMap<Iri, BTreeSet<(String, String)>>> =
        (0..n).map(|p| fingerprints(system, p)).collect();
    let mut candidates = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            // Popularity filter: values shared by many subjects across
            // the pair are non-distinctive.
            let mut popularity: BTreeMap<&(String, String), usize> = BTreeMap::new();
            for fp in prints[a].values().chain(prints[b].values()) {
                for v in fp {
                    *popularity.entry(v).or_insert(0) += 1;
                }
            }
            // Invert peer b's fingerprints for candidate generation.
            let mut by_value: BTreeMap<&(String, String), Vec<&Iri>> = BTreeMap::new();
            for (iri, fp) in &prints[b] {
                for v in fp {
                    if popularity[v] <= config.max_value_popularity {
                        by_value.entry(v).or_default().push(iri);
                    }
                }
            }
            for (iri_a, fp_a) in &prints[a] {
                let distinctive_a: BTreeSet<&(String, String)> = fp_a
                    .iter()
                    .filter(|v| popularity[*v] <= config.max_value_popularity)
                    .collect();
                if distinctive_a.is_empty() {
                    continue;
                }
                // Count shared distinctive values per b-IRI.
                let mut shared_counts: BTreeMap<&Iri, usize> = BTreeMap::new();
                for v in &distinctive_a {
                    if let Some(matches) = by_value.get(*v) {
                        for iri_b in matches {
                            *shared_counts.entry(iri_b).or_insert(0) += 1;
                        }
                    }
                }
                for (iri_b, shared) in shared_counts {
                    if shared < config.min_shared {
                        continue;
                    }
                    let distinctive_b = prints[b][iri_b]
                        .iter()
                        .filter(|v| popularity[*v] <= config.max_value_popularity)
                        .count();
                    let union = distinctive_a.len() + distinctive_b - shared;
                    let score = shared as f64 / union.max(1) as f64;
                    if score >= config.min_score {
                        candidates.push(Candidate {
                            mapping: EquivalenceMapping::new(iri_a.clone(), iri_b.clone())
                                .canonical(),
                            score,
                            shared,
                        });
                    }
                }
            }
        }
    }
    candidates.sort_by(|x, y| {
        y.score
            .partial_cmp(&x.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| x.mapping.cmp(&y.mapping))
    });
    candidates.dedup_by(|a, b| a.mapping == b.mapping);
    candidates
}

/// Precision/recall of discovered mappings against a ground-truth set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiscoveryQuality {
    /// Fraction of proposals that are true mappings.
    pub precision: f64,
    /// Fraction of true mappings that were proposed.
    pub recall: f64,
    /// Proposal count.
    pub proposed: usize,
    /// Ground-truth count.
    pub truth: usize,
}

/// Scores candidates against ground truth (both canonicalised).
pub fn evaluate(candidates: &[Candidate], truth: &[EquivalenceMapping]) -> DiscoveryQuality {
    let truth_set: BTreeSet<EquivalenceMapping> =
        truth.iter().map(EquivalenceMapping::canonical).collect();
    let proposed: BTreeSet<EquivalenceMapping> =
        candidates.iter().map(|c| c.mapping.canonical()).collect();
    let hits = proposed.intersection(&truth_set).count();
    DiscoveryQuality {
        precision: if proposed.is_empty() {
            1.0
        } else {
            hits as f64 / proposed.len() as f64
        },
        recall: if truth_set.is_empty() {
            1.0
        } else {
            hits as f64 / truth_set.len() as f64
        },
        proposed: proposed.len(),
        truth: truth_set.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peer::Peer;

    fn system_with_duplicated_people() -> (RdfPeerSystem, Vec<EquivalenceMapping>) {
        // Two peers describing the same people with different IRIs but
        // identical birth-date/name literals.
        let a = rps_rdf::turtle::parse(
            r#"@prefix a: <http://a/> .
a:alice a:name "Alice Smith" . a:alice a:born "1980-01-02" .
a:bob a:name "Bob Jones" . a:bob a:born "1975-05-05" .
a:carol a:name "Carol King" . a:carol a:born "1990-09-09" .
"#,
        )
        .unwrap();
        let b = rps_rdf::turtle::parse(
            r#"@prefix b: <http://b/> .
b:p1 b:name "Alice Smith" . b:p1 b:born "1980-01-02" .
b:p2 b:name "Bob Jones" . b:p2 b:born "1975-05-05" .
b:p3 b:name "Dave Hill" . b:p3 b:born "1966-03-03" .
"#,
        )
        .unwrap();
        let mut sys = RdfPeerSystem::new();
        sys.add_peer(Peer::from_database("a", a));
        sys.add_peer(Peer::from_database("b", b));
        let truth = vec![
            EquivalenceMapping::new(Iri::new("http://a/alice"), Iri::new("http://b/p1")),
            EquivalenceMapping::new(Iri::new("http://a/bob"), Iri::new("http://b/p2")),
        ];
        (sys, truth)
    }

    #[test]
    fn discovers_duplicated_people() {
        let (sys, truth) = system_with_duplicated_people();
        let candidates = discover(&sys, &DiscoveryConfig::default());
        let q = evaluate(&candidates, &truth);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.proposed, 2);
    }

    #[test]
    fn popular_values_do_not_match() {
        // Everyone shares the same country literal; it must not create
        // pairs on its own.
        let a = rps_rdf::turtle::parse(
            r#"@prefix a: <http://a/> .
a:x a:country "UK" . a:y a:country "UK" . a:z a:country "UK" .
a:x a:c2 "UK2" . a:y a:c2 "UK2" . a:z a:c2 "UK2" .
"#,
        )
        .unwrap();
        let b = rps_rdf::turtle::parse(
            r#"@prefix b: <http://b/> .
b:u b:country "UK" . b:v b:country "UK" . b:w b:country "UK" .
b:u b:c2 "UK2" . b:v b:c2 "UK2" . b:w b:c2 "UK2" .
"#,
        )
        .unwrap();
        let mut sys = RdfPeerSystem::new();
        sys.add_peer(Peer::from_database("a", a));
        sys.add_peer(Peer::from_database("b", b));
        let candidates = discover(
            &sys,
            &DiscoveryConfig {
                max_value_popularity: 3,
                ..DiscoveryConfig::default()
            },
        );
        assert!(candidates.is_empty());
    }

    #[test]
    fn threshold_controls_precision() {
        let (sys, _) = system_with_duplicated_people();
        let strict = discover(
            &sys,
            &DiscoveryConfig {
                min_score: 0.99,
                ..DiscoveryConfig::default()
            },
        );
        // Exact fingerprint matches only.
        assert_eq!(strict.len(), 2);
        for c in &strict {
            assert!(c.score >= 0.99);
        }
    }

    #[test]
    fn quality_math() {
        let truth = vec![EquivalenceMapping::new(Iri::new("a"), Iri::new("b"))];
        let q = evaluate(&[], &truth);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 0.0);
    }
}
