//! Peers and peer schemas (paper Section 2.2).
//!
//! A peer is characterised by its *peer schema* — the set of IRIs it uses
//! to describe data — and its stored RDF database. Peer schemas need not
//! be disjoint: real Linked Data sources share IRIs.

use rps_rdf::{Graph, Iri, Term, Triple};
use std::collections::BTreeSet;
use std::fmt;

/// Identifier of a peer within an RPS (dense index).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PeerId(pub usize);

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer#{}", self.0)
    }
}

/// A peer: name, schema `S ⊆ I` and stored database `d`.
#[derive(Clone, Debug)]
pub struct Peer {
    /// Human-readable name (e.g. "Source 1").
    pub name: String,
    /// The peer schema: the IRIs this peer uses in its triples.
    pub schema: BTreeSet<Iri>,
    /// The peer's stored RDF database.
    pub database: Graph,
}

impl Peer {
    /// Creates a peer whose schema is inferred from its database (the set
    /// of IRIs occurring in any triple), mirroring how the paper derives
    /// `S_i` from the i-th source in Example 2.
    pub fn from_database(name: impl Into<String>, database: Graph) -> Self {
        let schema = database.iris_used();
        Peer {
            name: name.into(),
            schema,
            database,
        }
    }

    /// Creates a peer with an explicit schema.
    pub fn with_schema(name: impl Into<String>, schema: BTreeSet<Iri>, database: Graph) -> Self {
        Peer {
            name: name.into(),
            schema,
            database,
        }
    }

    /// Checks the storage constraint of Section 2.3: every stored triple
    /// must be in `(S ∪ B) × S × (S ∪ B ∪ L)`.
    #[allow(clippy::result_large_err)] // the offending triple is the useful payload
    pub fn validate(&self) -> Result<(), PeerValidationError> {
        for triple in self.database.iter() {
            let ok_subject = match triple.subject() {
                Term::Iri(iri) => self.schema.contains(iri),
                Term::Blank(_) => true,
                Term::Literal(_) => false,
            };
            let ok_predicate = match triple.predicate() {
                Term::Iri(iri) => self.schema.contains(iri),
                _ => false,
            };
            let ok_object = match triple.object() {
                Term::Iri(iri) => self.schema.contains(iri),
                Term::Blank(_) | Term::Literal(_) => true,
            };
            if !(ok_subject && ok_predicate && ok_object) {
                return Err(PeerValidationError {
                    peer: self.name.clone(),
                    triple,
                });
            }
        }
        Ok(())
    }

    /// `true` iff this peer's schema contains the IRI.
    pub fn knows(&self, iri: &Iri) -> bool {
        self.schema.contains(iri)
    }

    /// Number of stored triples.
    pub fn size(&self) -> usize {
        self.database.len()
    }
}

/// A stored triple uses an IRI outside the peer's schema.
#[derive(Clone, Debug)]
pub struct PeerValidationError {
    /// Offending peer name.
    pub peer: String,
    /// Offending triple.
    pub triple: Triple,
}

impl fmt::Display for PeerValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "peer {:?} stores a triple outside its schema: {}",
            self.peer, self.triple
        )
    }
}

impl std::error::Error for PeerValidationError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Graph {
        rps_rdf::turtle::parse(
            "@prefix e: <http://e/> .\n\
             e:s e:p e:o .\n\
             _:b e:p \"lit\" .\n",
        )
        .unwrap()
    }

    #[test]
    fn schema_inference() {
        let p = Peer::from_database("Source 1", db());
        assert_eq!(p.schema.len(), 3);
        assert!(p.knows(&Iri::new("http://e/p")));
        assert!(!p.knows(&Iri::new("http://e/other")));
        assert_eq!(p.size(), 2);
    }

    #[test]
    fn inferred_schema_validates() {
        let p = Peer::from_database("Source 1", db());
        assert!(p.validate().is_ok());
    }

    #[test]
    fn narrow_schema_fails_validation() {
        let schema: BTreeSet<Iri> = [Iri::new("http://e/p")].into_iter().collect();
        let p = Peer::with_schema("narrow", schema, db());
        let err = p.validate().unwrap_err();
        assert_eq!(err.peer, "narrow");
    }

    #[test]
    fn blanks_and_literals_always_allowed() {
        let mut g = Graph::new();
        g.insert_terms(
            Term::blank("x"),
            Term::iri("http://e/p"),
            Term::literal("v"),
        )
        .unwrap();
        let p = Peer::from_database("b", g);
        assert!(p.validate().is_ok());
        assert_eq!(p.schema.len(), 1);
    }
}
