//! The shared half of the prepare-mutable / execute-shared split:
//! [`FrozenSession`].
//!
//! A [`Session`] is deliberately mutable — it chases,
//! rewrites and compiles into caches behind `&mut self` — which makes it
//! structurally single-user: one long compile blocks every other query,
//! and nothing can be shared across threads. Freezing a session
//! ([`Session::freeze`]) runs the remaining
//! compile-phase work **once** — materialising (and sealing) the
//! universal solution where the strategy needs it, building the rewriter
//! and eagerly compiling its `IdTgdSet`, saturating the Datalog least
//! model — and moves the result into an `Arc`-backed, `Send + Sync`
//! handle on which [`FrozenSession::prepare`] and
//! [`FrozenSession::execute`] take `&self` and run concurrently from any
//! number of threads.
//!
//! Execution is lock-free on the materialised and rewritten routes:
//! plans carry their own `Arc` of the sealed substrate (universal
//! solution or canonical stored graph), so an execute touches only
//! immutable data. Preparation of a *new* query takes a short internal
//! compile lock (query interning mutates the rewriter's dictionaries);
//! repeated queries skip even that through the **plan cache**, a bounded
//! map keyed on the canonical numbered-variable form of the query, with
//! hit/miss counters exposed via [`FrozenSession::plan_cache_stats`].
//!
//! ```
//! use rps_core::{EngineConfig, PeerId, RpsBuilder, Session};
//! use rps_query::{GraphPattern, GraphPatternQuery, TermOrVar, Variable};
//!
//! let mut p = PeerId(0);
//! let system = RpsBuilder::new()
//!     .peer_turtle(
//!         "A",
//!         "<http://a/f1> <http://a/cast> <http://a/p1> .\n\
//!          <http://a/f2> <http://a/cast> <http://a/p2> .",
//!         &mut p,
//!     )
//!     .unwrap()
//!     .build();
//! let query = GraphPatternQuery::new(
//!     vec![Variable::new("x"), Variable::new("y")],
//!     GraphPattern::triple(
//!         TermOrVar::var("x"),
//!         TermOrVar::iri("http://a/cast"),
//!         TermOrVar::var("y"),
//!     ),
//! );
//!
//! // Compile-phase work happens behind `&mut self`, then `freeze`
//! // produces a Send + Sync handle shared across threads by reference.
//! let frozen = Session::open(system, EngineConfig::default())
//!     .unwrap()
//!     .freeze()
//!     .unwrap();
//! frozen.prepare(&query).unwrap(); // compile once (a cache miss)
//! let counts: Vec<usize> = std::thread::scope(|scope| {
//!     let handles: Vec<_> = (0..2)
//!         .map(|_| {
//!             scope.spawn(|| {
//!                 let prepared = frozen.prepare(&query).unwrap();
//!                 frozen.execute(&prepared).unwrap().count()
//!             })
//!         })
//!         .collect();
//!     handles.into_iter().map(|h| h.join().unwrap()).collect()
//! });
//! assert_eq!(counts, vec![2, 2]);
//! // Both thread-side preparations were plan-cache hits.
//! let stats = frozen.plan_cache_stats();
//! assert_eq!((stats.hits, stats.misses), (2, 1));
//! ```

use super::{
    execute_plan, next_session_id, stream_vars, AnswerStream, EngineConfig, ExecRoute, Plan,
    PreparedQuery, Session, Strategy,
};
use crate::chase::{RpsChaseStats, UniversalSolution};
use crate::datalog_route::DatalogEngine;
use crate::equivalence::EquivalenceIndex;
use crate::error::RpsError;
use crate::mapping::EquivalenceMapping;
use crate::rewriting::RpsRewriter;
use rps_query::{GraphPatternQuery, Semantics, TermOrVar};
use rps_rdf::{Graph, Iri, RdfError, Term};
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Default bound of the plan cache (entries), used by
/// [`Session::freeze`].
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 1024;

/// Hit/miss counters and occupancy of a frozen session's plan cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PlanCacheStats {
    /// Preparations served from the cache (no rewriting, no lock on the
    /// compile state).
    pub hits: u64,
    /// Preparations that compiled a fresh plan.
    pub misses: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// The configured bound.
    pub capacity: usize,
}

/// The bounded plan cache: canonical query key → shared prepared plan,
/// FIFO-evicted at capacity, with hit/miss counters. One mutex (owned
/// by the embedding session) guards map, eviction order and counters
/// together — the critical section is a hash probe, so the lock is
/// never held across compilation or execution. Generic over the plan
/// type so the federated counterpart in `rps-p2p` shares the
/// implementation.
pub struct PlanCache<T> {
    capacity: usize,
    map: HashMap<String, Arc<T>>,
    order: VecDeque<String>,
    hits: u64,
    misses: u64,
}

impl<T> PlanCache<T> {
    /// An empty cache bounded to `capacity` entries (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity: capacity.max(1),
            map: HashMap::new(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Fetches the plan cached under `key`, counting a hit or a miss.
    pub fn lookup(&mut self, key: &str) -> Option<Arc<T>> {
        match self.map.get(key) {
            Some(hit) => {
                self.hits += 1;
                Some(hit.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly compiled plan, unless a concurrent preparation
    /// of the same key landed first — then that plan wins (so every
    /// caller of the same key converges on one shared `Arc`).
    pub fn insert(&mut self, key: String, plan: Arc<T>) -> Arc<T> {
        if let Some(existing) = self.map.get(&key) {
            return existing.clone();
        }
        while self.map.len() >= self.capacity {
            match self.order.pop_front() {
                Some(old) => {
                    self.map.remove(&old);
                }
                None => break,
            }
        }
        self.map.insert(key.clone(), plan.clone());
        self.order.push_back(key);
        plan
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.map.len(),
            capacity: self.capacity,
        }
    }
}

/// The canonical (numbered-variable) cache key of a query: variables are
/// renamed to dense `#n` slots by first occurrence — head first, then
/// body in conjunct order — so α-equivalent queries share one plan.
/// Constants render with an explicit kind tag, making the key injective
/// on everything that affects compilation. Shared with the federated
/// frozen session in `rps-p2p`.
pub fn canonical_plan_key(query: &GraphPatternQuery) -> String {
    let mut slots: HashMap<String, usize> = HashMap::new();
    let mut key = String::new();
    let push_var = |name: &str, key: &mut String, slots: &mut HashMap<String, usize>| {
        let next = slots.len();
        let slot = *slots.entry(name.to_string()).or_insert(next);
        let _ = write!(key, "#{slot} ");
    };
    for v in query.free_vars() {
        push_var(v.name(), &mut key, &mut slots);
    }
    key.push('|');
    for tp in query.pattern().patterns() {
        for tv in [&tp.s, &tp.p, &tp.o] {
            match tv {
                TermOrVar::Var(v) => push_var(v.name(), &mut key, &mut slots),
                TermOrVar::Term(Term::Iri(i)) => {
                    let _ = write!(key, "I<{i}> ");
                }
                TermOrVar::Term(Term::Literal(l)) => {
                    let _ = write!(key, "L<{l}> ");
                }
                TermOrVar::Term(Term::Blank(b)) => {
                    let _ = write!(key, "B<{b}> ");
                }
            }
        }
        key.push('.');
    }
    key
}

/// The shared, immutable state behind every clone of a [`FrozenSession`].
struct FrozenInner {
    /// Inherited from the freezing session, so queries prepared *before*
    /// the freeze still execute here.
    id: u64,
    generation: u32,
    config: EngineConfig,
    eq_index: EquivalenceIndex,
    /// Captured at freeze so route resolution never takes the compile
    /// lock.
    fo_rewritable: bool,
    /// The sealed universal solution — present whenever the strategy can
    /// route a query to the materialised plan (including the `Auto`
    /// fallback).
    solution: Option<Arc<UniversalSolution>>,
    /// The compile state of the rewrite route. Preparing a *new* query
    /// interns its constants into the rewriter's dictionaries, so that
    /// short phase is serialised here; compiled plans carry their own
    /// `Arc` of the sealed canonical graph and execute without this
    /// lock.
    compiler: Option<Mutex<RpsRewriter>>,
    /// The saturated Datalog engine (least model computed at freeze).
    /// Query evaluation interns into its encoder, hence the lock.
    datalog: Option<Mutex<DatalogEngine>>,
    cache: Mutex<PlanCache<PreparedQuery>>,
}

/// A `Send + Sync` answering handle over a frozen
/// [`Session`]: [`prepare`](FrozenSession::prepare) and
/// [`execute`](FrozenSession::execute) take `&self` and run concurrently
/// from many threads, with a bounded plan cache in front of the compile
/// phase. Cloning is an `Arc` bump — clones share the cache and all
/// compiled state. See the [module docs](self) for the threading
/// example and [`Session::freeze`] for what freezing seals.
#[derive(Clone)]
pub struct FrozenSession {
    inner: Arc<FrozenInner>,
}

// The point of freezing: one handle, many threads. (Enforced here at
// compile time; a regression — e.g. a `Cell` slipping into a plan —
// fails this function's where-clauses.)
#[allow(dead_code)]
fn static_assert_send_sync() {
    fn assert<T: Send + Sync>() {}
    assert::<FrozenSession>();
    assert::<PreparedQuery>();
    assert::<AnswerStream>();
}

impl Session {
    /// Freezes this session into a shareable [`FrozenSession`] with the
    /// default plan-cache bound, running the outstanding compile-phase
    /// work eagerly:
    ///
    /// * strategies that can route to the materialised plan
    ///   ([`Strategy::Materialise`], and [`Strategy::Auto`] when
    ///   rewriting is not guaranteed perfect) chase now and seal the
    ///   universal solution ([`RpsError::ChaseBudget`] on exhaustion);
    /// * the rewrite route's `IdTgdSet` is compiled now, so the first
    ///   concurrent `prepare` pays only its own query's expansion;
    /// * [`Strategy::Datalog`] saturates the least model now.
    ///
    /// Queries prepared *before* the freeze keep working on the frozen
    /// session — plans carry their substrate, and the session identity
    /// and configuration generation carry over. One behavioural
    /// difference from the mutable path: under [`Strategy::Auto`] with
    /// FO-rewritable mappings no solution is materialised, so a
    /// rewriting that exhausts its budgets reports
    /// [`RpsError::RewriteBudget`] instead of lazily chasing a fallback
    /// (a frozen session cannot start a chase). Raise the budgets or
    /// freeze under [`Strategy::Materialise`] if that can matter.
    pub fn freeze(self) -> Result<FrozenSession, RpsError> {
        self.freeze_with_cache_capacity(DEFAULT_PLAN_CACHE_CAPACITY)
    }

    /// [`Session::freeze`] with an explicit plan-cache bound (entries;
    /// clamped to at least 1).
    pub fn freeze_with_cache_capacity(
        mut self,
        capacity: usize,
    ) -> Result<FrozenSession, RpsError> {
        let star = self.config.semantics == Semantics::Star;
        if star && matches!(self.config.strategy, Strategy::Rewrite | Strategy::Datalog) {
            return Err(RpsError::StarNeedsMaterialisation);
        }
        let needs_rewriter =
            !star && matches!(self.config.strategy, Strategy::Rewrite | Strategy::Auto);
        let mut fo_rewritable = false;
        if needs_rewriter {
            let rewriter = self.rewriter_mut();
            rewriter.precompile_canonical();
            fo_rewritable = rewriter.fo_rewritable();
        }
        let needs_solution = match self.config.strategy {
            Strategy::Materialise => true,
            Strategy::Auto => star || !fo_rewritable,
            Strategy::Rewrite | Strategy::Datalog => false,
        };
        let solution = if needs_solution {
            Some(self.universal_solution()?)
        } else {
            // Keep an already-complete cached solution (from pre-freeze
            // preparations) as the Auto fallback substrate.
            self.solution.take().filter(|s| s.complete)
        };
        // Frozen sessions serve reads only, so this is the moment to
        // pick the physical layout: reseal the solution graph into
        // subject-hash shards (and optionally columnar-compressed runs)
        // per the execution config. Answers are unaffected — the sealed
        // forms scan byte-identically to the unsharded runs.
        let solution = match solution {
            Some(arc) if self.config.exec.wants_reseal() => {
                let mut sol = Arc::try_unwrap(arc).unwrap_or_else(|a| (*a).clone());
                sol.graph.seal_with(&self.config.exec.seal_config());
                Some(Arc::new(sol))
            }
            other => other,
        };
        let datalog = if self.config.strategy == Strategy::Datalog {
            let mut engine = match self.datalog.take() {
                Some(engine) => engine,
                None => DatalogEngine::new(&self.system)?,
            };
            engine.model_size(); // saturate outside the per-query lock
            Some(Mutex::new(engine))
        } else {
            None
        };
        let compiler = if needs_rewriter {
            Some(Mutex::new(self.rewriter.take().expect("built above")))
        } else {
            None
        };
        Ok(FrozenSession {
            inner: Arc::new(FrozenInner {
                id: self.id,
                generation: self.generation,
                config: self.config,
                eq_index: self.eq_index,
                fo_rewritable,
                solution,
                compiler,
                datalog,
                cache: Mutex::new(PlanCache::new(capacity)),
            }),
        })
    }
}

impl FrozenSession {
    /// The (immutable) configuration this session was frozen with.
    pub fn config(&self) -> &EngineConfig {
        &self.inner.config
    }

    /// The union-find index over the system's equivalence mappings.
    pub fn equivalence_index(&self) -> &EquivalenceIndex {
        &self.inner.eq_index
    }

    /// Plan-cache hit/miss counters and occupancy.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.inner.cache.lock().expect("plan cache lock").stats()
    }

    /// Compiles a query — or returns the cached plan of an α-equivalent
    /// one prepared earlier (on any thread). The returned handle is
    /// shared: executing it does not require re-preparation, and
    /// repeated preparations of the same canonical query are cache hits
    /// that skip route resolution, rewriting and plan compilation
    /// entirely.
    ///
    /// Cache-hit note: the handle's [`PreparedQuery::query`] (and hence
    /// the projection variable *names* on executed streams) is the
    /// first-prepared representative of the α-equivalence class; answer
    /// tuples are identical for every member of the class.
    pub fn prepare(&self, query: &GraphPatternQuery) -> Result<Arc<PreparedQuery>, RpsError> {
        let key = canonical_plan_key(query);
        if let Some(hit) = self
            .inner
            .cache
            .lock()
            .expect("plan cache lock")
            .lookup(&key)
        {
            return Ok(hit);
        }
        // Compile outside the cache lock; if several threads race on the
        // same fresh query, the first insert wins and the rest adopt it.
        let compiled = Arc::new(self.compile(query)?);
        Ok(self
            .inner
            .cache
            .lock()
            .expect("plan cache lock")
            .insert(key, compiled))
    }

    /// Route resolution without the compile lock (the FO-rewritability
    /// verdict was captured at freeze).
    fn resolve_route(&self) -> ExecRoute {
        let star = self.inner.config.semantics == Semantics::Star;
        match self.inner.config.strategy {
            Strategy::Materialise => ExecRoute::Materialised,
            Strategy::Rewrite => ExecRoute::Rewritten,
            Strategy::Datalog => ExecRoute::Datalog,
            Strategy::Auto => {
                if !star && self.inner.fo_rewritable {
                    ExecRoute::Rewritten
                } else {
                    ExecRoute::Materialised
                }
            }
        }
    }

    fn compile(&self, query: &GraphPatternQuery) -> Result<PreparedQuery, RpsError> {
        let inner = &*self.inner;
        let materialised = |rewrite_fell_back: bool| -> Result<(ExecRoute, bool, Plan), RpsError> {
            let solution = inner
                .solution
                .as_ref()
                .expect("freeze materialised the solution for this route")
                .clone();
            let plan = rps_query::PreparedQueryIds::compile_only_with(
                &solution.graph,
                query,
                inner.config.exec.order,
            );
            Ok((
                ExecRoute::Materialised,
                rewrite_fell_back,
                Plan::Materialised { solution, plan },
            ))
        };
        let (route, rewrite_fell_back, plan) = match self.resolve_route() {
            ExecRoute::Materialised | ExecRoute::Federated => materialised(false)?,
            ExecRoute::Datalog => (ExecRoute::Datalog, false, Plan::Datalog),
            ExecRoute::Rewritten => {
                let cfg = inner.config.rewrite.clone();
                let mut rewriter = inner
                    .compiler
                    .as_ref()
                    .expect("freeze built the rewriter for this route")
                    .lock()
                    .expect("compile lock");
                let rewriting = rewriter.rewrite_canonical(query, &cfg);
                if rewriting.complete {
                    let branches = rewriter.compile_branches(&rewriting);
                    let graph = rewriter.canon_graph_arc();
                    (
                        ExecRoute::Rewritten,
                        false,
                        Plan::Rewritten { graph, branches },
                    )
                } else if inner.config.strategy == Strategy::Rewrite || inner.solution.is_none() {
                    // Explicit Rewrite reports the typed error; Auto can
                    // only fall back if a (complete) solution was frozen
                    // in — a frozen session cannot start a chase.
                    return Err(RpsError::RewriteBudget {
                        explored: rewriting.explored,
                        max_depth: cfg.max_depth,
                        max_cqs: cfg.max_cqs,
                    });
                } else {
                    drop(rewriter);
                    materialised(true)?
                }
            }
        };
        Ok(PreparedQuery {
            session_id: inner.id,
            generation: inner.generation,
            query: query.clone(),
            route,
            semantics: inner.config.semantics,
            rewrite_fell_back,
            plan,
        })
    }

    /// Executes a prepared query, returning a streaming answer iterator.
    /// Lock-free on the materialised and rewritten routes (plans carry
    /// their sealed substrate); the Datalog route serialises on its
    /// engine's encoder. Accepts queries prepared by this frozen session
    /// *or* by the mutable session it was frozen from
    /// ([`RpsError::SessionMismatch`] for anything else;
    /// [`RpsError::StalePlan`] if the plan predates the last pre-freeze
    /// [`Session::config_mut`]).
    pub fn execute(&self, prepared: &PreparedQuery) -> Result<AnswerStream, RpsError> {
        let inner = &*self.inner;
        if prepared.session_id != inner.id {
            return Err(RpsError::SessionMismatch);
        }
        if prepared.generation != inner.generation {
            return Err(RpsError::StalePlan {
                prepared: prepared.generation,
                current: inner.generation,
            });
        }
        match &prepared.plan {
            Plan::Datalog => {
                let mut engine = inner
                    .datalog
                    .as_ref()
                    .expect("freeze built the Datalog engine for this route")
                    .lock()
                    .expect("datalog lock");
                let ans = engine.answers(&prepared.query);
                Ok(AnswerStream::from_terms(
                    stream_vars(&prepared.query),
                    ExecRoute::Datalog,
                    ans.tuples,
                ))
            }
            _ => execute_plan(prepared, &inner.eq_index, &inner.config.exec),
        }
    }

    /// Prepares (or fetches from the plan cache) and executes in one
    /// call.
    pub fn answer(&self, query: &GraphPatternQuery) -> Result<AnswerStream, RpsError> {
        let prepared = self.prepare(query)?;
        self.execute(&prepared)
    }

    /// Physical storage counters of the frozen universal solution
    /// (run/tail shape plus the durability counters), or `None` when the
    /// session's route carries no materialised solution.
    pub fn storage_stats(&self) -> Option<rps_rdf::StorageStats> {
        self.inner
            .solution
            .as_ref()
            .map(|s| s.graph.storage_stats())
    }

    /// Persists this frozen session into `dir` so [`FrozenSession::open`]
    /// can rebuild it in a fresh process **without re-running the
    /// chase**: the sealed universal solution goes through the durable
    /// graph tier ([`Graph::persist`], under `dir/solution`) and the
    /// session metadata — semantics, budgets, chase statistics, the
    /// equivalence classes — into a `SESSION` file committed by
    /// write-temp-then-atomic-rename.
    ///
    /// Only the **materialised route** persists: rewritten and Datalog
    /// routes carry live compile state (interned dictionaries, saturated
    /// engines) that is cheap to rebuild but has no stable on-disk form;
    /// a session resolving to one of those routes is a typed
    /// [`RpsError::Persist`]. Freeze under [`Strategy::Materialise`] to
    /// guarantee persistability.
    ///
    /// The dictionary round-trips id-for-id, so a reopened session
    /// serves **byte-identical** answer tuples in identical order.
    pub fn persist(&self, dir: impl AsRef<Path>) -> Result<(), RpsError> {
        let dir = dir.as_ref();
        let route = self.resolve_route();
        if route != ExecRoute::Materialised {
            return Err(RpsError::Persist {
                detail: format!(
                    "only the materialised route persists; this session resolves to {route:?} \
                     (freeze under Strategy::Materialise)"
                ),
            });
        }
        let solution = self
            .inner
            .solution
            .as_ref()
            .ok_or_else(|| RpsError::Persist {
                detail: "session carries no materialised solution".to_string(),
            })?;
        std::fs::create_dir_all(dir)
            .map_err(|e| RdfError::io(format!("create session directory {}", dir.display()), &e))?;
        solution.graph.persist(dir.join("solution"))?;

        let mut text = String::from("RPS-SESSION v1\n");
        let cfg = &self.inner.config;
        let semantics = match cfg.semantics {
            Semantics::Certain => "certain",
            Semantics::Star => "star",
        };
        let _ = writeln!(text, "semantics {semantics}");
        let _ = writeln!(text, "chase.max_rounds {}", cfg.chase.max_rounds);
        let _ = writeln!(text, "chase.max_triples {}", cfg.chase.max_triples);
        let _ = writeln!(text, "rewrite.max_depth {}", cfg.rewrite.max_depth);
        let _ = writeln!(text, "rewrite.max_cqs {}", cfg.rewrite.max_cqs);
        let s = &solution.stats;
        let _ = writeln!(
            text,
            "stats {} {} {} {} {}",
            s.rounds, s.gma_firings, s.eq_copies, s.blanks_created, s.invalid_firings
        );
        let _ = writeln!(text, "complete {}", solution.complete);
        for (_, members) in self.inner.eq_index.classes() {
            text.push_str("eq");
            for m in members {
                text.push(' ');
                text.push_str(&escape_field(m.as_str()));
            }
            text.push('\n');
        }
        text.push_str("end\n");

        // Same commit discipline as the graph manifest: the rename is
        // the point after which the session exists.
        let tmp = dir.join("SESSION.tmp");
        let dst = dir.join("SESSION");
        let ctx = || format!("commit session file in {}", dir.display());
        std::fs::write(&tmp, &text)
            .and_then(|()| std::fs::File::open(&tmp).and_then(|f| f.sync_all()))
            .and_then(|()| std::fs::rename(&tmp, &dst))
            .map_err(|e| RdfError::io(ctx(), &e))?;
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    /// Reopens a session persisted by [`FrozenSession::persist`]: the
    /// universal solution is recovered through the durable graph tier
    /// (checksum-verified pages, WAL replay — no chase) and the handle
    /// answers on the materialised route exactly as the pre-persist
    /// session did, byte-identically. Malformed session metadata is a
    /// typed [`rps_rdf::RdfError::Corrupt`] via [`RpsError::Rdf`]; the
    /// federated retry/failure policies reset to defaults (they describe
    /// transports, not this snapshot).
    pub fn open(dir: impl AsRef<Path>) -> Result<FrozenSession, RpsError> {
        let dir = dir.as_ref();
        let path = dir.join("SESSION");
        let name = path.display().to_string();
        let text = std::fs::read_to_string(&path)
            .map_err(|e| RdfError::io(format!("open session file {name}"), &e))?;
        let corrupt = |detail: &str| RpsError::Rdf(RdfError::corrupt(&name, detail));

        let mut lines = text.lines();
        if lines.next() != Some("RPS-SESSION v1") {
            return Err(corrupt("bad session header"));
        }
        let mut semantics = None;
        let mut chase_rounds = None;
        let mut chase_triples = None;
        let mut rw_depth = None;
        let mut rw_cqs = None;
        let mut stats: Option<RpsChaseStats> = None;
        let mut complete = None;
        let mut mappings: Vec<EquivalenceMapping> = Vec::new();
        let mut ended = false;
        for line in lines {
            let mut parts = line.split(' ');
            let key = parts.next().unwrap_or("");
            let num = |v: Option<&str>| -> Result<usize, RpsError> {
                v.and_then(|v| v.parse().ok())
                    .ok_or_else(|| corrupt(&format!("bad numeric field in `{line}`")))
            };
            match key {
                "semantics" => {
                    semantics = Some(match parts.next() {
                        Some("certain") => Semantics::Certain,
                        Some("star") => Semantics::Star,
                        _ => return Err(corrupt("unknown semantics")),
                    });
                }
                "chase.max_rounds" => chase_rounds = Some(num(parts.next())?),
                "chase.max_triples" => chase_triples = Some(num(parts.next())?),
                "rewrite.max_depth" => rw_depth = Some(num(parts.next())?),
                "rewrite.max_cqs" => rw_cqs = Some(num(parts.next())?),
                "stats" => {
                    stats = Some(RpsChaseStats {
                        rounds: num(parts.next())?,
                        gma_firings: num(parts.next())?,
                        eq_copies: num(parts.next())?,
                        blanks_created: num(parts.next())? as u64,
                        invalid_firings: num(parts.next())?,
                        // Live-update counters are not persisted — a
                        // reopened session starts from a quiescent state.
                        ..RpsChaseStats::default()
                    });
                }
                "complete" => {
                    complete = Some(match parts.next() {
                        Some("true") => true,
                        Some("false") => false,
                        _ => return Err(corrupt("bad completeness flag")),
                    });
                }
                "eq" => {
                    let members: Vec<Iri> = parts
                        .map(|m| unescape_field(m).map(Iri::new))
                        .collect::<Result<_, _>>()
                        .map_err(|detail| corrupt(&detail))?;
                    let [first, rest @ ..] = members.as_slice() else {
                        return Err(corrupt("empty equivalence class"));
                    };
                    for m in rest {
                        mappings.push(EquivalenceMapping::new(first.clone(), m.clone()));
                    }
                }
                "end" => {
                    ended = true;
                    break;
                }
                _ => return Err(corrupt(&format!("unknown session field `{key}`"))),
            }
        }
        if !ended {
            return Err(corrupt("session file is truncated (no `end` marker)"));
        }
        let (Some(semantics), Some(stats), Some(complete)) = (semantics, stats, complete) else {
            return Err(corrupt("session file is missing required fields"));
        };

        let mut graph = Graph::open(dir.join("solution"))?;
        // The persisted solution was sealed; recovery replays the tail
        // through the WAL, so re-seal for lock-free shared scans.
        graph.seal();
        let mut config = EngineConfig::default()
            .with_strategy(Strategy::Materialise)
            .with_semantics(semantics);
        if let (Some(r), Some(t)) = (chase_rounds, chase_triples) {
            config.chase.max_rounds = r;
            config.chase.max_triples = t;
        }
        if let (Some(d), Some(c)) = (rw_depth, rw_cqs) {
            config.rewrite.max_depth = d;
            config.rewrite.max_cqs = c;
        }
        Ok(FrozenSession {
            inner: Arc::new(FrozenInner {
                id: next_session_id(),
                generation: 0,
                config,
                eq_index: EquivalenceIndex::from_mappings(&mappings),
                fo_rewritable: false,
                solution: Some(Arc::new(UniversalSolution {
                    graph,
                    stats,
                    complete,
                })),
                compiler: None,
                datalog: None,
                cache: Mutex::new(PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY)),
            }),
        })
    }
}

/// Escapes one space-separated `SESSION` field (IRIs may in principle
/// contain spaces or control characters).
fn escape_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            ' ' => out.push_str("\\_"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out
}

fn unescape_field(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('_') => out.push(' '),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            _ => return Err(format!("bad escape in session field `{s}`")),
        }
    }
    Ok(out)
}
