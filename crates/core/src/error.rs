//! The unified error type of the answering API.
//!
//! Earlier revisions of this crate signalled failure in four different
//! ways: panics (arity mismatches), `Option`s (budget overflows),
//! bespoke error enums per layer (validation, mappings, Datalog
//! compilation) and silent flags (`complete: false` on otherwise normal
//! results). [`RpsError`] is the single surface the [`crate::Session`]
//! façade reports all of them through.

use crate::fault::FailureCause;
use crate::mapping::MappingError;
use crate::system::SystemValidationError;
use rps_rdf::RdfError;
use rps_tgd::DatalogError;
use std::fmt;

/// Everything that can go wrong while building a [`crate::Session`] or
/// answering a query through it.
#[derive(Debug)]
pub enum RpsError {
    /// The peer system failed validation (storage constraints, mapping
    /// schemas, unknown peers).
    Validation(SystemValidationError),
    /// A mapping assertion was malformed.
    Mapping(MappingError),
    /// An RDF-level failure (Turtle parsing, invalid triple positions).
    Rdf(RdfError),
    /// The chase exhausted its budget before reaching a fixpoint, so no
    /// sound universal solution exists to answer over. Raise the budgets
    /// in [`crate::EngineConfig::chase`].
    ChaseBudget {
        /// Rounds executed before giving up.
        rounds: usize,
        /// Triples materialised before giving up.
        triples: usize,
    },
    /// The UCQ rewriting exhausted its budgets before reaching a
    /// fixpoint, so the union is not a perfect rewriting and answering
    /// over it would silently drop certain answers. Raised when the
    /// strategy *requires* the rewrite route; the `Auto` strategy falls
    /// back to materialisation instead (see
    /// [`crate::PreparedQuery::rewrite_fell_back`]). Raise the budgets
    /// in [`crate::EngineConfig::rewrite`], or pick a strategy with a
    /// complete route (materialise, or Datalog for full mappings).
    RewriteBudget {
        /// Distinct CQs explored before giving up.
        explored: usize,
        /// The depth budget that bounded the expansion.
        max_depth: usize,
        /// The union-size budget that bounded the expansion.
        max_cqs: usize,
    },
    /// Datalog routing was requested for a system whose graph mapping
    /// assertions are not full (existential conclusions need the chase).
    NotDatalog(DatalogError),
    /// The `Q*` (blank-keeping) semantics is only available through the
    /// materialised route; rewriting and Datalog routing compute certain
    /// answers.
    StarNeedsMaterialisation,
    /// A prepared query was executed on a session other than the one
    /// that prepared it. Compiled plans reference their session's caches
    /// and dictionaries, so they are not transferable.
    SessionMismatch,
    /// The compiled plan is too old to execute. Two layers raise this
    /// with the same shape: a mutable [`crate::Session`] whose
    /// configuration generation moved (via
    /// [`crate::Session::config_mut`]) after the query was prepared, and
    /// a [`crate::live::LiveSession`] whose writer has published more
    /// epochs than the retention window keeps executable — a live plan
    /// stays pinned to the epoch it was prepared against until the
    /// writer's retention floor passes it. Re-prepare the query to pick
    /// up the current generation/epoch. (Frozen sessions never raise
    /// this — their configuration is immutable by construction.)
    StalePlan {
        /// The configuration generation / epoch the plan was compiled
        /// under.
        prepared: u32,
        /// The session's current configuration generation / epoch.
        current: u32,
    },
    /// Live sessions answer from the incrementally maintained,
    /// materialised universal solution; the rewrite and Datalog routes
    /// assume an immutable base instance and are not available through
    /// [`crate::live::LiveSession`]. Use `Strategy::Materialise` or
    /// `Strategy::Auto`.
    LiveNeedsMaterialisation,
    /// A federated peer stayed unreachable after the configured retry
    /// policy was exhausted, and the failure policy is
    /// [`crate::FailurePolicy::Strict`] — the query fails rather than
    /// returning silently incomplete answers. Switch to `BestEffort` or
    /// `Quorum` (see [`crate::EngineConfig::failure`]) to degrade
    /// gracefully instead; the skipped peers are then itemised in the
    /// per-query federation report.
    PeerUnreachable {
        /// The unreachable peer's index.
        peer: usize,
        /// Attempts made before giving up.
        attempts: u32,
        /// Why the final attempt failed.
        cause: FailureCause,
    },
    /// A federated execution under [`crate::FailurePolicy::Quorum`]
    /// finished with fewer responsive peers than the quorum requires.
    QuorumNotMet {
        /// Contacted peers that responded to every exchange.
        responded: usize,
        /// The configured quorum.
        required: usize,
    },
    /// A frozen session could not be persisted or reopened: the route
    /// is not persistable (only the materialised route snapshots to
    /// disk — rewritten/Datalog routes carry live compile state), or
    /// the session file on disk is malformed. Low-level I/O and
    /// durable-state corruption surface as [`RpsError::Rdf`] instead.
    Persist {
        /// What prevented the persist/open.
        detail: String,
    },
    /// A candidate tuple's arity does not match the query's.
    Arity {
        /// The query arity.
        expected: usize,
        /// The tuple arity supplied.
        got: usize,
    },
    /// A SPARQL query failed to parse, or fell outside the supported
    /// SELECT/ASK subset. The payload carries the offending byte span
    /// and line/column; the front-end never panics on malformed input.
    Sparql(rps_query::SparqlError),
}

impl fmt::Display for RpsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpsError::Validation(e) => write!(f, "system validation failed: {e}"),
            RpsError::Mapping(e) => write!(f, "malformed mapping: {e}"),
            RpsError::Rdf(e) => write!(f, "RDF error: {e}"),
            RpsError::ChaseBudget { rounds, triples } => write!(
                f,
                "chase budget exhausted after {rounds} rounds / {triples} triples \
                 without reaching a fixpoint"
            ),
            RpsError::RewriteBudget {
                explored,
                max_depth,
                max_cqs,
            } => write!(
                f,
                "rewriting budget exhausted after exploring {explored} CQs \
                 (max_depth {max_depth}, max_cqs {max_cqs}) without reaching a fixpoint"
            ),
            RpsError::NotDatalog(e) => {
                write!(f, "system is not expressible as a Datalog program: {e}")
            }
            RpsError::StarNeedsMaterialisation => write!(
                f,
                "Q* (blank-keeping) semantics requires the materialised route"
            ),
            RpsError::SessionMismatch => write!(
                f,
                "prepared query was compiled by a different session; re-prepare it here"
            ),
            RpsError::LiveNeedsMaterialisation => write!(
                f,
                "live sessions answer from the incrementally maintained universal \
                 solution; the rewrite and Datalog routes are unavailable — use \
                 Strategy::Materialise or Strategy::Auto"
            ),
            RpsError::StalePlan { prepared, current } => write!(
                f,
                "prepared query is stale: compiled under configuration generation \
                 {prepared}, but the session is at generation {current}; re-prepare it"
            ),
            RpsError::PeerUnreachable {
                peer,
                attempts,
                cause,
            } => write!(
                f,
                "peer {peer} unreachable after {attempts} attempt(s): {cause}"
            ),
            RpsError::QuorumNotMet {
                responded,
                required,
            } => write!(
                f,
                "quorum not met: {responded} peer(s) responded, {required} required"
            ),
            RpsError::Persist { detail } => {
                write!(f, "cannot persist/open frozen session: {detail}")
            }
            RpsError::Arity { expected, got } => {
                write!(
                    f,
                    "arity mismatch: query has {expected} free variables, tuple has {got}"
                )
            }
            RpsError::Sparql(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RpsError {}

impl From<SystemValidationError> for RpsError {
    fn from(e: SystemValidationError) -> Self {
        RpsError::Validation(e)
    }
}

impl From<MappingError> for RpsError {
    fn from(e: MappingError) -> Self {
        RpsError::Mapping(e)
    }
}

impl From<RdfError> for RpsError {
    fn from(e: RdfError) -> Self {
        RpsError::Rdf(e)
    }
}

impl From<DatalogError> for RpsError {
    fn from(e: DatalogError) -> Self {
        RpsError::NotDatalog(e)
    }
}

impl From<rps_query::SparqlError> for RpsError {
    fn from(e: rps_query::SparqlError) -> Self {
        RpsError::Sparql(e)
    }
}
