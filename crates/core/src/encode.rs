//! Section 3: encoding an RPS into a relational data-exchange setting.
//!
//! Relational alphabets `Rs = {ts/3, rs/1}` (stored triples and
//! identified resources) and `Rt = {tt/3, rt/1}` (inferred triples and
//! resources). The source-to-target dependencies copy `ts → tt` and
//! `rs → rt`; each graph mapping assertion becomes one target TGD with
//! `rt` guards on the free variables; each equivalence mapping becomes
//! six target TGDs (one per position per direction).

use crate::system::RdfPeerSystem;
use rps_query::{GraphPattern, GraphPatternQuery, TermOrVar};
use rps_rdf::{Graph, Term};
use rps_tgd::{Atom, AtomArg, GroundTerm, Instance, Sym, Tgd};
use std::collections::HashMap;

/// Bidirectional mapping between RDF terms and relational symbols.
///
/// IRIs encode as `i:<iri>`, literals as `l:<display form>` (both
/// prefixes keep the namespaces disjoint, mirroring the disjointness of
/// `I` and `L`); blank nodes become labelled nulls.
#[derive(Clone, Debug, Default)]
pub struct Encoder {
    blank_to_null: HashMap<String, u64>,
    null_to_blank: HashMap<u64, String>,
    next_null: u64,
}

impl Encoder {
    /// Creates an encoder minting nulls from 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Highest null id handed out so far (pass to the chase so fresh
    /// nulls do not collide).
    pub fn next_null(&self) -> u64 {
        self.next_null
    }

    /// Encodes a term as a relational ground term.
    pub fn encode(&mut self, term: &Term) -> GroundTerm {
        match term {
            Term::Iri(iri) => GroundTerm::constant(format!("i:{}", iri.as_str())),
            Term::Literal(lit) => GroundTerm::constant(format!("l:{lit}")),
            Term::Blank(b) => {
                let label = b.label().to_string();
                let null = *self.blank_to_null.entry(label.clone()).or_insert_with(|| {
                    let n = self.next_null;
                    self.next_null += 1;
                    n
                });
                self.null_to_blank.entry(null).or_insert(label);
                GroundTerm::Null(null)
            }
        }
    }

    /// Decodes a relational ground term back to an RDF term. Nulls that
    /// the encoder did not mint (chase-invented) become fresh blank
    /// nodes labelled `null<N>`.
    pub fn decode(&self, g: &GroundTerm) -> Term {
        match g {
            GroundTerm::Const(sym) => decode_const(sym),
            GroundTerm::Null(n) => match self.null_to_blank.get(n) {
                Some(label) => Term::blank(label.clone()),
                None => Term::blank(format!("null{n}")),
            },
        }
    }
}

/// Decodes a constant symbol (`i:` / `l:` tagged) to an RDF term.
fn decode_const(sym: &Sym) -> Term {
    if let Some(iri) = sym.strip_prefix("i:") {
        Term::iri(iri)
    } else if let Some(lit) = sym.strip_prefix("l:") {
        // Re-parse the display form: "lex"[@tag|^^<iri>]. For round-trips
        // within this crate the lexical form is enough; we parse the
        // common shapes and fall back to a plain literal.
        parse_literal_display(lit).unwrap_or_else(|| Term::literal(lit.to_string()))
    } else {
        // Foreign constant (e.g. from hand-written relational tests).
        Term::iri(sym.to_string())
    }
}

fn parse_literal_display(s: &str) -> Option<Term> {
    let rest = s.strip_prefix('"')?;
    let close = find_closing_quote(rest)?;
    let lex = unescape(&rest[..close]);
    let tail = &rest[close + 1..];
    if tail.is_empty() {
        Some(Term::Literal(rps_rdf::Literal::plain(lex)))
    } else if let Some(tag) = tail.strip_prefix('@') {
        Some(Term::Literal(rps_rdf::Literal::lang(lex, tag.to_string())))
    } else if let Some(dt) = tail.strip_prefix("^^<") {
        let dt = dt.strip_suffix('>')?;
        Some(Term::Literal(rps_rdf::Literal::typed(
            lex,
            rps_rdf::Iri::new(dt.to_string()),
        )))
    } else {
        None
    }
}

fn find_closing_quote(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some(i),
            _ => i += 1,
        }
    }
    None
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some(other) => out.push(other),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Encodes a query-position term (constant or variable) as an atom
/// argument over the target alphabet.
fn encode_tv(tv: &TermOrVar, enc: &mut Encoder) -> AtomArg {
    match tv {
        TermOrVar::Var(v) => AtomArg::var(v.name()),
        TermOrVar::Term(t) => AtomArg::from(enc.encode(t)),
    }
}

/// Converts a graph pattern into `tt` atoms.
pub fn pattern_to_atoms(gp: &GraphPattern, enc: &mut Encoder) -> Vec<Atom> {
    gp.patterns()
        .iter()
        .map(|tp| {
            Atom::new(
                "tt",
                vec![
                    encode_tv(&tp.s, enc),
                    encode_tv(&tp.p, enc),
                    encode_tv(&tp.o, enc),
                ],
            )
        })
        .collect()
}

/// Converts a graph pattern query to a relational CQ over `tt`
/// (optionally guarded by `rt` atoms on the free variables, as in the
/// paper's CQ translation).
pub fn query_to_cq(query: &GraphPatternQuery, enc: &mut Encoder, with_rt: bool) -> rps_tgd::Cq {
    let mut body = pattern_to_atoms(query.pattern(), enc);
    if with_rt {
        for v in query.free_vars() {
            body.push(Atom::new("rt", vec![AtomArg::var(v.name())]));
        }
    }
    rps_tgd::Cq {
        head: query
            .free_vars()
            .iter()
            .map(|v| AtomArg::var(v.name()))
            .collect(),
        body,
    }
}

/// The full data-exchange setting for a system.
#[derive(Clone, Debug)]
pub struct DataExchange {
    /// Source-to-target dependencies (`ts → tt`, `rs → rt`).
    pub source_to_target: Vec<Tgd>,
    /// Target dependencies: graph-mapping TGDs (with `rt` guards) and the
    /// six TGDs per equivalence mapping.
    pub target: Vec<Tgd>,
    /// Graph-mapping TGDs *without* the `rt` guards — the form used for
    /// classification and rewriting (Section 4 drops the guards, valid
    /// for blank-node-free sources).
    pub mapping_tgds_unguarded: Vec<Tgd>,
    /// The six-per-mapping equivalence TGDs (a subset of `target`).
    pub equivalence_tgds: Vec<Tgd>,
    /// The source instance (`ts` + `rs` facts).
    pub source: Instance,
    /// The term encoder (shared so decoded answers map back).
    pub encoder: Encoder,
}

/// Builds the Section 3 data-exchange setting for a system.
pub fn encode_system(system: &RdfPeerSystem) -> DataExchange {
    let mut enc = Encoder::new();

    // Source instance: ts-facts for stored triples, rs-facts for names.
    // Each distinct RDF term is encoded and interned once.
    let stored = system.stored_database();
    let mut source = Instance::new();
    let rs = source.intern_pred(&Sym::from("rs"));
    let ts = source.intern_pred(&Sym::from("ts"));
    let mut memo: Vec<Option<rps_tgd::ValId>> = vec![None; stored.dict().len()];
    let mut map =
        |id: rps_rdf::TermId, source: &mut Instance, enc: &mut Encoder| match memo[id.index()] {
            Some(v) => v,
            None => {
                let v = source.intern_value(&enc.encode(stored.term(id)));
                memo[id.index()] = Some(v);
                v
            }
        };
    for t in stored.iter_ids() {
        let s = map(t.s, &mut source, &mut enc);
        let p = map(t.p, &mut source, &mut enc);
        let o = map(t.o, &mut source, &mut enc);
        for v in [s, o] {
            if !source.values().is_null(v) {
                source.insert_row(rs, Box::new([v]));
            }
        }
        source.insert_row(rs, Box::new([p]));
        source.insert_row(ts, Box::new([s, p, o]));
    }

    let source_to_target = vec![
        Tgd::new(
            vec![Atom::new(
                "ts",
                vec![AtomArg::var("x"), AtomArg::var("y"), AtomArg::var("z")],
            )],
            vec![Atom::new(
                "tt",
                vec![AtomArg::var("x"), AtomArg::var("y"), AtomArg::var("z")],
            )],
        ),
        Tgd::new(
            vec![Atom::new("rs", vec![AtomArg::var("x")])],
            vec![Atom::new("rt", vec![AtomArg::var("x")])],
        ),
    ];

    let mut target = Vec::new();
    let mut mapping_tgds_unguarded = Vec::new();

    for gma in system.assertions() {
        let unguarded = gma_tgd_unguarded(&gma.premise, &gma.conclusion, &mut enc);
        let mut guarded_body = unguarded.body().to_vec();
        for v in gma.premise.free_vars() {
            guarded_body.push(Atom::new("rt", vec![AtomArg::var(v.name())]));
        }
        target.push(Tgd::new(guarded_body, unguarded.head().to_vec()));
        mapping_tgds_unguarded.push(unguarded);
    }

    let mut equivalence_tgds = Vec::new();
    for eq in system.equivalences() {
        let c = AtomArg::from(enc.encode(&Term::Iri(eq.left.clone())));
        let cp = AtomArg::from(enc.encode(&Term::Iri(eq.right.clone())));
        for pos in 0..3 {
            for (from, to) in [(&c, &cp), (&cp, &c)] {
                let mut body_args = vec![AtomArg::var("u"), AtomArg::var("v"), AtomArg::var("w")];
                let mut head_args = body_args.clone();
                body_args[pos] = from.clone();
                head_args[pos] = to.clone();
                let tgd = Tgd::new(
                    vec![Atom::new("tt", body_args)],
                    vec![Atom::new("tt", head_args)],
                );
                target.push(tgd.clone());
                equivalence_tgds.push(tgd);
            }
        }
    }

    DataExchange {
        source_to_target,
        target,
        mapping_tgds_unguarded,
        equivalence_tgds,
        source,
        encoder: enc,
    }
}

/// Encodes one graph mapping assertion `Q ⇝ Q'` as a single target TGD
/// over `tt`, without the `rt` guards. Premise existential variables are
/// renamed apart (`_b_` prefix) so they cannot clash with conclusion
/// existentials.
pub fn gma_tgd_unguarded(
    premise: &GraphPatternQuery,
    conclusion: &GraphPatternQuery,
    enc: &mut Encoder,
) -> Tgd {
    let body_atoms = pattern_to_atoms(premise.pattern(), enc);
    let head_atoms = pattern_to_atoms(conclusion.pattern(), enc);
    let premise_existentials = premise.existential_vars();
    let body_atoms: Vec<Atom> = body_atoms
        .iter()
        .map(|a| {
            Atom::new(
                a.pred.clone(),
                a.args
                    .iter()
                    .map(|arg| match arg {
                        AtomArg::Var(v)
                            if premise_existentials.iter().any(|e| e.name() == v.as_ref()) =>
                        {
                            AtomArg::var(format!("_b_{v}"))
                        }
                        other => other.clone(),
                    })
                    .collect(),
            )
        })
        .collect();
    Tgd::new(body_atoms, head_atoms)
}

/// Encodes an RDF graph directly as `tt` facts (used when evaluating
/// rewritings "directly over the sources": the `ts → tt` copy is the
/// identity, so sources can be loaded as `tt`).
pub fn graph_as_tt(graph: &Graph, enc: &mut Encoder) -> Instance {
    graph_as_tt_mapped(graph, enc).0
}

/// [`graph_as_tt`], additionally returning the term-id → value-id
/// translation built as a by-product of encoding (indexed by
/// [`rps_rdf::TermId`]; `None` for dictionary entries no triple uses).
/// The id-level rewriting pipeline inverts it to hand id-CQ branches to
/// `rps_query::PreparedQueryIds` without a decode / re-intern round
/// trip.
pub fn graph_as_tt_mapped(
    graph: &Graph,
    enc: &mut Encoder,
) -> (Instance, Vec<Option<rps_tgd::ValId>>) {
    let mut inst = Instance::new();
    let tt = inst.intern_pred(&Sym::from("tt"));
    // Encode and intern each distinct RDF term once; rows are assembled
    // from interned value ids.
    let mut memo: Vec<Option<rps_tgd::ValId>> = vec![None; graph.dict().len()];
    let mut map = |id: rps_rdf::TermId, inst: &mut Instance| match memo[id.index()] {
        Some(v) => v,
        None => {
            let v = inst.intern_value(&enc.encode(graph.term(id)));
            memo[id.index()] = Some(v);
            v
        }
    };
    for t in graph.iter_ids() {
        let row = [
            map(t.s, &mut inst),
            map(t.p, &mut inst),
            map(t.o, &mut inst),
        ];
        inst.insert_row(tt, Box::new(row));
    }
    (inst, memo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peer::Peer;
    use crate::system::RpsBuilder;
    use crate::PeerId;
    use rps_query::Variable;

    #[test]
    fn term_roundtrip() {
        let mut enc = Encoder::new();
        for t in [
            Term::iri("http://e/a"),
            Term::literal("39"),
            Term::Literal(rps_rdf::Literal::lang("x", "en")),
            Term::Literal(rps_rdf::Literal::typed(
                "5",
                rps_rdf::Iri::new("http://www.w3.org/2001/XMLSchema#integer"),
            )),
            Term::blank("b1"),
        ] {
            let g = enc.encode(&t);
            assert_eq!(enc.decode(&g), t, "roundtrip failed for {t}");
        }
    }

    #[test]
    fn blank_encoding_is_stable() {
        let mut enc = Encoder::new();
        let a1 = enc.encode(&Term::blank("x"));
        let a2 = enc.encode(&Term::blank("x"));
        let b = enc.encode(&Term::blank("y"));
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert!(a1.is_null());
    }

    #[test]
    fn iri_literal_namespaces_disjoint() {
        let mut enc = Encoder::new();
        let i = enc.encode(&Term::iri("39"));
        let l = enc.encode(&Term::literal("39"));
        assert_ne!(i, l);
    }

    fn sample_system() -> RdfPeerSystem {
        let mut a = PeerId(0);
        let mut b = PeerId(0);
        let premise = GraphPatternQuery::new(
            vec![Variable::new("x"), Variable::new("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://b/actor"),
                TermOrVar::var("y"),
            ),
        );
        let conclusion = GraphPatternQuery::new(
            vec![Variable::new("x"), Variable::new("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://a/starring"),
                TermOrVar::var("z"),
            )
            .and(GraphPattern::triple(
                TermOrVar::var("z"),
                TermOrVar::iri("http://a/artist"),
                TermOrVar::var("y"),
            )),
        );
        RpsBuilder::new()
            .peer_turtle(
                "A",
                "<http://a/f> <http://a/starring> _:c .\n_:c <http://a/artist> <http://a/p1> .",
                &mut a,
            )
            .unwrap()
            .peer_turtle("B", "<http://b/g> <http://b/actor> <http://b/p2> .", &mut b)
            .unwrap()
            .assertion(b, a, premise, conclusion)
            .unwrap()
            .equivalence("http://a/p1", "http://b/p2")
            .build()
    }

    #[test]
    fn encoding_shapes() {
        let de = encode_system(&sample_system());
        assert_eq!(de.source_to_target.len(), 2);
        // 1 GMA + 6 equivalence TGDs.
        assert_eq!(de.target.len(), 7);
        assert_eq!(de.mapping_tgds_unguarded.len(), 1);
        // ts facts = 3 triples; rs facts cover names only (blank is null).
        assert_eq!(de.source.relation_size("ts"), 3);
        assert!(de.source.relation_size("rs") >= 5);
        // Guarded GMA TGD has rt atoms; unguarded does not.
        let guarded = &de.target[0];
        assert!(guarded.body().iter().any(|a| a.pred.as_ref() == "rt"));
        assert!(de.mapping_tgds_unguarded[0]
            .body()
            .iter()
            .all(|a| a.pred.as_ref() == "tt"));
    }

    #[test]
    fn equivalence_tgds_are_linear_and_sticky() {
        // Paper Section 4: "the set E of TGDs for equivalence mappings
        // enjoys the sticky property of the chase, as well as linearity."
        let de = encode_system(&sample_system());
        let eq_tgds: Vec<Tgd> = de.target[1..].to_vec();
        assert!(rps_tgd::is_linear(&eq_tgds));
        assert!(rps_tgd::is_sticky(&eq_tgds));
    }

    #[test]
    fn relational_chase_agrees_with_rps_chase() {
        use crate::chase::{chase_system, RpsChaseConfig};
        let sys = sample_system();
        let de = encode_system(&sys);

        // Chase relationally.
        let mut all_tgds = de.source_to_target.clone();
        all_tgds.extend(de.target.clone());
        let r = rps_tgd::chase(
            de.source.clone(),
            &all_tgds,
            &rps_tgd::ChaseConfig::default(),
            1_000_000,
        );
        assert!(r.is_complete());

        // Chase at the RDF level.
        let sol = chase_system(&sys, &RpsChaseConfig::default());
        assert!(sol.complete);

        // Compare certain answers of the paper-style CQ on both sides.
        let q = GraphPatternQuery::new(
            vec![Variable::new("x"), Variable::new("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://a/starring"),
                TermOrVar::var("z"),
            )
            .and(GraphPattern::triple(
                TermOrVar::var("z"),
                TermOrVar::iri("http://a/artist"),
                TermOrVar::var("y"),
            )),
        );
        let mut enc = de.encoder.clone();
        let cq = query_to_cq(&q, &mut enc, false);
        let rel_answers = cq.evaluate(&r.instance, true);
        let rdf_answers = rps_query::evaluate_query(&sol.graph, &q, rps_query::Semantics::Certain);
        let decoded: std::collections::BTreeSet<Vec<Term>> = rel_answers
            .iter()
            .map(|row| row.iter().map(|g| enc.decode(g)).collect())
            .collect();
        assert_eq!(decoded, rdf_answers);
    }

    #[test]
    fn graph_as_tt_counts() {
        let g = rps_rdf::turtle::parse("<a> <p> <b> .\n_:x <p> <b> .").unwrap();
        let mut enc = Encoder::new();
        let inst = graph_as_tt(&g, &mut enc);
        assert_eq!(inst.relation_size("tt"), 2);
        assert_eq!(inst.null_count(), 1);
    }

    #[test]
    fn stored_database_via_peer() {
        let mut sys = RdfPeerSystem::new();
        sys.add_peer(Peer::from_database(
            "p",
            rps_rdf::turtle::parse("<a> <p> \"lit\" .").unwrap(),
        ));
        let de = encode_system(&sys);
        // Literal object gets an rs fact too (it is a "name").
        assert_eq!(de.source.relation_size("rs"), 3);
    }
}
