//! The unified answering API: [`Session`], [`PreparedQuery`] and
//! [`AnswerStream`].
//!
//! The RPS model has one conceptual operation — answer a conjunctive
//! query over a peer system under a chosen strategy and semantics — and
//! this module is its single façade. A [`Session`] owns a validated
//! [`RdfPeerSystem`] plus an [`EngineConfig`] and caches every heavy
//! artefact (universal solution, rewriter, Datalog program) across
//! queries. [`Session::prepare`] compiles a query **once** — route
//! resolution, canonical UCQ rewriting, id-level plan compilation — into
//! a [`PreparedQuery`] that [`Session::execute`] can run repeatedly.
//! Results come back as a streaming [`AnswerStream`] that decodes
//! id-level tuples lazily instead of materialising term vectors up
//! front, and every failure is a typed [`RpsError`].
//!
//! Everything below the façade runs on the `rps_rdf` triple store: the
//! materialise route chases into a [`rps_rdf::Graph`] (sorted-run
//! storage by default — see `rps_rdf::store`), the rewrite and Datalog
//! routes evaluate their UCQs over it, and the id-level plans compiled
//! here are `rps_query::PreparedQueryIds` range scans against its
//! permutation indexes.
//!
//! The federated counterpart with the same vocabulary lives in
//! `rps-p2p` (`FederatedSession`), which reuses this module's
//! [`AnswerStream`], [`EngineConfig`], [`ExecRoute`] and [`RpsError`].
//!
//! ```
//! use rps_core::{EngineConfig, ExecRoute, PeerId, RpsBuilder, Session};
//! use rps_query::{GraphPattern, GraphPatternQuery, TermOrVar, Variable};
//!
//! // Two peers; peer B's `actor` facts imply peer A's `cast` facts.
//! let (mut a, mut b) = (PeerId(0), PeerId(0));
//! let premise = GraphPatternQuery::new(
//!     vec![Variable::new("x"), Variable::new("y")],
//!     GraphPattern::triple(
//!         TermOrVar::var("x"),
//!         TermOrVar::iri("http://b/actor"),
//!         TermOrVar::var("y"),
//!     ),
//! );
//! let conclusion = GraphPatternQuery::new(
//!     vec![Variable::new("x"), Variable::new("y")],
//!     GraphPattern::triple(
//!         TermOrVar::var("x"),
//!         TermOrVar::iri("http://a/cast"),
//!         TermOrVar::var("y"),
//!     ),
//! );
//! let system = RpsBuilder::new()
//!     .peer_turtle("A", "<http://a/f1> <http://a/cast> <http://a/p1> .", &mut a)
//!     .unwrap()
//!     .peer_turtle("B", "<http://b/f2> <http://b/actor> <http://b/p2> .", &mut b)
//!     .unwrap()
//!     .assertion(b, a, premise, conclusion)
//!     .unwrap()
//!     .build();
//!
//! let mut session = Session::open(system, EngineConfig::default()).unwrap();
//! let query = GraphPatternQuery::new(
//!     vec![Variable::new("x"), Variable::new("y")],
//!     GraphPattern::triple(
//!         TermOrVar::var("x"),
//!         TermOrVar::iri("http://a/cast"),
//!         TermOrVar::var("y"),
//!     ),
//! );
//! // Prepare once, execute as often as needed.
//! let prepared = session.prepare(&query).unwrap();
//! let stream = session.execute(&prepared).unwrap();
//! assert_eq!(stream.route(), ExecRoute::Rewritten); // linear ⇒ Proposition 2
//! let answers: Vec<_> = stream.collect();
//! assert_eq!(answers.len(), 2);
//! ```

use crate::answers::AnswerSet;
use crate::chase::{chase_system, RpsChaseConfig, UniversalSolution};
use crate::datalog_route::DatalogEngine;
use crate::equivalence::EquivalenceIndex;
use crate::error::RpsError;
use crate::rewriting::{RewrittenBranch, RpsRewriter};
use crate::system::RdfPeerSystem;
use rps_query::{GraphPatternQuery, JoinOrder, PreparedQueryIds, Semantics};
use rps_rdf::{Graph, SealConfig, Term, TermId};
use rps_tgd::RewriteConfig;
use std::collections::BTreeSet;
use std::sync::Arc;

pub mod frozen;
pub use frozen::{
    canonical_plan_key, FrozenSession, PlanCache, PlanCacheStats, DEFAULT_PLAN_CACHE_CAPACITY,
};

/// Query-answering strategy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Strategy {
    /// Materialise the universal solution once (Algorithm 1) and evaluate
    /// queries over it. Amortises well under high query rates.
    Materialise,
    /// Rewrite each query into a UCQ over the sources (Proposition 2).
    /// No materialisation; pays per query.
    Rewrite,
    /// Saturate the sources with a semi-naive Datalog fixpoint (future
    /// work item 1). Requires full graph mapping assertions; covers the
    /// systems Proposition 3 puts beyond FO rewriting.
    Datalog,
    /// Use rewriting when the mapping TGDs are FO-rewritable, otherwise
    /// materialise.
    #[default]
    Auto,
}

/// How a prepared query actually executes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecRoute {
    /// Evaluated over a materialised universal solution.
    Materialised,
    /// Evaluated through a (complete) UCQ rewriting.
    Rewritten,
    /// Evaluated over a semi-naive Datalog least model.
    Datalog,
    /// Evaluated federatedly over the peers (see `rps-p2p`).
    Federated,
}

/// The one configuration object of the answering stack: strategy,
/// result semantics, and the chase/rewriting budgets that used to be
/// plumbed separately through every entry point.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Route selection policy.
    pub strategy: Strategy,
    /// Result semantics (`Q_D` drops blank-node tuples, `Q*_D` keeps
    /// them). `Q*` is only available through the materialised route.
    pub semantics: Semantics,
    /// Chase budgets for the materialised route.
    pub chase: RpsChaseConfig,
    /// Rewriting budgets for the rewritten route.
    pub rewrite: RewriteConfig,
    /// Retry policy for federated peer exchanges (attempt bound,
    /// deterministic-jitter backoff, per-peer deadline budget). Read by
    /// the federated sessions in `rps-p2p`; the local routes never talk
    /// to a network and ignore it.
    pub retry: crate::fault::RetryPolicy,
    /// What a federated execution does when a peer stays unreachable
    /// after the retries. Ignored by the local routes, like
    /// [`EngineConfig::retry`].
    pub failure: crate::fault::FailurePolicy,
    /// Physical execution knobs: worker count and morsel size for
    /// parallel scans, shard count and compression for sealed graphs.
    pub exec: ExecConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            strategy: Strategy::default(),
            semantics: Semantics::Certain,
            chase: RpsChaseConfig::default(),
            rewrite: RewriteConfig::default(),
            retry: crate::fault::RetryPolicy::default(),
            failure: crate::fault::FailurePolicy::default(),
            exec: ExecConfig::default(),
        }
    }
}

impl EngineConfig {
    /// Sets the strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the result semantics.
    pub fn with_semantics(mut self, semantics: Semantics) -> Self {
        self.semantics = semantics;
        self
    }

    /// Overrides the chase budgets.
    pub fn with_chase(mut self, chase: RpsChaseConfig) -> Self {
        self.chase = chase;
        self
    }

    /// Overrides the rewriting budgets.
    pub fn with_rewrite(mut self, rewrite: RewriteConfig) -> Self {
        self.rewrite = rewrite;
        self
    }

    /// Overrides the federated retry policy.
    pub fn with_retry(mut self, retry: crate::fault::RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Overrides the federated failure policy.
    pub fn with_failure(mut self, failure: crate::fault::FailurePolicy) -> Self {
        self.failure = failure;
        self
    }

    /// Overrides the physical execution knobs.
    pub fn with_exec(mut self, exec: ExecConfig) -> Self {
        self.exec = exec;
        self
    }
}

/// Physical execution configuration: how the logical plans of this
/// module actually touch the triple store. Orthogonal to the *answer*
/// configuration ([`Strategy`], [`Semantics`], budgets): any setting
/// here yields byte-identical answers — it only changes wall-clock time
/// and resident bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker threads for morsel-driven scans. `0` = auto (available
    /// parallelism). `1` forces the sequential path.
    pub workers: usize,
    /// Driver tuples per morsel; workers claim morsels from a shared
    /// counter (work stealing). Smaller morsels balance better, larger
    /// ones amortise dispatch.
    pub morsel_size: usize,
    /// Subject-hash shard count frozen graphs are sealed into. `0` =
    /// auto (available parallelism), `1` = a single unsharded run per
    /// permutation. The `RPS_SHARDS` environment variable overrides
    /// this (used by CI to force a fixed shard count).
    pub shards: usize,
    /// Encode sealed runs as delta-varint columnar blocks when they are
    /// large enough to benefit.
    pub compress: bool,
    /// Join-order policy for id-level plans. [`JoinOrder::Auto`] uses
    /// the stats-driven cost model whenever the graph is sealed (and
    /// therefore carries a [`rps_rdf::GraphStats`] snapshot), falling
    /// back to the shape heuristic otherwise; the other variants force
    /// one path for A/B comparison. Like every knob here, the choice
    /// never changes answers — only the order conjuncts are probed in.
    pub order: JoinOrder,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            workers: 0,
            morsel_size: 1024,
            shards: 0,
            compress: false,
            order: JoinOrder::Auto,
        }
    }
}

impl ExecConfig {
    /// The worker count after resolving `0` to available parallelism.
    pub fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// The shard count after the `RPS_SHARDS` override and resolving
    /// `0` to available parallelism.
    pub fn resolved_shards(&self) -> usize {
        if let Ok(v) = std::env::var("RPS_SHARDS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        if self.shards > 0 {
            return self.shards;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// The [`SealConfig`] a frozen graph should be resealed with.
    pub fn seal_config(&self) -> SealConfig {
        SealConfig {
            shards: self.resolved_shards(),
            compress: self.compress,
            ..SealConfig::default()
        }
    }

    /// Whether freezing should physically reseal the solution graph
    /// (sharding and/or compression requested).
    pub fn wants_reseal(&self) -> bool {
        self.resolved_shards() > 1 || self.compress
    }
}

/// The compiled execution plan of a [`PreparedQuery`].
enum Plan {
    /// Id-level plan against a (frozen) universal solution. Holding the
    /// solution here makes repeated execution and lazy answer decoding
    /// independent of the session's own cache.
    Materialised {
        solution: Arc<UniversalSolution>,
        plan: PreparedQueryIds,
    },
    /// A complete canonical UCQ rewriting, compiled once into id-level
    /// branch plans over the rewriter's canonical stored graph (no
    /// per-execution pattern decoding or term re-interning). The sealed
    /// canonical graph travels with the plan, so execution never needs
    /// the rewriter back.
    Rewritten {
        graph: Arc<Graph>,
        branches: Vec<RewrittenBranch>,
    },
    /// Evaluated through the session's cached Datalog engine.
    Datalog,
}

/// A query compiled once against a [`Session`] — route resolved,
/// result semantics captured, rewriting expanded, id-level pattern plan
/// built — and executable any number of times with [`Session::execute`]
/// *on the session that prepared it* (compiled plans reference that
/// session's caches; execution elsewhere returns
/// [`RpsError::SessionMismatch`]).
pub struct PreparedQuery {
    session_id: u64,
    /// The session's configuration generation at prepare time; a later
    /// [`Session::config_mut`] bumps the session's counter, making this
    /// plan stale ([`RpsError::StalePlan`] at execute).
    generation: u32,
    query: GraphPatternQuery,
    route: ExecRoute,
    semantics: Semantics,
    rewrite_fell_back: bool,
    plan: Plan,
}

impl PreparedQuery {
    /// The route this query will execute through.
    pub fn route(&self) -> ExecRoute {
        self.route
    }

    /// `true` iff the `Auto` strategy attempted the rewrite route but
    /// the expansion exhausted its budgets, so this query was compiled
    /// against the materialised solution instead. The answers are still
    /// exact — this flag only explains the route change. An explicit
    /// [`Strategy::Rewrite`] reports the same condition as the typed
    /// [`RpsError::RewriteBudget`] instead of falling back.
    pub fn rewrite_fell_back(&self) -> bool {
        self.rewrite_fell_back
    }

    /// The result semantics this query was compiled under. Captured at
    /// prepare time; a later [`Session::config_mut`] call marks the plan
    /// stale ([`RpsError::StalePlan`] at execute) rather than letting it
    /// silently diverge from the active configuration.
    pub fn semantics(&self) -> Semantics {
        self.semantics
    }

    /// The source query.
    pub fn query(&self) -> &GraphPatternQuery {
        &self.query
    }

    /// Number of *compiled* UCQ branch plans when the route is
    /// [`ExecRoute::Rewritten`] — what execution actually runs (branches
    /// whose head was specialised to a labelled null are dropped at
    /// compile time, so this can be below the rewriting's union size).
    pub fn branch_count(&self) -> Option<usize> {
        match &self.plan {
            Plan::Rewritten { branches, .. } => Some(branches.len()),
            _ => None,
        }
    }
}

/// A streaming iterator over answer tuples.
///
/// Id-level results (the materialised route) are decoded to [`Term`]s
/// lazily, one tuple per `next()` call, instead of materialising the
/// whole answer vector up front; already-decoded results pass through.
/// The stream reports the [`ExecRoute`] taken and the projection
/// variables, and can be collected into an [`AnswerSet`] with
/// [`AnswerStream::into_set`].
pub struct AnswerStream {
    vars: Vec<String>,
    route: ExecRoute,
    inner: StreamInner,
}

enum StreamInner {
    Ids {
        solution: Arc<UniversalSolution>,
        iter: std::collections::btree_set::IntoIter<Vec<TermId>>,
    },
    Terms(std::collections::btree_set::IntoIter<Vec<Term>>),
}

impl AnswerStream {
    /// A stream over id-level tuples, decoded lazily against the
    /// solution's dictionary.
    pub(crate) fn from_ids(
        vars: Vec<String>,
        route: ExecRoute,
        solution: Arc<UniversalSolution>,
        tuples: BTreeSet<Vec<TermId>>,
    ) -> Self {
        AnswerStream {
            vars,
            route,
            inner: StreamInner::Ids {
                solution,
                iter: tuples.into_iter(),
            },
        }
    }

    /// A stream over already-decoded tuples. Building block for
    /// alternative executors (the federated engine in `rps-p2p`).
    pub fn from_terms(vars: Vec<String>, route: ExecRoute, tuples: BTreeSet<Vec<Term>>) -> Self {
        AnswerStream {
            vars,
            route,
            inner: StreamInner::Terms(tuples.into_iter()),
        }
    }

    /// The projection variable names, in tuple order.
    pub fn vars(&self) -> &[String] {
        &self.vars
    }

    /// The route the execution took.
    pub fn route(&self) -> ExecRoute {
        self.route
    }

    /// Drains the stream into an [`AnswerSet`].
    pub fn into_set(self) -> AnswerSet {
        let vars = self.vars.clone();
        AnswerSet {
            vars,
            tuples: self.collect(),
        }
    }
}

impl Iterator for AnswerStream {
    type Item = Vec<Term>;

    fn next(&mut self) -> Option<Vec<Term>> {
        match &mut self.inner {
            StreamInner::Ids { solution, iter } => iter.next().map(|ids| {
                ids.iter()
                    .map(|&id| solution.graph.term(id).clone())
                    .collect()
            }),
            StreamInner::Terms(iter) => iter.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.inner {
            StreamInner::Ids { iter, .. } => iter.size_hint(),
            StreamInner::Terms(iter) => iter.size_hint(),
        }
    }
}

impl ExactSizeIterator for AnswerStream {}

/// A process-unique token identifying the session a prepared query was
/// compiled against. Compiled plans are only meaningful relative to
/// their session's caches and dictionaries, so execution on a different
/// session is rejected with [`RpsError::SessionMismatch`].
pub(crate) fn next_session_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// The projection variable names of a query, in tuple order.
pub(crate) fn stream_vars(query: &GraphPatternQuery) -> Vec<String> {
    query
        .free_vars()
        .iter()
        .map(|v| v.name().to_string())
        .collect()
}

/// Executes a materialised or rewritten plan. Everything this touches —
/// the `Arc`ed solution, the sealed canonical graph carried by the plan,
/// the equivalence index — is immutable, so both the mutable [`Session`]
/// and the shared [`crate::FrozenSession`] route through here (the
/// latter concurrently from many threads).
pub(crate) fn execute_plan(
    prepared: &PreparedQuery,
    eq_index: &EquivalenceIndex,
    exec: &ExecConfig,
) -> Result<AnswerStream, RpsError> {
    let vars = stream_vars(&prepared.query);
    let workers = exec.resolved_workers();
    match &prepared.plan {
        Plan::Materialised { solution, plan } => {
            let ids = plan.evaluate_parallel(
                &solution.graph,
                prepared.semantics,
                workers,
                exec.morsel_size,
            );
            Ok(AnswerStream::from_ids(
                vars,
                ExecRoute::Materialised,
                solution.clone(),
                ids,
            ))
        }
        Plan::Rewritten { graph, branches } => {
            // Each branch is a prepared id-level plan over the sealed
            // canonical stored graph. All-variable-head branches (the
            // common shape) union at the id level first, so cross-branch
            // duplicates are deduplicated before any term is decoded;
            // only branches whose head injects a rewriting-specialised
            // constant decode per distinct branch row.
            let mut id_union: BTreeSet<Vec<TermId>> = BTreeSet::new();
            let mut tuples: BTreeSet<Vec<Term>> = BTreeSet::new();
            for branch in branches {
                let rows = branch.plan.evaluate_parallel(
                    graph,
                    Semantics::Certain,
                    workers,
                    exec.morsel_size,
                );
                if branch.head.iter().all(Option::is_none) {
                    id_union.extend(rows);
                    continue;
                }
                for row in rows {
                    let mut vals = row.into_iter();
                    let tuple: Vec<Term> = branch
                        .head
                        .iter()
                        .map(|slot| match slot {
                            Some(term) => term.clone(),
                            None => graph
                                .term(vals.next().expect("one id per projected position"))
                                .clone(),
                        })
                        .collect();
                    tuples.insert(tuple);
                }
            }
            for row in id_union {
                tuples.insert(row.iter().map(|&id| graph.term(id).clone()).collect());
            }
            let expanded = crate::equivalence::expand_answers(&tuples, eq_index);
            Ok(AnswerStream::from_terms(
                vars,
                ExecRoute::Rewritten,
                expanded,
            ))
        }
        Plan::Datalog => unreachable!("Datalog plans execute through their engine"),
    }
}

/// The unified answering façade: one system, one configuration, cached
/// heavy state, typed errors. See the [module docs](self) for an
/// end-to-end example.
pub struct Session {
    id: u64,
    system: RdfPeerSystem,
    config: EngineConfig,
    /// Bumped by every [`Session::config_mut`] call; prepared queries
    /// are stamped with the generation they were compiled under, so a
    /// post-prepare config change surfaces as [`RpsError::StalePlan`]
    /// instead of silently executing a plan the new configuration would
    /// not have produced.
    generation: u32,
    eq_index: EquivalenceIndex,
    solution: Option<Arc<UniversalSolution>>,
    /// The chase budgets the cached (possibly incomplete) solution was
    /// computed under; a later budget change invalidates an incomplete
    /// cache without re-chasing on every call under unchanged budgets.
    solution_budgets: Option<RpsChaseConfig>,
    rewriter: Option<RpsRewriter>,
    datalog: Option<DatalogEngine>,
}

impl Session {
    /// Builds a session after validating the system. This is the
    /// preferred entry point: schema violations surface here as
    /// [`RpsError::Validation`] instead of as wrong answers later.
    pub fn open(system: RdfPeerSystem, config: EngineConfig) -> Result<Self, RpsError> {
        system.validate()?;
        Ok(Self::new(system, config))
    }

    /// Builds a session without validating the system (for callers that
    /// constructed the system programmatically and validated it already).
    pub fn new(system: RdfPeerSystem, config: EngineConfig) -> Self {
        let eq_index = EquivalenceIndex::from_mappings(system.equivalences());
        Session {
            id: next_session_id(),
            system,
            config,
            generation: 0,
            eq_index,
            solution: None,
            solution_budgets: None,
            rewriter: None,
            datalog: None,
        }
    }

    /// The underlying system.
    pub fn system(&self) -> &RdfPeerSystem {
        &self.system
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Mutable access to the configuration. Changes apply to queries
    /// prepared afterwards; queries prepared *before* the change are
    /// marked stale and report [`RpsError::StalePlan`] when executed —
    /// their compiled route, semantics and budgets may no longer match
    /// the active configuration, and silently running them was a
    /// long-standing footgun. Re-prepare after reconfiguring.
    pub fn config_mut(&mut self) -> &mut EngineConfig {
        self.generation += 1;
        &mut self.config
    }

    /// The current configuration generation (bumped by every
    /// [`Session::config_mut`] call; prepared queries record the
    /// generation they were compiled under).
    pub fn config_generation(&self) -> u32 {
        self.generation
    }

    /// The union-find index over the system's equivalence mappings.
    pub fn equivalence_index(&self) -> &EquivalenceIndex {
        &self.eq_index
    }

    /// The materialised universal solution, chasing on first use.
    /// Returns [`RpsError::ChaseBudget`] if the chase could not reach a
    /// fixpoint within the configured budgets — an incomplete solution is
    /// unsound to answer over. An incomplete cached solution is not
    /// sticky: after raising [`EngineConfig::chase`] the next call
    /// re-runs the chase under the new budgets (retries under unchanged
    /// budgets reuse the cached outcome instead of re-chasing).
    pub fn universal_solution(&mut self) -> Result<Arc<UniversalSolution>, RpsError> {
        if self.solution.as_ref().is_some_and(|s| !s.complete)
            && self.solution_budgets.as_ref() != Some(&self.config.chase)
        {
            self.solution = None;
        }
        let sol = self.universal_solution_lenient();
        if !sol.complete {
            return Err(RpsError::ChaseBudget {
                rounds: sol.stats.rounds,
                triples: sol.graph.len(),
            });
        }
        Ok(sol)
    }

    /// The universal solution without the completeness check — the
    /// compatibility path for the deprecated [`crate::RpsEngine`] shim,
    /// which historically returned answers over incomplete solutions.
    pub(crate) fn universal_solution_lenient(&mut self) -> Arc<UniversalSolution> {
        if self.solution.is_none() {
            self.solution = Some(Arc::new(chase_system(&self.system, &self.config.chase)));
            self.solution_budgets = Some(self.config.chase.clone());
        }
        self.solution.as_ref().expect("just materialised").clone()
    }

    /// The already-materialised solution, if any (shim support).
    pub(crate) fn cached_solution(&self) -> Option<&UniversalSolution> {
        self.solution.as_deref()
    }

    /// The cached rewriter, built on first use.
    pub(crate) fn rewriter_mut(&mut self) -> &mut RpsRewriter {
        if self.rewriter.is_none() {
            self.rewriter = Some(RpsRewriter::new(&self.system));
        }
        self.rewriter.as_mut().expect("just built")
    }

    /// Resolves the route a fresh preparation of a query would take.
    fn resolve_route(&mut self) -> Result<ExecRoute, RpsError> {
        let star = self.config.semantics == Semantics::Star;
        match self.config.strategy {
            Strategy::Materialise => Ok(ExecRoute::Materialised),
            Strategy::Rewrite if star => Err(RpsError::StarNeedsMaterialisation),
            Strategy::Datalog if star => Err(RpsError::StarNeedsMaterialisation),
            Strategy::Rewrite => Ok(ExecRoute::Rewritten),
            Strategy::Datalog => Ok(ExecRoute::Datalog),
            Strategy::Auto => {
                if !star && self.rewriter_mut().fo_rewritable() {
                    Ok(ExecRoute::Rewritten)
                } else {
                    Ok(ExecRoute::Materialised)
                }
            }
        }
    }

    fn prepare_materialised(&mut self, query: &GraphPatternQuery) -> Result<Plan, RpsError> {
        let solution = self.universal_solution()?;
        // The solution is frozen, so the plan compiles against it without
        // interning (unknown constants are simply unsatisfiable).
        let plan =
            PreparedQueryIds::compile_only_with(&solution.graph, query, self.config.exec.order);
        Ok(Plan::Materialised { solution, plan })
    }

    /// Compiles a query once — route resolution, canonical UCQ rewriting
    /// (id-level, subsumption-pruned) and per-branch plan compilation
    /// over the canonical stored graph, or an id-level plan against the
    /// materialised solution — into a [`PreparedQuery`] for repeated
    /// execution.
    ///
    /// An incomplete rewriting (budget exhaustion, non-FO-rewritable
    /// mappings) is unsound to trust. Under the explicit
    /// [`Strategy::Rewrite`] it is reported as the typed
    /// [`RpsError::RewriteBudget`]; under [`Strategy::Auto`] preparation
    /// falls back to the materialised route (which is exact) and records
    /// the fact on [`PreparedQuery::rewrite_fell_back`].
    pub fn prepare(&mut self, query: &GraphPatternQuery) -> Result<PreparedQuery, RpsError> {
        let route = self.resolve_route()?;
        let (route, rewrite_fell_back, plan) = match route {
            ExecRoute::Materialised | ExecRoute::Federated => (
                ExecRoute::Materialised,
                false,
                self.prepare_materialised(query)?,
            ),
            ExecRoute::Rewritten => {
                let cfg = self.config.rewrite.clone();
                let rewriting = self.rewriter_mut().rewrite_canonical(query, &cfg);
                if rewriting.complete {
                    let rewriter = self.rewriter_mut();
                    let branches = rewriter.compile_branches(&rewriting);
                    let graph = rewriter.canon_graph_arc();
                    (
                        ExecRoute::Rewritten,
                        false,
                        Plan::Rewritten { graph, branches },
                    )
                } else if self.config.strategy == Strategy::Rewrite {
                    return Err(RpsError::RewriteBudget {
                        explored: rewriting.explored,
                        max_depth: cfg.max_depth,
                        max_cqs: cfg.max_cqs,
                    });
                } else {
                    (
                        ExecRoute::Materialised,
                        true,
                        self.prepare_materialised(query)?,
                    )
                }
            }
            ExecRoute::Datalog => {
                if self.datalog.is_none() {
                    self.datalog = Some(DatalogEngine::new(&self.system)?);
                }
                (ExecRoute::Datalog, false, Plan::Datalog)
            }
        };
        Ok(PreparedQuery {
            session_id: self.id,
            generation: self.generation,
            query: query.clone(),
            route,
            semantics: self.config.semantics,
            rewrite_fell_back,
            plan,
        })
    }

    /// Executes a prepared query, returning a streaming answer iterator.
    /// The query must have been prepared by *this* session
    /// ([`RpsError::SessionMismatch`] otherwise) under the session's
    /// *current* configuration ([`RpsError::StalePlan`] after a
    /// [`Session::config_mut`] call — re-prepare first).
    pub fn execute(&mut self, prepared: &PreparedQuery) -> Result<AnswerStream, RpsError> {
        if prepared.session_id != self.id {
            return Err(RpsError::SessionMismatch);
        }
        if prepared.generation != self.generation {
            return Err(RpsError::StalePlan {
                prepared: prepared.generation,
                current: self.generation,
            });
        }
        match &prepared.plan {
            Plan::Datalog => {
                let engine = self.datalog.as_mut().expect("datalog built at prepare");
                let ans = engine.answers(&prepared.query);
                Ok(AnswerStream::from_terms(
                    stream_vars(&prepared.query),
                    ExecRoute::Datalog,
                    ans.tuples,
                ))
            }
            _ => execute_plan(prepared, &self.eq_index, &self.config.exec),
        }
    }

    /// Prepares and executes in one call. Prefer [`Session::prepare`] +
    /// [`Session::execute`] when the same query runs repeatedly.
    pub fn answer(&mut self, query: &GraphPatternQuery) -> Result<AnswerStream, RpsError> {
        let prepared = self.prepare(query)?;
        self.execute(&prepared)
    }

    /// Like [`Session::answer`], but drains the stream into an
    /// [`AnswerSet`] and removes equivalence-induced redundancy
    /// (Listing 1's "Result without redundancy").
    pub fn answer_without_redundancy(
        &mut self,
        query: &GraphPatternQuery,
    ) -> Result<AnswerSet, RpsError> {
        let set = self.answer(query)?.into_set();
        Ok(set.without_redundancy(&self.eq_index))
    }

    /// The Example 3 decision procedure through the façade: is `tuple` a
    /// certain answer of `query`? Returns [`RpsError::Arity`] instead of
    /// panicking on a malformed tuple.
    pub fn is_certain_answer(
        &mut self,
        query: &GraphPatternQuery,
        tuple: &[Term],
    ) -> Result<bool, RpsError> {
        if tuple.len() != query.arity() {
            return Err(RpsError::Arity {
                expected: query.arity(),
                got: tuple.len(),
            });
        }
        let cfg = self.config.rewrite.clone();
        Ok(self.rewriter_mut().is_certain_answer(query, tuple, &cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::RpsBuilder;
    use crate::PeerId;
    use rps_query::{GraphPattern, TermOrVar, Variable};

    fn v(n: &str) -> Variable {
        Variable::new(n)
    }

    fn linear_system() -> RdfPeerSystem {
        let mut a = PeerId(0);
        let mut b = PeerId(0);
        let premise = GraphPatternQuery::new(
            vec![v("x"), v("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://b/actor"),
                TermOrVar::var("y"),
            ),
        );
        let conclusion = GraphPatternQuery::new(
            vec![v("x"), v("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://a/cast"),
                TermOrVar::var("y"),
            ),
        );
        RpsBuilder::new()
            .peer_turtle("A", "<http://a/f1> <http://a/cast> <http://a/p1> .", &mut a)
            .unwrap()
            .peer_turtle(
                "B",
                "<http://b/f2> <http://b/actor> <http://b/p2> .",
                &mut b,
            )
            .unwrap()
            .assertion(b, a, premise, conclusion)
            .unwrap()
            .equivalence("http://a/p1", "http://b/p2")
            .build()
    }

    fn cast_query() -> GraphPatternQuery {
        GraphPatternQuery::new(
            vec![v("x"), v("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://a/cast"),
                TermOrVar::var("y"),
            ),
        )
    }

    #[test]
    fn routes_agree_on_linear_system() {
        let sys = linear_system();
        let mut mat = Session::open(
            sys.clone(),
            EngineConfig::default().with_strategy(Strategy::Materialise),
        )
        .unwrap();
        let mut rew = Session::open(
            sys,
            EngineConfig::default().with_strategy(Strategy::Rewrite),
        )
        .unwrap();
        let m = mat.answer(&cast_query()).unwrap();
        assert_eq!(m.route(), ExecRoute::Materialised);
        let r = rew.answer(&cast_query()).unwrap();
        assert_eq!(r.route(), ExecRoute::Rewritten);
        assert_eq!(m.into_set().tuples, r.into_set().tuples);
    }

    #[test]
    fn prepared_queries_execute_repeatedly() {
        let mut s = Session::open(linear_system(), EngineConfig::default()).unwrap();
        let prepared = s.prepare(&cast_query()).unwrap();
        assert_eq!(prepared.route(), ExecRoute::Rewritten);
        assert!(prepared.branch_count().unwrap() >= 2);
        let first = s.execute(&prepared).unwrap().into_set();
        let second = s.execute(&prepared).unwrap().into_set();
        assert_eq!(first.tuples, second.tuples);
        assert_eq!(first.len(), 4);
    }

    #[test]
    fn stream_is_lazy_and_exact_sized() {
        let mut s = Session::open(
            linear_system(),
            EngineConfig::default().with_strategy(Strategy::Materialise),
        )
        .unwrap();
        let mut stream = s.answer(&cast_query()).unwrap();
        let n = stream.len();
        assert_eq!(n, 4);
        assert!(stream.next().is_some());
        assert_eq!(stream.len(), n - 1);
        assert_eq!(stream.vars(), &["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn chase_budget_is_a_typed_error() {
        let sys = crate::datalog_route::tests_support::transitive_system(12);
        let mut s = Session::new(
            sys,
            EngineConfig::default()
                .with_strategy(Strategy::Materialise)
                .with_chase(RpsChaseConfig {
                    max_rounds: 1,
                    max_triples: 10_000,
                    ..RpsChaseConfig::default()
                }),
        );
        let err = s.answer(&crate::datalog_route::tests_support::edge_query());
        assert!(matches!(err, Err(RpsError::ChaseBudget { .. })));
        // The incomplete solution is not sticky: raising the budget and
        // retrying re-chases and succeeds, as the error message advises.
        s.config_mut().chase = RpsChaseConfig::default();
        let stream = s
            .answer(&crate::datalog_route::tests_support::edge_query())
            .unwrap();
        assert_eq!(stream.len(), 13 * 12 / 2);
    }

    #[test]
    fn exhausted_rewrite_budget_is_typed_and_auto_falls_back() {
        // A zero-depth budget makes even a linear system's rewriting
        // non-exhaustive. Explicit Rewrite reports the typed error…
        let tiny = RewriteConfig {
            max_depth: 0,
            max_cqs: 10,
        };
        let mut strict = Session::open(
            linear_system(),
            EngineConfig::default()
                .with_strategy(Strategy::Rewrite)
                .with_rewrite(tiny.clone()),
        )
        .unwrap();
        assert!(matches!(
            strict.prepare(&cast_query()),
            Err(RpsError::RewriteBudget { .. })
        ));
        // …while Auto falls back to the (exact) materialised route and
        // records why the route changed.
        let mut auto =
            Session::open(linear_system(), EngineConfig::default().with_rewrite(tiny)).unwrap();
        let prepared = auto.prepare(&cast_query()).unwrap();
        assert_eq!(prepared.route(), ExecRoute::Materialised);
        assert!(prepared.rewrite_fell_back());
        assert_eq!(auto.execute(&prepared).unwrap().len(), 4);
        // A normally-budgeted preparation does not set the flag.
        let mut ok = Session::open(linear_system(), EngineConfig::default()).unwrap();
        let prepared = ok.prepare(&cast_query()).unwrap();
        assert!(!prepared.rewrite_fell_back());
        assert_eq!(prepared.route(), ExecRoute::Rewritten);
    }

    #[test]
    fn foreign_prepared_queries_are_rejected() {
        let sys = linear_system();
        let mut a = Session::open(sys.clone(), EngineConfig::default()).unwrap();
        let mut b = Session::open(sys, EngineConfig::default()).unwrap();
        let prepared = a.prepare(&cast_query()).unwrap();
        assert!(matches!(
            b.execute(&prepared),
            Err(RpsError::SessionMismatch)
        ));
        // The owning session still executes it fine.
        assert_eq!(a.execute(&prepared).unwrap().len(), 4);
    }

    #[test]
    fn config_changes_stale_prepared_plans() {
        let mut s = Session::open(
            linear_system(),
            EngineConfig::default()
                .with_strategy(Strategy::Materialise)
                .with_semantics(Semantics::Star),
        )
        .unwrap();
        let prepared = s.prepare(&cast_query()).unwrap();
        assert_eq!(prepared.semantics(), Semantics::Star);
        let star = s.execute(&prepared).unwrap().into_set();
        // Mutating the config after prepare marks the plan stale:
        // executing it is a typed error instead of silently running a
        // plan the new configuration would not have produced (the old
        // footgun).
        s.config_mut().semantics = Semantics::Certain;
        assert_eq!(s.config_generation(), 1);
        assert!(matches!(
            s.execute(&prepared),
            Err(RpsError::StalePlan {
                prepared: 0,
                current: 1
            })
        ));
        // A fresh preparation picks up the new semantics and executes.
        let certain = s.answer(&cast_query()).unwrap().into_set();
        assert!(certain.tuples.is_subset(&star.tuples));
        assert!(certain.len() < star.len() || certain.tuples == star.tuples);
    }

    #[test]
    fn frozen_session_executes_all_routes() {
        for strategy in [Strategy::Materialise, Strategy::Rewrite, Strategy::Auto] {
            let mut seq = Session::open(
                linear_system(),
                EngineConfig::default().with_strategy(strategy),
            )
            .unwrap();
            let expected = seq.answer(&cast_query()).unwrap().into_set();
            let frozen = Session::open(
                linear_system(),
                EngineConfig::default().with_strategy(strategy),
            )
            .unwrap()
            .freeze()
            .unwrap();
            let prepared = frozen.prepare(&cast_query()).unwrap();
            let got = frozen.execute(&prepared).unwrap().into_set();
            assert_eq!(got.tuples, expected.tuples, "{strategy:?}");
        }
    }

    #[test]
    fn freeze_preserves_prefrozen_prepared_queries() {
        let mut s = Session::open(linear_system(), EngineConfig::default()).unwrap();
        let prepared = s.prepare(&cast_query()).unwrap();
        let before = s.execute(&prepared).unwrap().into_set();
        let frozen = s.freeze().unwrap();
        // Plans carry their substrate; identity and generation carry
        // over, so the pre-freeze plan still runs.
        let after = frozen.execute(&prepared).unwrap().into_set();
        assert_eq!(before.tuples, after.tuples);
    }

    #[test]
    fn frozen_plan_cache_hits_and_bounds() {
        let frozen = Session::open(linear_system(), EngineConfig::default())
            .unwrap()
            .freeze_with_cache_capacity(1)
            .unwrap();
        let p1 = frozen.prepare(&cast_query()).unwrap();
        // An α-equivalent renaming of the same query is a cache hit and
        // shares the identical plan.
        let renamed = GraphPatternQuery::new(
            vec![v("a"), v("b")],
            GraphPattern::triple(
                TermOrVar::var("a"),
                TermOrVar::iri("http://a/cast"),
                TermOrVar::var("b"),
            ),
        );
        let p2 = frozen.prepare(&renamed).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2));
        let stats = frozen.plan_cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.capacity, 1);
        // A different query evicts the old entry (capacity 1)…
        let other = GraphPatternQuery::new(
            vec![v("x"), v("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://b/actor"),
                TermOrVar::var("y"),
            ),
        );
        frozen.prepare(&other).unwrap();
        assert_eq!(frozen.plan_cache_stats().entries, 1);
        // …and hit answers equal miss answers.
        let hit = frozen.execute(&p2).unwrap().into_set();
        let miss = frozen
            .execute(&frozen.prepare(&cast_query()).unwrap())
            .unwrap()
            .into_set();
        assert_eq!(hit.tuples, miss.tuples);
    }

    #[test]
    fn frozen_auto_without_solution_reports_rewrite_budget() {
        // Auto over an FO-rewritable system freezes without a solution;
        // a budget-starved rewriting is then a typed error (no lazy
        // chase exists to fall back to).
        let tiny = RewriteConfig {
            max_depth: 0,
            max_cqs: 10,
        };
        let frozen = Session::open(linear_system(), EngineConfig::default().with_rewrite(tiny))
            .unwrap()
            .freeze()
            .unwrap();
        assert!(matches!(
            frozen.prepare(&cast_query()),
            Err(RpsError::RewriteBudget { .. })
        ));
    }

    #[test]
    fn frozen_star_strategy_checked_at_freeze() {
        let cfg = EngineConfig::default()
            .with_strategy(Strategy::Rewrite)
            .with_semantics(Semantics::Star);
        assert!(matches!(
            Session::open(linear_system(), cfg).unwrap().freeze(),
            Err(RpsError::StarNeedsMaterialisation)
        ));
    }

    #[test]
    fn datalog_route_handles_non_fo_systems() {
        let sys = crate::datalog_route::tests_support::transitive_system(10);
        let mut s = Session::new(
            sys.clone(),
            EngineConfig::default().with_strategy(Strategy::Datalog),
        );
        let stream = s
            .answer(&crate::datalog_route::tests_support::edge_query())
            .unwrap();
        assert_eq!(stream.route(), ExecRoute::Datalog);
        let datalog = stream.into_set();
        let mut mat = Session::new(
            sys,
            EngineConfig::default().with_strategy(Strategy::Materialise),
        );
        let chased = mat
            .answer(&crate::datalog_route::tests_support::edge_query())
            .unwrap()
            .into_set();
        assert_eq!(datalog.tuples, chased.tuples);
        assert_eq!(datalog.len(), 55);
    }

    #[test]
    fn star_semantics_requires_materialisation() {
        let cfg = EngineConfig::default()
            .with_strategy(Strategy::Rewrite)
            .with_semantics(Semantics::Star);
        let mut s = Session::open(linear_system(), cfg).unwrap();
        assert!(matches!(
            s.prepare(&cast_query()),
            Err(RpsError::StarNeedsMaterialisation)
        ));
        // Auto silently picks the materialised route instead.
        s.config_mut().strategy = Strategy::Auto;
        let prepared = s.prepare(&cast_query()).unwrap();
        assert_eq!(prepared.route(), ExecRoute::Materialised);
    }

    #[test]
    fn arity_mismatch_is_a_typed_error() {
        let mut s = Session::open(linear_system(), EngineConfig::default()).unwrap();
        assert!(matches!(
            s.is_certain_answer(&cast_query(), &[Term::iri("http://a/f1")]),
            Err(RpsError::Arity {
                expected: 2,
                got: 1
            })
        ));
        assert!(s
            .is_certain_answer(
                &cast_query(),
                &[Term::iri("http://b/f2"), Term::iri("http://a/p1")]
            )
            .unwrap());
    }
}
