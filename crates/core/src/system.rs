//! RDF Peer Systems: `P = (S, G, E)` (paper Section 2.2) and their stored
//! databases.

use crate::mapping::{EquivalenceMapping, GraphMappingAssertion, MappingError};
use crate::peer::{Peer, PeerId};
use rps_rdf::{vocab, Graph, Iri, Term};
use std::collections::BTreeSet;
use std::fmt;

/// An RDF Peer System `P = (S, G, E)`: peers (each carrying its schema
/// and stored database), graph mapping assertions and equivalence
/// mappings.
#[derive(Clone, Debug, Default)]
pub struct RdfPeerSystem {
    peers: Vec<Peer>,
    assertions: Vec<GraphMappingAssertion>,
    equivalences: Vec<EquivalenceMapping>,
}

impl RdfPeerSystem {
    /// Creates an empty system; add peers and mappings with the `add_*`
    /// methods or use [`RpsBuilder`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a peer, returning its id.
    pub fn add_peer(&mut self, peer: Peer) -> PeerId {
        self.peers.push(peer);
        PeerId(self.peers.len() - 1)
    }

    /// Adds a graph mapping assertion.
    pub fn add_assertion(&mut self, assertion: GraphMappingAssertion) {
        self.assertions.push(assertion);
    }

    /// Adds an equivalence mapping (deduplicated, trivial ones dropped).
    pub fn add_equivalence(&mut self, eq: EquivalenceMapping) {
        if eq.is_trivial() {
            return;
        }
        let canon = eq.canonical();
        if !self.equivalences.contains(&canon) {
            self.equivalences.push(canon);
        }
    }

    /// The peers.
    pub fn peers(&self) -> &[Peer] {
        &self.peers
    }

    /// A peer by id.
    pub fn peer(&self, id: PeerId) -> &Peer {
        &self.peers[id.0]
    }

    /// Mutable access to a peer, the write side of live updates
    /// ([`crate::live::LiveSession`] routes every insert/remove batch
    /// through here so the peer databases stay the source of truth). The
    /// caller keeps the peer's schema consistent with its database;
    /// validation re-checks when a session opens over the system.
    pub fn peer_mut(&mut self, id: PeerId) -> &mut Peer {
        &mut self.peers[id.0]
    }

    /// The graph mapping assertions `G`.
    pub fn assertions(&self) -> &[GraphMappingAssertion] {
        &self.assertions
    }

    /// The equivalence mappings `E`.
    pub fn equivalences(&self) -> &[EquivalenceMapping] {
        &self.equivalences
    }

    /// The *stored database* `D`: the union of all peer databases
    /// (Section 2.3). Blank nodes are kept peer-local by prefixing their
    /// labels with the peer index, matching the paper's treatment of
    /// blank nodes as scoped placeholders.
    pub fn stored_database(&self) -> Graph {
        let mut out = Graph::new();
        // Relabel each peer's blanks and intern directly into the union —
        // one interning pass per distinct term, no intermediate graphs —
        // then store each peer's triples as one sorted batch.
        for idx in 0..self.peers.len() {
            let db = &self.peers[idx].database;
            let mut memo: Vec<Option<rps_rdf::TermId>> = vec![None; db.dict().len()];
            let mut map = |tid: rps_rdf::TermId, out: &mut Graph| match memo[tid.index()] {
                Some(mapped) => mapped,
                None => {
                    let term = db.term(tid);
                    let scoped = scoped_term(idx, term);
                    let mapped = out.intern(&scoped);
                    memo[tid.index()] = Some(mapped);
                    mapped
                }
            };
            let batch: Vec<rps_rdf::IdTriple> = db
                .iter_ids()
                .map(|t| {
                    let s = map(t.s, &mut out);
                    let p = map(t.p, &mut out);
                    let o = map(t.o, &mut out);
                    rps_rdf::IdTriple::new(s, p, o)
                })
                .collect();
            out.insert_batch(batch);
        }
        out
    }

    /// One peer's database with its blank nodes relabelled into the
    /// peer-scoped namespace used by [`Self::stored_database`]. Federated
    /// evaluation uses these so that cross-pattern joins on blanks behave
    /// identically to centralised evaluation.
    pub fn scoped_database(&self, id: PeerId) -> Graph {
        let peer = &self.peers[id.0];
        let idx = id.0;
        let db = &peer.database;
        let mut out = Graph::new();
        // Relabel and re-intern each distinct term once, not once per
        // occurrence.
        let mut memo: Vec<Option<rps_rdf::TermId>> = vec![None; db.dict().len()];
        let mut map = |tid: rps_rdf::TermId, out: &mut Graph| match memo[tid.index()] {
            Some(mapped) => mapped,
            None => {
                let term = db.term(tid);
                let scoped = scoped_term(idx, term);
                let mapped = out.intern(&scoped);
                memo[tid.index()] = Some(mapped);
                mapped
            }
        };
        let batch: Vec<rps_rdf::IdTriple> = db
            .iter_ids()
            .map(|t| {
                let s = map(t.s, &mut out);
                let p = map(t.p, &mut out);
                let o = map(t.o, &mut out);
                rps_rdf::IdTriple::new(s, p, o)
            })
            .collect();
        out.insert_batch(batch);
        out
    }

    /// Imports equivalence mappings from `owl:sameAs` triples found in
    /// the stored databases, as in the paper's Example 2 ("E contains an
    /// equivalence mapping c ≡ₑ c' for each triple (c, sameAs, c')").
    /// Returns how many (non-trivial, deduplicated) mappings were added.
    pub fn import_same_as(&mut self) -> usize {
        let mut found: BTreeSet<EquivalenceMapping> = BTreeSet::new();
        for peer in &self.peers {
            let g = &peer.database;
            let Some(p) = g.term_id(&Term::iri(vocab::OWL_SAME_AS)) else {
                continue;
            };
            for t in g.match_ids(None, Some(p), None) {
                if let (Term::Iri(a), Term::Iri(b)) = (g.term(t.s), g.term(t.o)) {
                    let eq = EquivalenceMapping::new(a.clone(), b.clone());
                    if !eq.is_trivial() {
                        found.insert(eq.canonical());
                    }
                }
            }
        }
        let before = self.equivalences.len();
        for eq in found {
            self.add_equivalence(eq);
        }
        self.equivalences.len() - before
    }

    /// Validates the whole system: peer storage constraints, and mapping
    /// queries expressed over the schemas of their peers (IRIs of `Q`
    /// must belong to the source schema ∪ literals, per Section 2.2).
    pub fn validate(&self) -> Result<(), SystemValidationError> {
        for peer in &self.peers {
            peer.validate()
                .map_err(|e| SystemValidationError::Peer(Box::new(e)))?;
        }
        for (i, gma) in self.assertions.iter().enumerate() {
            if gma.source.0 >= self.peers.len() || gma.target.0 >= self.peers.len() {
                return Err(SystemValidationError::UnknownPeer { assertion: i });
            }
            let src_schema = &self.peer(gma.source).schema;
            for iri in GraphMappingAssertion::iris_of(&gma.premise) {
                if !src_schema.contains(&iri) {
                    return Err(SystemValidationError::SchemaViolation {
                        assertion: i,
                        iri,
                        peer: gma.source,
                    });
                }
            }
            let dst_schema = &self.peer(gma.target).schema;
            for iri in GraphMappingAssertion::iris_of(&gma.conclusion) {
                if !dst_schema.contains(&iri) {
                    return Err(SystemValidationError::SchemaViolation {
                        assertion: i,
                        iri,
                        peer: gma.target,
                    });
                }
            }
        }
        Ok(())
    }

    /// Total number of stored triples across peers.
    pub fn stored_size(&self) -> usize {
        self.peers.iter().map(Peer::size).sum()
    }
}

/// The peer-scoped image of a term in the stored database: blank labels
/// are prefixed with the peer index (`p{idx}_…`), matching the paper's
/// treatment of blank nodes as peer-local placeholders. Both the bulk
/// [`RdfPeerSystem::stored_database`] union and the live-update write
/// path ([`crate::live`]) apply this mapping, so a triple inserted live
/// lands on exactly the id a batch load would have given it.
pub(crate) fn scoped_term(idx: usize, term: &Term) -> Term {
    match term {
        Term::Blank(b) => Term::blank(format!("p{idx}_{}", b.label())),
        other => other.clone(),
    }
}

/// Validation failures for a whole system.
#[derive(Debug)]
pub enum SystemValidationError {
    /// A peer stores triples outside its schema.
    Peer(Box<crate::peer::PeerValidationError>),
    /// An assertion references a peer id that does not exist.
    UnknownPeer {
        /// Index of the offending assertion.
        assertion: usize,
    },
    /// A mapping query uses an IRI outside the peer's schema.
    SchemaViolation {
        /// Index of the offending assertion.
        assertion: usize,
        /// The foreign IRI.
        iri: Iri,
        /// The peer whose schema was violated.
        peer: PeerId,
    },
}

impl fmt::Display for SystemValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemValidationError::Peer(e) => write!(f, "{e}"),
            SystemValidationError::UnknownPeer { assertion } => {
                write!(f, "assertion #{assertion} references an unknown peer")
            }
            SystemValidationError::SchemaViolation {
                assertion,
                iri,
                peer,
            } => write!(
                f,
                "assertion #{assertion} uses {iri} outside the schema of {peer}"
            ),
        }
    }
}

impl std::error::Error for SystemValidationError {}

/// Fluent builder for small systems (tests, examples).
#[derive(Default)]
pub struct RpsBuilder {
    system: RdfPeerSystem,
}

impl RpsBuilder {
    /// Starts an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a peer from Turtle source, inferring its schema; returns the
    /// builder and stores the new peer's id in `out_id`.
    pub fn peer_turtle(
        mut self,
        name: &str,
        turtle: &str,
        out_id: &mut PeerId,
    ) -> Result<Self, rps_rdf::RdfError> {
        let g = rps_rdf::turtle::parse(turtle)?;
        *out_id = self.system.add_peer(Peer::from_database(name, g));
        Ok(self)
    }

    /// Adds a graph mapping assertion.
    pub fn assertion(
        mut self,
        source: PeerId,
        target: PeerId,
        premise: rps_query::GraphPatternQuery,
        conclusion: rps_query::GraphPatternQuery,
    ) -> Result<Self, MappingError> {
        let gma = GraphMappingAssertion::new(source, target, premise, conclusion)?;
        self.system.add_assertion(gma);
        Ok(self)
    }

    /// Adds an equivalence mapping by IRI strings.
    pub fn equivalence(mut self, left: &str, right: &str) -> Self {
        self.system
            .add_equivalence(EquivalenceMapping::new(Iri::new(left), Iri::new(right)));
        self
    }

    /// Imports `owl:sameAs` links as equivalence mappings.
    pub fn import_same_as(mut self) -> Self {
        self.system.import_same_as();
        self
    }

    /// Finishes building.
    pub fn build(self) -> RdfPeerSystem {
        self.system
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rps_query::{GraphPattern, GraphPatternQuery, TermOrVar, Variable};

    #[test]
    fn stored_database_unions_and_scopes_blanks() {
        let mut sys = RdfPeerSystem::new();
        let g1 = rps_rdf::turtle::parse("_:b <http://e/p> <http://e/o> .").unwrap();
        let g2 = rps_rdf::turtle::parse("_:b <http://e/p> <http://e/o2> .").unwrap();
        sys.add_peer(Peer::from_database("a", g1));
        sys.add_peer(Peer::from_database("b", g2));
        let d = sys.stored_database();
        assert_eq!(d.len(), 2);
        // The two _:b blanks stay distinct.
        let subjects: BTreeSet<String> = d.iter().map(|t| t.subject().to_string()).collect();
        assert_eq!(subjects.len(), 2);
    }

    #[test]
    fn same_as_import() {
        let mut sys = RdfPeerSystem::new();
        let g = rps_rdf::turtle::parse(&format!(
            "<http://a> <{}> <http://b> .\n<http://a> <{}> <http://a> .\n",
            vocab::OWL_SAME_AS,
            vocab::OWL_SAME_AS
        ))
        .unwrap();
        sys.add_peer(Peer::from_database("s", g));
        let n = sys.import_same_as();
        assert_eq!(n, 1); // trivial self-link dropped
        assert_eq!(sys.equivalences().len(), 1);
        // Importing again is idempotent.
        assert_eq!(sys.import_same_as(), 0);
    }

    #[test]
    fn validation_checks_mapping_schemas() {
        let mut sys = RdfPeerSystem::new();
        let g1 = rps_rdf::turtle::parse("<http://a/s> <http://a/p> <http://a/o> .").unwrap();
        let g2 = rps_rdf::turtle::parse("<http://b/s> <http://b/p> <http://b/o> .").unwrap();
        let p1 = sys.add_peer(Peer::from_database("a", g1));
        let p2 = sys.add_peer(Peer::from_database("b", g2));
        let q_src = GraphPatternQuery::new(
            vec![Variable::new("x"), Variable::new("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://a/p"),
                TermOrVar::var("y"),
            ),
        );
        let q_dst = GraphPatternQuery::new(
            vec![Variable::new("x"), Variable::new("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://b/p"),
                TermOrVar::var("y"),
            ),
        );
        sys.add_assertion(
            GraphMappingAssertion::new(p1, p2, q_src.clone(), q_dst.clone()).unwrap(),
        );
        assert!(sys.validate().is_ok());
        // A premise over the wrong peer's vocabulary fails.
        sys.add_assertion(GraphMappingAssertion::new(p2, p1, q_src, q_dst).unwrap());
        assert!(matches!(
            sys.validate(),
            Err(SystemValidationError::SchemaViolation { assertion: 1, .. })
        ));
    }

    #[test]
    fn builder_roundtrip() {
        let mut a = PeerId(0);
        let mut b = PeerId(0);
        let sys = RpsBuilder::new()
            .peer_turtle("a", "<http://a/s> <http://a/p> <http://a/o> .", &mut a)
            .unwrap()
            .peer_turtle("b", "<http://b/s> <http://b/p> <http://b/o> .", &mut b)
            .unwrap()
            .equivalence("http://a/s", "http://b/s")
            .build();
        assert_eq!(sys.peers().len(), 2);
        assert_eq!(sys.equivalences().len(), 1);
        assert_eq!(sys.stored_size(), 2);
        assert!(sys.validate().is_ok());
    }

    #[test]
    fn duplicate_and_trivial_equivalences_dropped() {
        let mut sys = RdfPeerSystem::new();
        sys.add_equivalence(EquivalenceMapping::new(Iri::new("a"), Iri::new("b")));
        sys.add_equivalence(EquivalenceMapping::new(Iri::new("b"), Iri::new("a")));
        sys.add_equivalence(EquivalenceMapping::new(Iri::new("a"), Iri::new("a")));
        assert_eq!(sys.equivalences().len(), 1);
    }
}
