//! The legacy engine facade, kept as a thin shim over [`Session`].
//!
//! **Deprecated in favour of [`crate::Session`]**: the `Session` /
//! [`crate::PreparedQuery`] / [`crate::AnswerStream`] API unifies the
//! configuration plumbing, prepares queries once for repeated execution,
//! streams answers, and reports failures as typed [`crate::RpsError`]s.
//! `RpsEngine` remains for callers that depend on its historical
//! behaviour (in particular: answering over an *incomplete* universal
//! solution when the chase budget runs out, rather than erroring).

pub use crate::session::Strategy;

use crate::answers::{certain_answers, AnswerSet};
use crate::chase::{RpsChaseConfig, UniversalSolution};
use crate::equivalence::EquivalenceIndex;
use crate::session::{EngineConfig, Session};
use crate::system::RdfPeerSystem;
use rps_query::GraphPatternQuery;
use rps_tgd::RewriteConfig;

/// How a query was actually answered.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AnswerRoute {
    /// Evaluated over a materialised universal solution.
    Materialised,
    /// Evaluated through a (complete) UCQ rewriting.
    Rewritten,
    /// Evaluated over a semi-naive Datalog least model.
    Datalog,
}

/// The legacy engine: owns a [`Session`] and reproduces the historical
/// `answer` contract. Prefer [`Session`] in new code.
pub struct RpsEngine {
    session: Session,
}

impl RpsEngine {
    /// Creates an engine with the default (Auto) strategy.
    pub fn new(system: RdfPeerSystem) -> Self {
        RpsEngine {
            session: Session::new(system, EngineConfig::default()),
        }
    }

    /// Sets the strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.session.config_mut().strategy = strategy;
        self
    }

    /// Overrides the chase budgets.
    pub fn with_chase_config(mut self, config: RpsChaseConfig) -> Self {
        self.session.config_mut().chase = config;
        self
    }

    /// Overrides the rewriting budgets.
    pub fn with_rewrite_config(mut self, config: RewriteConfig) -> Self {
        self.session.config_mut().rewrite = config;
        self
    }

    /// The underlying system.
    pub fn system(&self) -> &RdfPeerSystem {
        self.session.system()
    }

    /// The union-find index over the system's equivalence mappings.
    pub fn equivalence_index(&self) -> &EquivalenceIndex {
        self.session.equivalence_index()
    }

    /// The materialised universal solution, chasing on first use. Unlike
    /// [`Session::universal_solution`], an incomplete solution is
    /// returned as-is (check its `complete` flag).
    pub fn universal_solution(&mut self) -> &UniversalSolution {
        self.session.universal_solution_lenient();
        // Re-borrow through the cache to return a plain reference.
        self.session.cached_solution().expect("just materialised")
    }

    /// Answers a query, returning the certain answers and the route
    /// taken. Historical contract: an incomplete rewriting falls back to
    /// materialisation, and an over-budget chase still yields (possibly
    /// partial) answers instead of an error.
    pub fn answer(&mut self, query: &GraphPatternQuery) -> (AnswerSet, AnswerRoute) {
        if self.session.config().strategy == Strategy::Datalog {
            // Honour the Datalog route when the system supports it (full
            // graph mapping assertions); otherwise stay lenient and fall
            // through to materialisation.
            if let Ok(prepared) = self.session.prepare(query) {
                if let Ok(stream) = self.session.execute(&prepared) {
                    return (stream.into_set(), AnswerRoute::Datalog);
                }
            }
        }
        let use_rewriting = match self.session.config().strategy {
            Strategy::Materialise | Strategy::Datalog => false,
            Strategy::Rewrite => true,
            Strategy::Auto => self.session.rewriter_mut().fo_rewritable(),
        };
        if use_rewriting {
            let cfg = self.session.config().rewrite.clone();
            let (answers, complete) = self.session.rewriter_mut().answers(query, &cfg);
            if complete {
                return (answers, AnswerRoute::Rewritten);
            }
            // Incomplete rewriting is unsound to trust: fall back.
        }
        let sol = self.session.universal_solution_lenient();
        (certain_answers(&sol, query), AnswerRoute::Materialised)
    }

    /// Answers and removes equivalence-induced redundancy (Listing 1's
    /// "Result without redundancy").
    pub fn answer_without_redundancy(
        &mut self,
        query: &GraphPatternQuery,
    ) -> (AnswerSet, AnswerRoute) {
        let (ans, route) = self.answer(query);
        (
            ans.without_redundancy(self.session.equivalence_index()),
            route,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::RpsBuilder;
    use crate::PeerId;
    use rps_query::{GraphPattern, TermOrVar, Variable};
    use rps_rdf::Term;

    fn v(n: &str) -> Variable {
        Variable::new(n)
    }

    fn linear_system() -> RdfPeerSystem {
        let mut a = PeerId(0);
        let mut b = PeerId(0);
        let premise = GraphPatternQuery::new(
            vec![v("x"), v("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://b/actor"),
                TermOrVar::var("y"),
            ),
        );
        let conclusion = GraphPatternQuery::new(
            vec![v("x"), v("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://a/cast"),
                TermOrVar::var("y"),
            ),
        );
        RpsBuilder::new()
            .peer_turtle("A", "<http://a/f1> <http://a/cast> <http://a/p1> .", &mut a)
            .unwrap()
            .peer_turtle(
                "B",
                "<http://b/f2> <http://b/actor> <http://b/p2> .",
                &mut b,
            )
            .unwrap()
            .assertion(b, a, premise, conclusion)
            .unwrap()
            .equivalence("http://a/p1", "http://b/p2")
            .build()
    }

    fn cast_query() -> GraphPatternQuery {
        GraphPatternQuery::new(
            vec![v("x"), v("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://a/cast"),
                TermOrVar::var("y"),
            ),
        )
    }

    #[test]
    fn auto_uses_rewriting_for_linear_systems() {
        let mut engine = RpsEngine::new(linear_system());
        let (ans, route) = engine.answer(&cast_query());
        assert_eq!(route, AnswerRoute::Rewritten);
        assert_eq!(ans.len(), 4);
    }

    #[test]
    fn strategies_agree() {
        let sys = linear_system();
        let mut m = RpsEngine::new(sys.clone()).with_strategy(Strategy::Materialise);
        let mut r = RpsEngine::new(sys).with_strategy(Strategy::Rewrite);
        let (am, rm) = m.answer(&cast_query());
        let (ar, rr) = r.answer(&cast_query());
        assert_eq!(rm, AnswerRoute::Materialised);
        assert_eq!(rr, AnswerRoute::Rewritten);
        assert_eq!(am.tuples, ar.tuples);
    }

    #[test]
    fn redundancy_free_answers_pick_representatives() {
        let mut engine = RpsEngine::new(linear_system());
        let (full, _) = engine.answer(&cast_query());
        let (lean, _) = engine.answer_without_redundancy(&cast_query());
        assert!(lean.len() < full.len());
        // p1/p2 pairs collapse to one representative per subject.
        for t in &lean.tuples {
            assert!(!t.is_empty());
        }
    }

    #[test]
    fn datalog_strategy_takes_datalog_route_when_full() {
        let sys = crate::datalog_route::tests_support::transitive_system(10);
        let mut engine = RpsEngine::new(sys).with_strategy(Strategy::Datalog);
        let (ans, route) = engine.answer(&crate::datalog_route::tests_support::edge_query());
        assert_eq!(route, AnswerRoute::Datalog);
        assert_eq!(ans.len(), 55);
        // A system with existential conclusions cannot take the Datalog
        // route; the shim stays lenient and materialises instead.
        let mut a = PeerId(0);
        let mut b = PeerId(0);
        let premise = GraphPatternQuery::new(
            vec![v("x"), v("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://b/actor"),
                TermOrVar::var("y"),
            ),
        );
        let conclusion = GraphPatternQuery::new(
            vec![v("x"), v("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://a/starring"),
                TermOrVar::var("z"),
            )
            .and(GraphPattern::triple(
                TermOrVar::var("z"),
                TermOrVar::iri("http://a/artist"),
                TermOrVar::var("y"),
            )),
        );
        let sys = RpsBuilder::new()
            .peer_turtle(
                "A",
                "<http://a/f> <http://a/starring> <http://a/c> .\n\
                 <http://a/c> <http://a/artist> <http://a/p> .",
                &mut a,
            )
            .unwrap()
            .peer_turtle(
                "B",
                "<http://b/f2> <http://b/actor> <http://b/p2> .",
                &mut b,
            )
            .unwrap()
            .assertion(b, a, premise, conclusion)
            .unwrap()
            .build();
        let mut lenient = RpsEngine::new(sys).with_strategy(Strategy::Datalog);
        let starring = GraphPatternQuery::new(
            vec![v("x")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://a/starring"),
                TermOrVar::var("z"),
            ),
        );
        let (ans, route) = lenient.answer(&starring);
        assert_eq!(route, AnswerRoute::Materialised);
        assert_eq!(ans.len(), 2); // a/f plus the fired b/f2
    }

    #[test]
    fn materialise_route_answers_equivalence_queries() {
        let mut engine = RpsEngine::new(linear_system()).with_strategy(Strategy::Materialise);
        let (ans, route) = engine.answer(&cast_query());
        assert_eq!(route, AnswerRoute::Materialised);
        assert!(ans
            .tuples
            .contains(&vec![Term::iri("http://a/f1"), Term::iri("http://b/p2")]));
    }
}
