//! High-level engine facade: choose between materialisation (Algorithm 1)
//! and rewriting (Section 4) per query or automatically.

use crate::answers::{certain_answers, AnswerSet};
use crate::chase::{chase_system, RpsChaseConfig, UniversalSolution};
use crate::equivalence::EquivalenceIndex;
use crate::rewriting::RpsRewriter;
use crate::system::RdfPeerSystem;
use rps_query::GraphPatternQuery;
use rps_tgd::RewriteConfig;

/// Query-answering strategy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Strategy {
    /// Materialise the universal solution once (Algorithm 1) and evaluate
    /// queries over it. Amortises well under high query rates.
    Materialise,
    /// Rewrite each query into a UCQ over the sources (Proposition 2).
    /// No materialisation; pays per query.
    Rewrite,
    /// Use rewriting when the mapping TGDs are FO-rewritable, otherwise
    /// materialise.
    #[default]
    Auto,
}

/// How a query was actually answered.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AnswerRoute {
    /// Evaluated over a materialised universal solution.
    Materialised,
    /// Evaluated through a (complete) UCQ rewriting.
    Rewritten,
}

/// The engine: owns a system, lazily materialises, caches the rewriter.
pub struct RpsEngine {
    system: RdfPeerSystem,
    strategy: Strategy,
    chase_config: RpsChaseConfig,
    rewrite_config: RewriteConfig,
    solution: Option<UniversalSolution>,
    rewriter: Option<RpsRewriter>,
    equivalence_index: EquivalenceIndex,
}

impl RpsEngine {
    /// Creates an engine with the default (Auto) strategy.
    pub fn new(system: RdfPeerSystem) -> Self {
        let equivalence_index = EquivalenceIndex::from_mappings(system.equivalences());
        RpsEngine {
            system,
            strategy: Strategy::default(),
            chase_config: RpsChaseConfig::default(),
            rewrite_config: RewriteConfig::default(),
            solution: None,
            rewriter: None,
            equivalence_index,
        }
    }

    /// Sets the strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Overrides the chase budgets.
    pub fn with_chase_config(mut self, config: RpsChaseConfig) -> Self {
        self.chase_config = config;
        self
    }

    /// Overrides the rewriting budgets.
    pub fn with_rewrite_config(mut self, config: RewriteConfig) -> Self {
        self.rewrite_config = config;
        self
    }

    /// The underlying system.
    pub fn system(&self) -> &RdfPeerSystem {
        &self.system
    }

    /// The union-find index over the system's equivalence mappings.
    pub fn equivalence_index(&self) -> &EquivalenceIndex {
        &self.equivalence_index
    }

    /// The materialised universal solution, chasing on first use.
    pub fn universal_solution(&mut self) -> &UniversalSolution {
        if self.solution.is_none() {
            self.solution = Some(chase_system(&self.system, &self.chase_config));
        }
        self.solution.as_ref().expect("just materialised")
    }

    fn rewriter(&mut self) -> &mut RpsRewriter {
        if self.rewriter.is_none() {
            self.rewriter = Some(RpsRewriter::new(&self.system));
        }
        self.rewriter.as_mut().expect("just built")
    }

    /// Answers a query, returning the certain answers and the route
    /// taken.
    pub fn answer(&mut self, query: &GraphPatternQuery) -> (AnswerSet, AnswerRoute) {
        let use_rewriting = match self.strategy {
            Strategy::Materialise => false,
            Strategy::Rewrite => true,
            Strategy::Auto => self.rewriter().fo_rewritable(),
        };
        if use_rewriting {
            let cfg = self.rewrite_config.clone();
            let (answers, complete) = self.rewriter().answers(query, &cfg);
            if complete {
                return (answers, AnswerRoute::Rewritten);
            }
            // Incomplete rewriting is unsound to trust: fall back.
        }
        let sol = self.universal_solution();
        (certain_answers(sol, query), AnswerRoute::Materialised)
    }

    /// Answers and removes equivalence-induced redundancy (Listing 1's
    /// "Result without redundancy").
    pub fn answer_without_redundancy(
        &mut self,
        query: &GraphPatternQuery,
    ) -> (AnswerSet, AnswerRoute) {
        let (ans, route) = self.answer(query);
        (ans.without_redundancy(&self.equivalence_index), route)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::RpsBuilder;
    use crate::PeerId;
    use rps_query::{GraphPattern, TermOrVar, Variable};
    use rps_rdf::Term;

    fn v(n: &str) -> Variable {
        Variable::new(n)
    }

    fn linear_system() -> RdfPeerSystem {
        let mut a = PeerId(0);
        let mut b = PeerId(0);
        let premise = GraphPatternQuery::new(
            vec![v("x"), v("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://b/actor"),
                TermOrVar::var("y"),
            ),
        );
        let conclusion = GraphPatternQuery::new(
            vec![v("x"), v("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://a/cast"),
                TermOrVar::var("y"),
            ),
        );
        RpsBuilder::new()
            .peer_turtle("A", "<http://a/f1> <http://a/cast> <http://a/p1> .", &mut a)
            .unwrap()
            .peer_turtle(
                "B",
                "<http://b/f2> <http://b/actor> <http://b/p2> .",
                &mut b,
            )
            .unwrap()
            .assertion(b, a, premise, conclusion)
            .unwrap()
            .equivalence("http://a/p1", "http://b/p2")
            .build()
    }

    fn cast_query() -> GraphPatternQuery {
        GraphPatternQuery::new(
            vec![v("x"), v("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://a/cast"),
                TermOrVar::var("y"),
            ),
        )
    }

    #[test]
    fn auto_uses_rewriting_for_linear_systems() {
        let mut engine = RpsEngine::new(linear_system());
        let (ans, route) = engine.answer(&cast_query());
        assert_eq!(route, AnswerRoute::Rewritten);
        assert_eq!(ans.len(), 4); // (f1,p1), (f1,p2)? no — see below
    }

    #[test]
    fn strategies_agree() {
        let sys = linear_system();
        let mut m = RpsEngine::new(sys.clone()).with_strategy(Strategy::Materialise);
        let mut r = RpsEngine::new(sys).with_strategy(Strategy::Rewrite);
        let (am, rm) = m.answer(&cast_query());
        let (ar, rr) = r.answer(&cast_query());
        assert_eq!(rm, AnswerRoute::Materialised);
        assert_eq!(rr, AnswerRoute::Rewritten);
        assert_eq!(am.tuples, ar.tuples);
    }

    #[test]
    fn redundancy_free_answers_pick_representatives() {
        let mut engine = RpsEngine::new(linear_system());
        let (full, _) = engine.answer(&cast_query());
        let (lean, _) = engine.answer_without_redundancy(&cast_query());
        assert!(lean.len() < full.len());
        // p1/p2 pairs collapse to one representative per subject.
        for t in &lean.tuples {
            assert!(!t.is_empty());
        }
    }

    #[test]
    fn materialise_route_answers_equivalence_queries() {
        let mut engine = RpsEngine::new(linear_system()).with_strategy(Strategy::Materialise);
        let (ans, route) = engine.answer(&cast_query());
        assert_eq!(route, AnswerRoute::Materialised);
        assert!(ans
            .tuples
            .contains(&vec![Term::iri("http://a/f1"), Term::iri("http://b/p2")]));
    }
}
