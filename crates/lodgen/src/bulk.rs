//! Bulk single-graph triple generation for the scale-out experiments.
//!
//! The other generators in this crate build *peer systems* — mappings,
//! `sameAs` links, query mixes — and top out around the tens of
//! thousands of triples the chase experiments need. The sharding and
//! morsel-scan experiments (`e19`) instead need one graph with
//! *millions* of triples, generated in O(n) time and O(pool) extra
//! memory: no per-triple `format!` of fresh IRIs (which makes the
//! dictionary as large as the store) and no accidental quadratic
//! behaviour from per-triple tail flushes.
//!
//! [`bulk_graph`] therefore interns a fixed entity pool and a small
//! predicate set once, then streams exactly `n` distinct id-level
//! triples through [`Graph::insert_batch`] in large chunks. The triple
//! at index `i` is a pure function of `(seed, i)`, so runs are
//! reproducible and two graphs built from the same config are equal.

use crate::rng::SeededRng;
use rps_rdf::{Graph, IdTriple, Term, TermId};

/// Namespace of the bulk-generated entities.
pub const NS: &str = "http://bulk.example.org/";

/// How many predicates the generator cycles through.
pub const PREDICATES: usize = 8;

/// Batch size fed to [`Graph::insert_batch`]; large enough that the
/// sorted-run backend sorts whole runs instead of paying per-triple
/// tail maintenance.
const CHUNK: usize = 1 << 16;

/// Configuration of [`bulk_graph`].
#[derive(Clone, Copy, Debug)]
pub struct BulkConfig {
    /// Exact number of distinct triples to generate.
    pub triples: usize,
    /// Entity-pool size; `0` derives `max(triples / 4, 1)` so subjects
    /// stay clustered (several triples per subject — the regime where
    /// delta-varint compression and subject-hash pruning pay off).
    pub entities: usize,
    /// PRNG seed; same seed ⇒ identical graph.
    pub seed: u64,
}

impl Default for BulkConfig {
    fn default() -> Self {
        BulkConfig {
            triples: 100_000,
            entities: 0,
            seed: 0xB01D_FACE,
        }
    }
}

impl BulkConfig {
    /// The resolved entity-pool size.
    pub fn pool(&self) -> usize {
        if self.entities > 0 {
            self.entities
        } else {
            (self.triples / 4).max(1)
        }
    }
}

/// The ids the generator interned, for building matching queries
/// without dictionary lookups.
#[derive(Clone, Debug)]
pub struct BulkIds {
    /// Entity-pool term ids (subjects and objects draw from this pool).
    pub entities: Vec<TermId>,
    /// The [`PREDICATES`] predicate ids, in index order.
    pub predicates: Vec<TermId>,
}

/// Generates exactly `cfg.triples` distinct triples into a fresh
/// [`Graph`] in O(n) time. Returns the graph and the interned id pools.
///
/// Distinctness without a seen-set: triple `i` is
/// `(e[s], p[(i / pool) % PREDICATES], e[o])` where `s = i % pool` and
/// `o` walks a per-subject arithmetic progression with a stride coprime
/// to the pool, so for a fixed subject and predicate every object index
/// is distinct until the pool wraps — and the caller is capped at
/// `pool * PREDICATES * pool` triples, far above any benchmark size.
pub fn bulk_graph(cfg: &BulkConfig) -> (Graph, BulkIds) {
    let pool = cfg.pool();
    let cap = pool.saturating_mul(PREDICATES).saturating_mul(pool);
    assert!(
        cfg.triples <= cap,
        "bulk_graph: {} triples exceed the {} distinct triples a pool of {} supports",
        cfg.triples,
        cap,
        pool
    );

    let mut g = Graph::new();
    let mut rng = SeededRng::seed_from_u64(cfg.seed);

    // Intern the pools once; everything after this is id-level.
    let entities: Vec<TermId> = (0..pool)
        .map(|i| g.intern(&Term::iri(format!("{NS}e{i}"))))
        .collect();
    let predicates: Vec<TermId> = (0..PREDICATES)
        .map(|i| g.intern(&Term::iri(format!("{NS}p{i}"))))
        .collect();

    // A per-subject object stride coprime to the pool (odd vs 2^k is
    // not enough for arbitrary pools, so step until gcd == 1; pools are
    // small relative to n, so this is negligible).
    let mut stride = (rng.next_u64() as usize % pool).max(1);
    while gcd(stride, pool) != 1 {
        stride += 1;
        if stride >= pool {
            stride = 1;
        }
    }

    let mut batch: Vec<IdTriple> = Vec::with_capacity(CHUNK.min(cfg.triples));
    let mut added = 0usize;
    for i in 0..cfg.triples {
        let s = i % pool;
        let round = i / pool;
        let p = round % PREDICATES;
        // Object progression: offset by the round so each (s, p) pair
        // revisits the pool in a fresh rotation only after pool rounds.
        let o = (s + (round / PREDICATES + 1).wrapping_mul(stride)) % pool;
        batch.push(IdTriple::new(entities[s], predicates[p], entities[o]));
        if batch.len() == CHUNK {
            added += g.insert_batch(batch.drain(..));
        }
    }
    added += g.insert_batch(batch.drain(..));
    debug_assert_eq!(added, cfg.triples, "generator emitted a duplicate");

    (
        g,
        BulkIds {
            entities,
            predicates,
        },
    )
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_count_and_deterministic() {
        let cfg = BulkConfig {
            triples: 50_000,
            entities: 0,
            seed: 7,
        };
        let (g1, ids) = bulk_graph(&cfg);
        assert_eq!(g1.len(), 50_000);
        assert_eq!(ids.entities.len(), cfg.pool());
        assert_eq!(ids.predicates.len(), PREDICATES);
        let (g2, _) = bulk_graph(&cfg);
        assert_eq!(g2.len(), 50_000);
        let t1: Vec<_> = g1.iter_ids().collect();
        let t2: Vec<_> = g2.iter_ids().collect();
        assert_eq!(t1, t2);
    }

    #[test]
    fn small_pools_and_tiny_counts() {
        for triples in [0usize, 1, 2, 5] {
            let cfg = BulkConfig {
                triples,
                entities: 3,
                seed: 1,
            };
            let (g, _) = bulk_graph(&cfg);
            assert_eq!(g.len(), triples);
        }
    }

    #[test]
    fn subjects_are_clustered() {
        // ~4 triples per subject by default — the clustered regime the
        // compressed-run experiment relies on.
        let cfg = BulkConfig {
            triples: 8_000,
            entities: 0,
            seed: 3,
        };
        let (g, ids) = bulk_graph(&cfg);
        let per_subject = g.len() / ids.entities.len();
        assert!(per_subject >= 3, "expected clustering, got {per_subject}");
    }
}
