//! A tiny deterministic PRNG (SplitMix64) used by the workload
//! generators.
//!
//! The container this repository builds in has no access to crates.io, so
//! the generators cannot depend on the `rand` crate. SplitMix64 is more
//! than adequate here: workloads only need seeded, reproducible,
//! well-spread draws, not cryptographic quality. The API mirrors the
//! subset of `rand` the generators use (`seed_from_u64`, `gen_range`,
//! `gen_bool`), so swapping `rand` back in later is a one-line change.

/// A seeded SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct SeededRng {
    state: u64,
}

impl SeededRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SeededRng { state: seed }
    }

    /// The next raw 64-bit draw (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `range` (half-open). Empty ranges yield the
    /// start bound, matching the generators' `0..n.max(1)` call sites.
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        let span = range.end.saturating_sub(range.start);
        if span == 0 {
            return range.start;
        }
        // Multiply-shift rejection-free mapping; bias is negligible for
        // the small spans used by the generators.
        range.start + (self.next_u64() % span as u64) as usize
    }

    /// A Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// The seed matrix of a randomised test suite: the environment variable
/// `var` (comma-separated u64s, e.g. `RPS_LIVE_SEED=3,17,2026`)
/// overrides `defaults`, so CI can shard seeds across jobs. Shared by
/// `RPS_RECOVERY_SEED`, `RPS_FAULT_SEED` and `RPS_LIVE_SEED`.
///
/// # Panics
///
/// With a message naming `var` and the offending token if the variable
/// is set but any comma-separated token (including an empty one) is not
/// a u64 — a malformed sweep must fail loudly, not silently fall back
/// to the defaults.
pub fn seed_matrix(var: &str, defaults: &[u64]) -> Vec<u64> {
    match std::env::var(var) {
        Ok(s) => s
            .split(',')
            .map(|tok| {
                let tok = tok.trim();
                tok.parse().unwrap_or_else(|_| {
                    panic!(
                        "{var} must be comma-separated u64 seeds; \
                         bad token {tok:?} in {s:?}"
                    )
                })
            })
            .collect(),
        Err(_) => defaults.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = SeededRng::seed_from_u64(42);
        let mut b = SeededRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SeededRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(3..17);
            assert!((3..17).contains(&x));
        }
        assert_eq!(r.gen_range(5..5), 5);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SeededRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut r = SeededRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "hits = {hits}");
    }

    // Each seed_matrix test uses its own variable name: env mutations
    // are process-global and the test harness runs threads in parallel.

    #[test]
    fn seed_matrix_falls_back_to_defaults() {
        assert_eq!(seed_matrix("RPS_TEST_SEED_UNSET", &[1, 2]), vec![1, 2]);
    }

    #[test]
    fn seed_matrix_parses_the_override() {
        std::env::set_var("RPS_TEST_SEED_OK", " 3, 17 ,2026");
        assert_eq!(seed_matrix("RPS_TEST_SEED_OK", &[1]), vec![3, 17, 2026]);
    }

    #[test]
    #[should_panic(expected = "RPS_TEST_SEED_BAD must be comma-separated u64 seeds")]
    fn seed_matrix_rejects_malformed_input() {
        std::env::set_var("RPS_TEST_SEED_BAD", "3,x,5");
        seed_matrix("RPS_TEST_SEED_BAD", &[1]);
    }
}
