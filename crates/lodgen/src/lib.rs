//! # rps-lodgen — synthetic Linked Data workloads
//!
//! The paper evaluates nothing empirically (it is a theory-first workshop
//! report whose Section 5 defers a prototype and scalability study to
//! future work), and its running example uses hand-picked LOD-cloud
//! data. This crate supplies both:
//!
//! * [`paper`] — the Figure 1 / Example 2 fixture reproduced *exactly*,
//!   with Listing 1's expected answers;
//! * [`film`] — a seeded, parameterised film/people generator in the
//!   same shape (peers, person-pool overlap, `sameAs` density,
//!   hub-style existential mappings);
//! * [`topology`] — mapping topologies (chain, ring, star, clique,
//!   random, bidirectional chain) for the scalability experiments;
//! * [`chain`] — the Proposition 3 transitive-closure workload;
//! * [`queries`] — query generators for workload mixes;
//! * [`bulk`] — O(n) multi-million-triple single-graph generation for
//!   the sharded / morsel-scan experiments.

#![warn(missing_docs)]

pub mod bulk;
pub mod chain;
pub mod film;
pub mod paper;
pub mod people;
pub mod queries;
pub mod rng;
pub mod topology;

pub use bulk::{bulk_graph, BulkConfig, BulkIds};
pub use chain::{edge_query, endpoint_query, transitive_system};
pub use film::{actor_shape_query, film_system, peer_ns, FilmConfig};
pub use paper::{paper_example, query_from, PaperExample};
pub use people::{people_workload, PeopleConfig, PeopleWorkload};
pub use rng::{seed_matrix, SeededRng};
pub use topology::Topology;
