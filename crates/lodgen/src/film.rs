//! Parameterised film/people workload generator mirroring the shape of
//! the paper's Figure 1: several film sources with overlapping entities,
//! `sameAs` links between duplicated persons, and graph mapping
//! assertions along a configurable topology.
//!
//! Everything is seeded and deterministic, so experiments are exactly
//! reproducible.

use crate::rng::SeededRng;
use crate::topology::Topology;
use rps_core::{EquivalenceMapping, GraphMappingAssertion, Peer, PeerId, RdfPeerSystem};
use rps_query::{GraphPattern, GraphPatternQuery, TermOrVar, Variable};
use rps_rdf::{Graph, Iri, Term};

/// Configuration of a synthetic film workload.
#[derive(Clone, Debug)]
pub struct FilmConfig {
    /// Number of peers (sources).
    pub peers: usize,
    /// Films per peer.
    pub films_per_peer: usize,
    /// Actors per film (drawn from the shared person pool).
    pub actors_per_film: usize,
    /// Size of the shared person pool per peer.
    pub person_pool: usize,
    /// Number of `sameAs` links generated between consecutive peers'
    /// person entities.
    pub sameas_per_pair: usize,
    /// Mapping topology over the peers.
    pub topology: Topology,
    /// If set, peer 0 models films with the two-triple
    /// `starring`/`artist` shape (through a blank node) as in Figure 1's
    /// Source 1; mapping conclusions targeting peer 0 then contain an
    /// existential variable.
    pub hub_style: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FilmConfig {
    fn default() -> Self {
        FilmConfig {
            peers: 3,
            films_per_peer: 50,
            actors_per_film: 3,
            person_pool: 100,
            sameas_per_pair: 20,
            topology: Topology::Chain,
            hub_style: false,
            seed: 42,
        }
    }
}

/// The namespace of a generated peer.
pub fn peer_ns(peer: usize) -> String {
    format!("http://source{peer}.example.org/")
}

fn iri(peer: usize, local: &str) -> Term {
    Term::iri(format!("{}{local}", peer_ns(peer)))
}

/// The `actor` predicate of a peer.
pub fn actor_pred(peer: usize) -> Iri {
    Iri::new(format!("{}actor", peer_ns(peer)))
}

/// The `starring` predicate of the hub peer (hub style only).
pub fn starring_pred(peer: usize) -> Iri {
    Iri::new(format!("{}starring", peer_ns(peer)))
}

/// The `artist` predicate of the hub peer (hub style only).
pub fn artist_pred(peer: usize) -> Iri {
    Iri::new(format!("{}artist", peer_ns(peer)))
}

/// Generates the film system for a configuration.
pub fn film_system(cfg: &FilmConfig) -> RdfPeerSystem {
    assert!(cfg.peers >= 1, "need at least one peer");
    let mut rng = SeededRng::seed_from_u64(cfg.seed);
    let mut system = RdfPeerSystem::new();

    // --- Peer databases. ---
    for p in 0..cfg.peers {
        let mut g = Graph::new();
        // Intern the terms that repeat across triples (predicates, the
        // person pool) once up front, then assemble triples from ids —
        // the inner loop does no string formatting or re-hashing.
        let actor = g.intern(&Term::Iri(actor_pred(p)));
        let starring = g.intern(&Term::Iri(starring_pred(0)));
        let artist = g.intern(&Term::Iri(artist_pred(0)));
        let persons: Vec<rps_rdf::TermId> = (0..cfg.person_pool.max(1))
            .map(|i| g.intern(&iri(p, &format!("person{i}"))))
            .collect();
        for f in 0..cfg.films_per_peer {
            let film = g.intern(&iri(p, &format!("film{f}")));
            for a in 0..cfg.actors_per_film {
                let person_idx = rng.gen_range(0..cfg.person_pool.max(1));
                let person = persons[person_idx];
                if cfg.hub_style && p == 0 {
                    let blank = g.intern(&Term::blank(format!("c_{f}_{a}")));
                    g.insert_ids(rps_rdf::IdTriple::new(film, starring, blank));
                    g.insert_ids(rps_rdf::IdTriple::new(blank, artist, person));
                } else {
                    g.insert_ids(rps_rdf::IdTriple::new(film, actor, person));
                }
            }
        }
        system.add_peer(Peer::from_database(format!("source{p}"), g));
    }

    // --- sameAs-style equivalences between consecutive peers. ---
    for p in 0..cfg.peers.saturating_sub(1) {
        for _ in 0..cfg.sameas_per_pair {
            let person_idx = rng.gen_range(0..cfg.person_pool.max(1));
            let left = Iri::new(format!("{}person{person_idx}", peer_ns(p)));
            let right = Iri::new(format!("{}person{person_idx}", peer_ns(p + 1)));
            system.add_equivalence(EquivalenceMapping::new(left, right));
        }
    }

    // --- Graph mapping assertions along the topology. ---
    for (src, dst) in cfg.topology.edges(cfg.peers) {
        let premise = actor_shape_query(src, cfg.hub_style);
        let conclusion = actor_shape_query(dst, cfg.hub_style);
        system.add_assertion(
            GraphMappingAssertion::new(PeerId(src), PeerId(dst), premise, conclusion)
                .expect("generated mappings are well-formed"),
        );
    }

    system
}

/// The canonical "film casts person" query of a peer: single-triple
/// `actor` form, or the two-triple `starring`/`artist` form for a
/// hub-style peer 0.
pub fn actor_shape_query(peer: usize, hub_style: bool) -> GraphPatternQuery {
    let x = Variable::new("x");
    let y = Variable::new("y");
    if hub_style && peer == 0 {
        GraphPatternQuery::new(
            vec![x.clone(), y.clone()],
            GraphPattern::triple(
                TermOrVar::Var(x),
                TermOrVar::Term(Term::Iri(starring_pred(0))),
                TermOrVar::var("z"),
            )
            .and(GraphPattern::triple(
                TermOrVar::var("z"),
                TermOrVar::Term(Term::Iri(artist_pred(0))),
                TermOrVar::Var(y),
            )),
        )
    } else {
        GraphPatternQuery::new(
            vec![x.clone(), y.clone()],
            GraphPattern::triple(
                TermOrVar::Var(x),
                TermOrVar::Term(Term::Iri(actor_pred(peer))),
                TermOrVar::Var(y),
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rps_core::{chase_system, RpsChaseConfig};

    #[test]
    fn generation_is_deterministic() {
        let cfg = FilmConfig::default();
        let a = film_system(&cfg);
        let b = film_system(&cfg);
        assert_eq!(a.stored_database(), b.stored_database());
        assert_eq!(a.equivalences(), b.equivalences());
        assert_eq!(a.assertions().len(), b.assertions().len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = film_system(&FilmConfig::default());
        let b = film_system(&FilmConfig {
            seed: 43,
            ..FilmConfig::default()
        });
        assert_ne!(a.stored_database(), b.stored_database());
    }

    #[test]
    fn sizes_match_config() {
        let cfg = FilmConfig {
            peers: 4,
            films_per_peer: 10,
            actors_per_film: 2,
            person_pool: 30,
            sameas_per_pair: 5,
            topology: Topology::Chain,
            hub_style: false,
            seed: 7,
        };
        let sys = film_system(&cfg);
        assert_eq!(sys.peers().len(), 4);
        // Chain topology: 3 edges.
        assert_eq!(sys.assertions().len(), 3);
        // Each peer stores at most films*actors triples (duplicates
        // collapse under set semantics).
        for p in sys.peers() {
            assert!(p.size() <= 20);
            assert!(p.size() > 0);
        }
        assert!(sys.validate().is_ok());
    }

    #[test]
    fn hub_style_produces_existential_mappings() {
        let cfg = FilmConfig {
            peers: 3,
            films_per_peer: 5,
            actors_per_film: 1,
            person_pool: 10,
            sameas_per_pair: 3,
            topology: Topology::Star { hub: 0 },
            hub_style: true,
            seed: 1,
        };
        let sys = film_system(&cfg);
        assert!(sys.validate().is_ok());
        // Star edges point to the hub; conclusions have an existential z.
        for gma in sys.assertions() {
            assert_eq!(gma.target, PeerId(0));
            assert_eq!(gma.conclusion.existential_vars().len(), 1);
        }
        // And the chase still terminates (Theorem 1).
        let sol = chase_system(&sys, &RpsChaseConfig::default());
        assert!(sol.complete);
        assert!(sol.stats.blanks_created > 0);
    }

    #[test]
    fn chain_system_chases_to_fixpoint() {
        let sys = film_system(&FilmConfig {
            films_per_peer: 10,
            person_pool: 20,
            ..FilmConfig::default()
        });
        let sol = chase_system(&sys, &RpsChaseConfig::default());
        assert!(sol.complete);
        // The chain mappings push peer 0's casts into peer 2's vocabulary.
        let q = actor_shape_query(2, false);
        let ans = rps_query::evaluate_query(&sol.graph, &q, rps_query::Semantics::Certain);
        assert!(!ans.is_empty());
    }
}
