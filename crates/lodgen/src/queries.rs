//! Query generators for the synthetic workloads.

use crate::film::{actor_pred, artist_pred, peer_ns, starring_pred};
use crate::rng::SeededRng;
use rps_query::{GraphPattern, GraphPatternQuery, TermOrVar, Variable};
use rps_rdf::Term;

/// A star query over one peer's vocabulary: one film variable joined to
/// `k` actor variables, all returned.
///
/// `q(y1..yk) ← (x, actor_p, y1) AND … AND (x, actor_p, yk)`
pub fn costar_query(peer: usize, k: usize) -> GraphPatternQuery {
    assert!(k >= 1);
    let mut gp = GraphPattern::new();
    let mut free = Vec::new();
    for i in 0..k {
        let y = Variable::new(format!("y{i}"));
        gp.push(rps_query::TriplePattern::new(
            TermOrVar::var("x"),
            TermOrVar::Term(Term::Iri(actor_pred(peer))),
            TermOrVar::Var(y.clone()),
        ));
        free.push(y);
    }
    GraphPatternQuery::new(free, gp)
}

/// A fixed-subject lookup query, like Example 1's `DB1:Spiderman` anchor:
/// `q(y) ← (film_f, actor_p, y)`.
pub fn film_cast_query(peer: usize, film: usize) -> GraphPatternQuery {
    GraphPatternQuery::new(
        vec![Variable::new("y")],
        GraphPattern::triple(
            TermOrVar::Term(Term::iri(format!("{}film{film}", peer_ns(peer)))),
            TermOrVar::Term(Term::Iri(actor_pred(peer))),
            TermOrVar::var("y"),
        ),
    )
}

/// The hub-shape analogue of [`film_cast_query`] for hub-style peer 0:
/// `q(y) ← (film_f, starring, z) AND (z, artist, y)`.
pub fn hub_film_cast_query(film: usize) -> GraphPatternQuery {
    GraphPatternQuery::new(
        vec![Variable::new("y")],
        GraphPattern::triple(
            TermOrVar::Term(Term::iri(format!("{}film{film}", peer_ns(0)))),
            TermOrVar::Term(Term::Iri(starring_pred(0))),
            TermOrVar::var("z"),
        )
        .and(GraphPattern::triple(
            TermOrVar::var("z"),
            TermOrVar::Term(Term::Iri(artist_pred(0))),
            TermOrVar::var("y"),
        )),
    )
}

/// A batch of randomly anchored cast queries (seeded), used by the
/// chase-vs-rewrite crossover experiment (E9) to model a query workload.
pub fn random_cast_queries(
    peer: usize,
    films: usize,
    count: usize,
    seed: u64,
) -> Vec<GraphPatternQuery> {
    let mut rng = SeededRng::seed_from_u64(seed);
    (0..count)
        .map(|_| film_cast_query(peer, rng.gen_range(0..films.max(1))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costar_shapes() {
        let q = costar_query(1, 3);
        assert_eq!(q.arity(), 3);
        assert_eq!(q.pattern().len(), 3);
        // x is existential.
        assert_eq!(q.existential_vars().len(), 1);
    }

    #[test]
    fn film_cast_anchoring() {
        let q = film_cast_query(2, 7);
        let consts = q.pattern().constants();
        assert!(consts.contains(&Term::iri("http://source2.example.org/film7")));
    }

    #[test]
    fn hub_query_has_two_patterns() {
        let q = hub_film_cast_query(0);
        assert_eq!(q.pattern().len(), 2);
        assert_eq!(q.arity(), 1);
    }

    #[test]
    fn random_queries_are_seeded() {
        let a = random_cast_queries(0, 10, 5, 3);
        let b = random_cast_queries(0, 10, 5, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
    }
}
