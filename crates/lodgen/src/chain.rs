//! The Proposition 3 workload: a mapping assertion encoding transitive
//! closure, which no finite FO (UCQ) rewriting can capture.
//!
//! The system has a single peer storing an edge chain
//! `n0 —A→ n1 —A→ … —A→ nL` and one self-mapping
//! `q(x,y) ← (x,A,z) AND (z,A,y)  ⇝  q(x,y) ← (x,A,y)`:
//! every 2-hop pair must also be a direct edge, i.e. `A` is transitively
//! closed in every solution.

use rps_core::{GraphMappingAssertion, Peer, PeerId, RdfPeerSystem};
use rps_query::{GraphPattern, GraphPatternQuery, TermOrVar, Variable};
use rps_rdf::{Graph, Term};

/// Namespace of the chain peer.
pub const NS: &str = "http://chain.example.org/";

/// The edge predicate `A`.
pub fn edge_pred() -> Term {
    Term::iri(format!("{NS}A"))
}

/// The i-th chain node.
pub fn node(i: usize) -> Term {
    Term::iri(format!("{NS}n{i}"))
}

/// Builds the transitive-closure system over a chain of `len` edges
/// (`len + 1` nodes).
pub fn transitive_system(len: usize) -> RdfPeerSystem {
    let mut g = Graph::new();
    for i in 0..len {
        g.insert_terms(node(i), edge_pred(), node(i + 1))
            .expect("valid chain triple");
    }
    let mut system = RdfPeerSystem::new();
    let p = system.add_peer(Peer::from_database("chain", g));
    system.add_assertion(two_hop_assertion(p));
    system
}

/// The `(x,A,z) AND (z,A,y) ⇝ (x,A,y)` assertion.
pub fn two_hop_assertion(peer: PeerId) -> GraphMappingAssertion {
    let premise = GraphPatternQuery::new(
        vec![Variable::new("x"), Variable::new("y")],
        GraphPattern::triple(
            TermOrVar::var("x"),
            TermOrVar::Term(edge_pred()),
            TermOrVar::var("z"),
        )
        .and(GraphPattern::triple(
            TermOrVar::var("z"),
            TermOrVar::Term(edge_pred()),
            TermOrVar::var("y"),
        )),
    );
    let conclusion = GraphPatternQuery::new(
        vec![Variable::new("x"), Variable::new("y")],
        GraphPattern::triple(
            TermOrVar::var("x"),
            TermOrVar::Term(edge_pred()),
            TermOrVar::var("y"),
        ),
    );
    GraphMappingAssertion::new(peer, peer, premise, conclusion)
        .expect("well-formed transitive assertion")
}

/// The reachability query `q(x, y) ← (x, A, y)`.
pub fn edge_query() -> GraphPatternQuery {
    GraphPatternQuery::new(
        vec![Variable::new("x"), Variable::new("y")],
        GraphPattern::triple(
            TermOrVar::var("x"),
            TermOrVar::Term(edge_pred()),
            TermOrVar::var("y"),
        ),
    )
}

/// The Boolean endpoint query `q() ← (n0, A, nL)`.
pub fn endpoint_query(len: usize) -> GraphPatternQuery {
    GraphPatternQuery::boolean(GraphPattern::triple(
        TermOrVar::Term(node(0)),
        TermOrVar::Term(edge_pred()),
        TermOrVar::Term(node(len)),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rps_core::{certain_answers, chase_system, RpsChaseConfig};

    #[test]
    fn chase_computes_transitive_closure() {
        let sys = transitive_system(6);
        let sol = chase_system(&sys, &RpsChaseConfig::default());
        assert!(sol.complete);
        // 7 nodes: 7*6/2 = 21 ordered reachable pairs.
        let ans = certain_answers(&sol, &edge_query());
        assert_eq!(ans.len(), 21);
        assert!(ans.tuples.contains(&vec![node(0), node(6)]));
    }

    #[test]
    fn mapping_tgds_are_not_fo_rewritable_class() {
        // The encoded mapping TGD is neither linear nor sticky
        // (Section 4's marking argument).
        let sys = transitive_system(3);
        let de = rps_core::encode_system(&sys);
        assert!(!rps_tgd::is_linear(&de.mapping_tgds_unguarded));
        assert!(!rps_tgd::is_sticky(&de.mapping_tgds_unguarded));
        let cl = rps_tgd::Classification::of(&de.mapping_tgds_unguarded);
        assert!(!cl.fo_rewritable());
    }

    #[test]
    fn bounded_rewriting_misses_long_chains() {
        use rps_core::RpsRewriter;
        use rps_tgd::RewriteConfig;
        let len = 20;
        let sys = transitive_system(len);
        let mut rw = RpsRewriter::new(&sys);
        assert!(!rw.fo_rewritable());
        let cfg = RewriteConfig {
            max_depth: 2,
            max_cqs: 2_000,
        };
        // Short endpoints reachable within the depth bound are found...
        assert!(rw.is_certain_answer(&edge_query(), &[node(0), node(2)], &cfg));
        // ...but the far endpoint is not, although the chase proves it.
        assert!(!rw.is_certain_answer(&edge_query(), &[node(0), node(len)], &cfg));
        let sol = chase_system(&sys, &RpsChaseConfig::default());
        let ans = certain_answers(&sol, &edge_query());
        assert!(ans.tuples.contains(&vec![node(0), node(len)]));
    }

    #[test]
    fn endpoint_query_shape() {
        let q = endpoint_query(5);
        assert_eq!(q.arity(), 0);
        assert!(q.pattern().vars().is_empty());
    }
}
