//! A people-deduplication workload with known ground truth, for the
//! mapping-discovery experiment (E11, paper future-work item 3).
//!
//! Each peer describes a set of persons with `name` / `born` / `city`
//! literals. A configurable fraction of persons is *duplicated* across
//! consecutive peers under different IRIs — those duplicates are the
//! ground-truth equivalences a discovery algorithm should find. Noise
//! persons share a city (a popular, non-distinctive value) but have
//! unique names and birth dates.

use crate::rng::SeededRng;
use rps_core::{EquivalenceMapping, Peer, RdfPeerSystem};
use rps_rdf::{Graph, Iri, Term};

/// Configuration for the people workload.
#[derive(Clone, Debug)]
pub struct PeopleConfig {
    /// Number of peers.
    pub peers: usize,
    /// Persons per peer.
    pub persons_per_peer: usize,
    /// Fraction (0..=1) of persons duplicated into the next peer.
    pub duplicate_fraction: f64,
    /// Number of distinct city literals (small = popular values).
    pub cities: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PeopleConfig {
    fn default() -> Self {
        PeopleConfig {
            peers: 3,
            persons_per_peer: 40,
            duplicate_fraction: 0.3,
            cities: 5,
            seed: 11,
        }
    }
}

/// The generated workload: the system plus ground-truth equivalences.
pub struct PeopleWorkload {
    /// The peer system (no equivalence mappings installed — discovery is
    /// supposed to find them).
    pub system: RdfPeerSystem,
    /// The true `≡ₑ` mappings (canonicalised).
    pub truth: Vec<EquivalenceMapping>,
}

fn ns(peer: usize) -> String {
    format!("http://people{peer}.example.org/")
}

/// Generates the workload.
pub fn people_workload(cfg: &PeopleConfig) -> PeopleWorkload {
    let mut rng = SeededRng::seed_from_u64(cfg.seed);
    let mut system = RdfPeerSystem::new();

    // Global person identities: each has a unique (name, born) pair.
    let mut next_identity = 0usize;
    // Every occurrence of each identity, as (peer, local index); the
    // ground truth is all cross-peer pairs of occurrences — discovery is
    // expected to find transitive duplicates too.
    let mut occurrences: Vec<Vec<(usize, usize)>> = Vec::new();
    // Persons of the previous peer for duplication sampling.
    let mut previous: Vec<(usize, usize)> = Vec::new();

    for p in 0..cfg.peers {
        let mut g = Graph::new();
        let mut current: Vec<(usize, usize)> = Vec::new();
        for local in 0..cfg.persons_per_peer {
            // Duplicate a person from the previous peer with the given
            // probability (as long as any are left to copy).
            let identity =
                if !previous.is_empty() && rng.gen_bool(cfg.duplicate_fraction.clamp(0.0, 1.0)) {
                    previous[rng.gen_range(0..previous.len())].0
                } else {
                    next_identity += 1;
                    next_identity - 1
                };
            if occurrences.len() <= identity {
                occurrences.resize(identity + 1, Vec::new());
            }
            occurrences[identity].push((p, local));
            current.push((identity, local));

            let subject = Term::iri(format!("{}person{local}", ns(p)));
            let pred = |name: &str| Term::iri(format!("{}{name}", ns(p)));
            g.insert_terms(
                subject.clone(),
                pred("name"),
                Term::literal(format!("Person #{identity}")),
            )
            .expect("valid");
            g.insert_terms(
                subject.clone(),
                pred("born"),
                Term::literal(format!(
                    "19{:02}-0{}-1{}",
                    identity % 90,
                    identity % 9 + 1,
                    identity % 8
                )),
            )
            .expect("valid");
            g.insert_terms(
                subject,
                pred("city"),
                Term::literal(format!("City {}", rng.gen_range(0..cfg.cities.max(1)))),
            )
            .expect("valid");
        }
        system.add_peer(Peer::from_database(format!("people{p}"), g));
        previous = current;
    }
    let mut truth = Vec::new();
    for occ in &occurrences {
        for i in 0..occ.len() {
            for j in (i + 1)..occ.len() {
                let (pa, la) = occ[i];
                let (pb, lb) = occ[j];
                if pa != pb {
                    truth.push(
                        EquivalenceMapping::new(
                            Iri::new(format!("{}person{la}", ns(pa))),
                            Iri::new(format!("{}person{lb}", ns(pb))),
                        )
                        .canonical(),
                    );
                }
            }
        }
    }
    truth.sort();
    truth.dedup();
    PeopleWorkload { system, truth }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rps_core::{discover, evaluate_discovery, DiscoveryConfig};

    #[test]
    fn workload_is_deterministic() {
        let a = people_workload(&PeopleConfig::default());
        let b = people_workload(&PeopleConfig::default());
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.system.stored_database(), b.system.stored_database());
    }

    #[test]
    fn duplicates_exist_and_are_cross_peer() {
        let w = people_workload(&PeopleConfig::default());
        assert!(!w.truth.is_empty());
        for eq in &w.truth {
            assert_ne!(
                eq.left.as_str().split("person").next(),
                eq.right.as_str().split("person").next(),
                "ground truth links different peers"
            );
        }
    }

    #[test]
    fn discovery_finds_most_duplicates() {
        let w = people_workload(&PeopleConfig::default());
        let candidates = discover(&w.system, &DiscoveryConfig::default());
        let q = evaluate_discovery(&candidates, &w.truth);
        assert!(q.precision >= 0.9, "precision {q:?}");
        assert!(q.recall >= 0.9, "recall {q:?}");
    }

    #[test]
    fn zero_duplicates_zero_truth() {
        let w = people_workload(&PeopleConfig {
            duplicate_fraction: 0.0,
            ..PeopleConfig::default()
        });
        assert!(w.truth.is_empty());
        let candidates = discover(&w.system, &DiscoveryConfig::default());
        let q = evaluate_discovery(&candidates, &w.truth);
        assert_eq!(q.proposed, 0, "no spurious pairs: {candidates:?}");
        let _ = q;
    }
}
