//! The paper's running example, reproduced exactly: Figure 1's three
//! sources, Example 2's RPS, Example 1's query, and Listing 1's expected
//! answers.

use rps_core::{PeerId, RdfPeerSystem, RpsBuilder};
use rps_query::{parse_query, GraphPatternQuery, Query};
use rps_rdf::{PrefixMap, Term};
use std::collections::BTreeSet;

/// Namespace of Source 1 (`DB1:`).
pub const DB1: &str = "http://db1.example.org/";
/// Namespace of Source 2 (`DB2:`).
pub const DB2: &str = "http://db2.example.org/";
/// Namespace of Source 3 (`foaf:`).
pub const FOAF: &str = "http://xmlns.com/foaf/0.1/";
/// Shared property vocabulary (the paper writes `starring`, `artist`,
/// `age`, `actor` unprefixed).
pub const V: &str = "http://vocab.example.org/";

/// The fully assembled paper example.
pub struct PaperExample {
    /// The RPS of Example 2 (three peers, one graph mapping assertion,
    /// equivalence mappings imported from the `owl:sameAs` triples).
    pub system: RdfPeerSystem,
    /// Prefixes for parsing/rendering queries.
    pub prefixes: PrefixMap,
    /// The SPARQL text of the Example 1 query.
    pub query_text: &'static str,
    /// The Example 1 query as a graph pattern query.
    pub query: GraphPatternQuery,
    /// Listing 1's six expected rows (with redundancy).
    pub expected_full: BTreeSet<Vec<Term>>,
    /// Listing 1's three expected rows after redundancy elimination.
    pub expected_lean: BTreeSet<Vec<Term>>,
}

/// Builds the paper example.
pub fn paper_example() -> PaperExample {
    let mut prefixes = PrefixMap::new();
    prefixes.insert("db1", DB1);
    prefixes.insert("db2", DB2);
    prefixes.insert("foaf", FOAF);
    prefixes.insert("v", V);
    prefixes.insert("owl", "http://www.w3.org/2002/07/owl#");

    // --- Figure 1, Source 1: films in DB1 vocabulary. ---
    let source1 = format!(
        "@prefix db1: <{DB1}> .\n\
         @prefix db2: <{DB2}> .\n\
         @prefix v: <{V}> .\n\
         @prefix owl: <http://www.w3.org/2002/07/owl#> .\n\
         db1:Spiderman v:starring _:z1 .\n\
         _:z1 v:artist db1:Toby_Maguire .\n\
         db1:Spiderman v:starring _:z2 .\n\
         _:z2 v:artist db1:Kirsten_Dunst .\n\
         db1:Spiderman owl:sameAs db2:Spiderman2002 .\n"
    );

    // --- Figure 1, Source 2: films in DB2 vocabulary. ---
    // Pleasantville's actor is unknown (a blank node): its premise tuple
    // contains a blank and therefore must NOT fire the mapping — the `rt`
    // guard of Section 3 in action.
    let source2 = format!(
        "@prefix db2: <{DB2}> .\n\
         @prefix v: <{V}> .\n\
         db2:Spiderman2002 v:actor db2:Willem_Dafoe .\n\
         db2:Pleasantville v:actor _:unknown .\n"
    );

    // --- Figure 1, Source 3: people and their properties. ---
    let source3 = format!(
        "@prefix db1: <{DB1}> .\n\
         @prefix db2: <{DB2}> .\n\
         @prefix foaf: <{FOAF}> .\n\
         @prefix v: <{V}> .\n\
         @prefix owl: <http://www.w3.org/2002/07/owl#> .\n\
         foaf:Toby_Maguire v:age \"39\" .\n\
         foaf:Kirsten_Dunst v:age \"32\" .\n\
         foaf:Willem_Dafoe v:age \"59\" .\n\
         foaf:Toby_Maguire owl:sameAs db1:Toby_Maguire .\n\
         foaf:Kirsten_Dunst owl:sameAs db1:Kirsten_Dunst .\n\
         foaf:Willem_Dafoe owl:sameAs db2:Willem_Dafoe .\n"
    );

    // --- Example 2's single graph mapping assertion: Q2 ⇝ Q1. ---
    // Q2 := q(x, y) ← (x, actor, y)        (over Source 2)
    // Q1 := q(x, y) ← (x, starring, z) AND (z, artist, y)  (over Source 1)
    let q2 = query_from(&prefixes, "SELECT ?x ?y WHERE { ?x v:actor ?y }");
    let q1 = query_from(
        &prefixes,
        "SELECT ?x ?y WHERE { ?x v:starring ?z . ?z v:artist ?y }",
    );

    let mut s1 = PeerId(0);
    let mut s2 = PeerId(0);
    let mut s3 = PeerId(0);
    let system = RpsBuilder::new()
        .peer_turtle("Source 1", &source1, &mut s1)
        .expect("source 1 parses")
        .peer_turtle("Source 2", &source2, &mut s2)
        .expect("source 2 parses")
        .peer_turtle("Source 3", &source3, &mut s3)
        .expect("source 3 parses")
        .assertion(s2, s1, q2, q1)
        .expect("assertion arities agree")
        .import_same_as()
        .build();

    // --- Example 1's query. ---
    let query_text =
        "SELECT ?x ?y WHERE { db1:Spiderman v:starring ?z . ?z v:artist ?x . ?x v:age ?y }";
    let query = query_from(&prefixes, query_text);

    let iri = |ns: &str, local: &str| Term::iri(format!("{ns}{local}"));
    let lit = |s: &str| Term::literal(s);
    let expected_full: BTreeSet<Vec<Term>> = [
        vec![iri(DB1, "Toby_Maguire"), lit("39")],
        vec![iri(FOAF, "Toby_Maguire"), lit("39")],
        vec![iri(DB1, "Kirsten_Dunst"), lit("32")],
        vec![iri(FOAF, "Kirsten_Dunst"), lit("32")],
        vec![iri(DB2, "Willem_Dafoe"), lit("59")],
        vec![iri(FOAF, "Willem_Dafoe"), lit("59")],
    ]
    .into_iter()
    .collect();
    let expected_lean: BTreeSet<Vec<Term>> = [
        vec![iri(DB1, "Toby_Maguire"), lit("39")],
        vec![iri(DB1, "Kirsten_Dunst"), lit("32")],
        vec![iri(DB2, "Willem_Dafoe"), lit("59")],
    ]
    .into_iter()
    .collect();

    PaperExample {
        system,
        prefixes,
        query_text,
        query,
        expected_full,
        expected_lean,
    }
}

/// Parses a SELECT query into a [`GraphPatternQuery`] (single branch).
pub fn query_from(prefixes: &PrefixMap, text: &str) -> GraphPatternQuery {
    match parse_query(text, prefixes).expect("query parses") {
        Query::Select(u) => {
            assert_eq!(u.branches().len(), 1, "expected a conjunctive query");
            GraphPatternQuery::new(u.free_vars().to_vec(), u.branches()[0].clone())
        }
        Query::Ask(_) => panic!("expected SELECT"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rps_core::{certain_answers, chase_system, EquivalenceIndex, RpsChaseConfig};
    use rps_query::{evaluate_query, Semantics};

    #[test]
    fn fixture_shape() {
        let ex = paper_example();
        assert_eq!(ex.system.peers().len(), 3);
        assert_eq!(ex.system.assertions().len(), 1);
        // 4 sameAs links in the data.
        assert_eq!(ex.system.equivalences().len(), 4);
        assert!(ex.system.validate().is_ok());
    }

    #[test]
    fn example1_query_is_empty_on_stored_data() {
        // "This query returns an empty result on the data of Figure 1."
        let ex = paper_example();
        let stored = ex.system.stored_database();
        let ans = evaluate_query(&stored, &ex.query, Semantics::Certain);
        assert!(ans.is_empty());
    }

    #[test]
    fn listing1_rows_over_universal_solution() {
        let ex = paper_example();
        let sol = chase_system(&ex.system, &RpsChaseConfig::default());
        assert!(sol.complete);
        let ans = certain_answers(&sol, &ex.query);
        assert_eq!(ans.tuples, ex.expected_full);
    }

    #[test]
    fn listing1_without_redundancy() {
        let ex = paper_example();
        let sol = chase_system(&ex.system, &RpsChaseConfig::default());
        let ans = certain_answers(&sol, &ex.query);
        let index = EquivalenceIndex::from_mappings(ex.system.equivalences());
        let lean = ans.without_redundancy(&index);
        assert_eq!(lean.tuples, ex.expected_lean);
    }

    #[test]
    fn pleasantville_blank_does_not_fire() {
        let ex = paper_example();
        let sol = chase_system(&ex.system, &RpsChaseConfig::default());
        // Pleasantville never gains a starring edge: its only actor tuple
        // contains a blank node.
        let q = query_from(
            &ex.prefixes,
            "SELECT ?z WHERE { db2:Pleasantville v:starring ?z }",
        );
        let ans = evaluate_query(&sol.graph, &q, Semantics::Star);
        assert!(ans.is_empty());
    }
}
