//! Mapping topologies between peers.
//!
//! The paper's motivation is that the LOD cloud has *arbitrary* mapping
//! topologies — possibly with cycles — which defeats two-tiered rewriting
//! systems. The generators here produce the standard shapes used by the
//! scalability experiments (E8).

use crate::rng::SeededRng;

/// A mapping topology over `n` peers, yielding directed edges
/// `(source, target)`.
#[derive(Clone, Debug, PartialEq)]
pub enum Topology {
    /// `0 → 1 → 2 → …` (acyclic chain).
    Chain,
    /// A chain closed into a cycle: `0 → 1 → … → n-1 → 0`. Exercises the
    /// mapping-cycle scenario that motivates the paper.
    Ring,
    /// Every non-hub peer maps into the hub.
    Star {
        /// Index of the hub peer.
        hub: usize,
    },
    /// Every ordered pair of distinct peers.
    Clique,
    /// Each ordered pair `(i, j)`, `i ≠ j`, is an edge with probability
    /// `edge_prob` (seeded).
    Random {
        /// Edge probability in `[0, 1]`.
        edge_prob: f64,
        /// RNG seed.
        seed: u64,
    },
    /// Bidirectional chain: `i → i+1` and `i+1 → i`. Small cycles
    /// everywhere.
    BidiChain,
}

impl Topology {
    /// The directed edges of the topology over `n` peers.
    pub fn edges(&self, n: usize) -> Vec<(usize, usize)> {
        match self {
            Topology::Chain => (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect(),
            Topology::Ring => {
                if n < 2 {
                    return Vec::new();
                }
                (0..n).map(|i| (i, (i + 1) % n)).collect()
            }
            Topology::Star { hub } => (0..n).filter(|&i| i != *hub).map(|i| (i, *hub)).collect(),
            Topology::Clique => {
                let mut out = Vec::with_capacity(n * n.saturating_sub(1));
                for i in 0..n {
                    for j in 0..n {
                        if i != j {
                            out.push((i, j));
                        }
                    }
                }
                out
            }
            Topology::Random { edge_prob, seed } => {
                let mut rng = SeededRng::seed_from_u64(*seed);
                let mut out = Vec::new();
                for i in 0..n {
                    for j in 0..n {
                        if i != j && rng.gen_bool(edge_prob.clamp(0.0, 1.0)) {
                            out.push((i, j));
                        }
                    }
                }
                out
            }
            Topology::BidiChain => {
                let mut out = Vec::new();
                for i in 0..n.saturating_sub(1) {
                    out.push((i, i + 1));
                    out.push((i + 1, i));
                }
                out
            }
        }
    }

    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Topology::Chain => "chain",
            Topology::Ring => "ring",
            Topology::Star { .. } => "star",
            Topology::Clique => "clique",
            Topology::Random { .. } => "random",
            Topology::BidiChain => "bidi-chain",
        }
    }

    /// `true` iff the topology contains a directed cycle (for reporting:
    /// cyclic topologies are the ones two-tier rewriting cannot handle).
    pub fn is_cyclic(&self, n: usize) -> bool {
        // Small n: just run a DFS over the edge list.
        let edges = self.edges(n);
        let mut adj = vec![Vec::new(); n];
        for (a, b) in edges {
            adj[a].push(b);
        }
        // 0 = unvisited, 1 = on stack, 2 = done.
        let mut state = vec![0u8; n];
        fn dfs(v: usize, adj: &[Vec<usize>], state: &mut [u8]) -> bool {
            state[v] = 1;
            for &w in &adj[v] {
                if state[w] == 1 || (state[w] == 0 && dfs(w, adj, state)) {
                    return true;
                }
            }
            state[v] = 2;
            false
        }
        (0..n).any(|v| state[v] == 0 && dfs(v, &adj, &mut state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_edges() {
        assert_eq!(Topology::Chain.edges(3), vec![(0, 1), (1, 2)]);
        assert!(Topology::Chain.edges(1).is_empty());
        assert!(!Topology::Chain.is_cyclic(5));
    }

    #[test]
    fn ring_edges_and_cycle() {
        assert_eq!(Topology::Ring.edges(3), vec![(0, 1), (1, 2), (2, 0)]);
        assert!(Topology::Ring.is_cyclic(3));
        assert!(Topology::Ring.edges(1).is_empty());
    }

    #[test]
    fn star_edges() {
        let e = Topology::Star { hub: 1 }.edges(3);
        assert_eq!(e, vec![(0, 1), (2, 1)]);
        assert!(!Topology::Star { hub: 0 }.is_cyclic(4));
    }

    #[test]
    fn clique_edges() {
        let e = Topology::Clique.edges(3);
        assert_eq!(e.len(), 6);
        assert!(Topology::Clique.is_cyclic(3));
    }

    #[test]
    fn random_is_seeded() {
        let t1 = Topology::Random {
            edge_prob: 0.5,
            seed: 9,
        };
        let t2 = Topology::Random {
            edge_prob: 0.5,
            seed: 9,
        };
        assert_eq!(t1.edges(6), t2.edges(6));
        let empty = Topology::Random {
            edge_prob: 0.0,
            seed: 9,
        };
        assert!(empty.edges(6).is_empty());
        let full = Topology::Random {
            edge_prob: 1.0,
            seed: 9,
        };
        assert_eq!(full.edges(4).len(), 12);
    }

    #[test]
    fn bidi_chain_cycles() {
        let e = Topology::BidiChain.edges(3);
        assert_eq!(e.len(), 4);
        assert!(Topology::BidiChain.is_cyclic(3));
    }
}
