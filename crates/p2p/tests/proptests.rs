//! Randomised property tests for the federation wire format: encoding
//! followed by decoding is the identity on every message kind, and the
//! decoder survives arbitrary corruption without panicking.
//!
//! Seeded SplitMix64 case generation stands in for `proptest` (no
//! crates.io access in the build container); the invariants are the
//! same. Ids are drawn across the full `u32` range on purpose: answer
//! batches may carry overlay ids past any dictionary's length (the
//! prepared-plan head constants), and the codec must treat ids as
//! opaque.

use rps_p2p::wire::{
    decode, decode_payload, encode, WireBatch, WireFault, WireMessage, WireRequest, WireSlot,
};
use rps_rdf::TermId;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Ids spanning the interesting ranges: dense engine ids, varint width
/// boundaries, and overlay ids far past any dictionary length.
fn arb_id(rng: &mut Rng) -> TermId {
    TermId(match rng.below(6) {
        0 => rng.below(8) as u32,
        1 => 127,
        2 => 128,
        3 => 16_384 + rng.below(100) as u32,
        4 => u32::MAX - rng.below(3) as u32,
        _ => rng.next() as u32,
    })
}

fn arb_slot(rng: &mut Rng) -> WireSlot {
    match rng.below(3) {
        0 => WireSlot::Var(rng.below(256) as u8),
        1 => WireSlot::Const(arb_id(rng)),
        _ => WireSlot::Unresolved,
    }
}

fn arb_request(rng: &mut Rng) -> WireRequest {
    WireRequest {
        attempt: match rng.below(3) {
            0 => 1 + rng.below(4) as u32,
            1 => 1 + rng.below(300) as u32,
            _ => u32::MAX - rng.below(2) as u32,
        },
        slots: [arb_slot(rng), arb_slot(rng), arb_slot(rng)],
    }
}

fn arb_batch(rng: &mut Rng) -> WireBatch {
    // Width 0 is legal (fully-constant patterns answer with empty
    // rows); small widths dominate real traffic.
    let width = match rng.below(4) {
        0 => 0,
        _ => 1 + rng.below(4) as u8,
    };
    let rows = (0..rng.below(40))
        .map(|_| (0..width).map(|_| arb_id(rng)).collect())
        .collect();
    WireBatch { width, rows }
}

fn arb_fault(rng: &mut Rng) -> WireFault {
    let messages = [
        "",
        "injected transient error",
        "peer id 9 outside its dictionary",
        "ü–∂ non-ascii detail ✓",
    ];
    WireFault {
        transient: rng.below(2) == 0,
        message: messages[rng.below(messages.len())].to_string(),
    }
}

fn arb_message(rng: &mut Rng) -> WireMessage {
    match rng.below(3) {
        0 => WireMessage::Request(arb_request(rng)),
        1 => WireMessage::Batch(arb_batch(rng)),
        _ => WireMessage::Fault(arb_fault(rng)),
    }
}

const CASES: u64 = 128;

#[test]
fn encode_then_decode_is_identity() {
    for seed in 0..CASES {
        let rng = &mut Rng(seed);
        let msg = arb_message(rng);
        let frame = encode(&msg);
        assert_eq!(decode(&frame).expect("round-trips"), msg, "seed {seed}");
        // The payload decoder (what the TCP reader uses after consuming
        // the length prefix itself) must agree with the frame decoder.
        assert_eq!(decode_payload(&frame[4..]).expect("round-trips"), msg);
    }
}

#[test]
fn requests_round_trip_attempt_and_every_slot_shape() {
    for seed in 0..CASES {
        let rng = &mut Rng(seed ^ 0xA77E);
        let req = arb_request(rng);
        let frame = encode(&WireMessage::Request(req));
        match decode(&frame).expect("round-trips") {
            WireMessage::Request(back) => {
                assert_eq!(back, req, "seed {seed}");
                assert_eq!(back.width(), req.width());
                assert_eq!(back.resolved(), req.resolved());
                // The fingerprint keys fault draws and jitter: it must
                // survive the wire unchanged, and ignore the attempt.
                assert_eq!(back.fingerprint(), req.fingerprint());
                let retry = WireRequest {
                    attempt: req.attempt.wrapping_add(1).max(1),
                    ..req
                };
                assert_eq!(retry.fingerprint(), req.fingerprint());
            }
            other => panic!("seed {seed}: expected a request, got {other:?}"),
        }
    }
}

#[test]
fn batches_round_trip_including_empty_and_overlay_ids() {
    for seed in 0..CASES {
        let rng = &mut Rng(seed ^ 0xBA7C);
        let batch = arb_batch(rng);
        let frame = encode(&WireMessage::Batch(batch.clone()));
        match decode(&frame).expect("round-trips") {
            WireMessage::Batch(back) => assert_eq!(back, batch, "seed {seed}"),
            other => panic!("seed {seed}: expected a batch, got {other:?}"),
        }
    }
    // The edge cases pinned explicitly: an empty answer, a width-0
    // answer with matches, and ids at the top of the u32 range (far
    // past every dictionary).
    for batch in [
        WireBatch {
            width: 0,
            rows: vec![],
        },
        WireBatch {
            width: 0,
            rows: vec![vec![]; 7],
        },
        WireBatch {
            width: 3,
            rows: vec![vec![TermId(0), TermId(u32::MAX), TermId(1 << 31)]],
        },
    ] {
        let frame = encode(&WireMessage::Batch(batch.clone()));
        assert_eq!(decode(&frame).unwrap(), WireMessage::Batch(batch));
    }
}

#[test]
fn every_truncation_is_a_typed_error_never_a_panic() {
    for seed in 0..CASES {
        let rng = &mut Rng(seed ^ 0x7235);
        let frame = encode(&arb_message(rng));
        for cut in 0..frame.len() {
            assert!(decode(&frame[..cut]).is_err(), "seed {seed} cut {cut}");
        }
    }
}

#[test]
fn corrupted_and_garbage_frames_never_panic() {
    for seed in 0..CASES {
        let rng = &mut Rng(seed ^ 0xC0DE);
        // Pure garbage of arbitrary length.
        let garbage: Vec<u8> = (0..rng.below(64)).map(|_| rng.next() as u8).collect();
        let _ = decode(&garbage);
        // A valid frame with one byte flipped: may decode to a
        // different message or error, but must never panic and never
        // over-read.
        let mut frame = encode(&arb_message(rng));
        let at = rng.below(frame.len());
        frame[at] ^= 1 << rng.below(8);
        let _ = decode(&frame);
        let _ = decode_payload(&frame[4.min(frame.len())..]);
    }
}

#[test]
fn extended_frames_are_rejected() {
    // Trailing bytes after a complete message must not be silently
    // ignored — the length prefix and the payload must agree exactly.
    for seed in 0..CASES {
        let rng = &mut Rng(seed ^ 0x7A11);
        let mut frame = encode(&arb_message(rng));
        frame.push(0);
        assert!(decode(&frame).is_err(), "seed {seed}");
    }
}
