//! Schema-based query routing.
//!
//! Each peer's schema is the set of IRIs it uses (Section 2.2), so a
//! triple pattern can only match at peers whose schema contains the
//! pattern's constant IRIs. The router maintains an inverted index from
//! IRI to peers and prunes the fan-out of federated evaluation.

use rps_core::{PeerId, RdfPeerSystem};
use rps_query::{TermOrVar, TriplePattern};
use rps_rdf::{Iri, Term};
use std::collections::{BTreeSet, HashMap};

/// Inverted index `IRI → peers that know it`.
#[derive(Clone, Debug, Default)]
pub struct SchemaIndex {
    by_iri: HashMap<Iri, BTreeSet<PeerId>>,
    all_peers: BTreeSet<PeerId>,
}

impl SchemaIndex {
    /// Builds the index from a system's peer schemas.
    pub fn build(system: &RdfPeerSystem) -> Self {
        let mut by_iri: HashMap<Iri, BTreeSet<PeerId>> = HashMap::new();
        let mut all_peers = BTreeSet::new();
        for (idx, peer) in system.peers().iter().enumerate() {
            let id = PeerId(idx);
            all_peers.insert(id);
            for iri in &peer.schema {
                by_iri.entry(iri.clone()).or_default().insert(id);
            }
        }
        SchemaIndex { by_iri, all_peers }
    }

    /// Peers whose schema contains the IRI.
    pub fn peers_for(&self, iri: &Iri) -> BTreeSet<PeerId> {
        self.by_iri.get(iri).cloned().unwrap_or_default()
    }

    /// Peers that can possibly match a triple pattern: the intersection
    /// of the peer sets of all constant IRIs in the pattern (all peers if
    /// the pattern has no IRI constants).
    pub fn route(&self, pattern: &TriplePattern) -> BTreeSet<PeerId> {
        let mut candidates: Option<BTreeSet<PeerId>> = None;
        for tv in [&pattern.s, &pattern.p, &pattern.o] {
            if let TermOrVar::Term(Term::Iri(iri)) = tv {
                let peers = self.peers_for(iri);
                candidates = Some(match candidates {
                    None => peers,
                    Some(prev) => prev.intersection(&peers).cloned().collect(),
                });
            }
        }
        candidates.unwrap_or_else(|| self.all_peers.clone())
    }

    /// Number of indexed IRIs.
    pub fn len(&self) -> usize {
        self.by_iri.len()
    }

    /// `true` iff the index is empty.
    pub fn is_empty(&self) -> bool {
        self.by_iri.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rps_core::RpsBuilder;

    fn system() -> RdfPeerSystem {
        let mut a = PeerId(0);
        let mut b = PeerId(0);
        RpsBuilder::new()
            .peer_turtle("A", "<http://a/s> <http://shared/p> <http://a/o> .", &mut a)
            .unwrap()
            .peer_turtle("B", "<http://b/s> <http://shared/p> <http://b/o> .", &mut b)
            .unwrap()
            .build()
    }

    #[test]
    fn shared_iris_route_to_both() {
        let idx = SchemaIndex::build(&system());
        let shared = idx.peers_for(&Iri::new("http://shared/p"));
        assert_eq!(shared.len(), 2);
        let only_a = idx.peers_for(&Iri::new("http://a/s"));
        assert_eq!(only_a, [PeerId(0)].into_iter().collect());
        assert!(idx.peers_for(&Iri::new("http://nowhere/x")).is_empty());
    }

    #[test]
    fn pattern_routing_intersects() {
        let idx = SchemaIndex::build(&system());
        // (a/s, shared/p, ?o): only peer A knows a/s.
        let p = TriplePattern::new(
            TermOrVar::iri("http://a/s"),
            TermOrVar::iri("http://shared/p"),
            TermOrVar::var("o"),
        );
        assert_eq!(idx.route(&p), [PeerId(0)].into_iter().collect());
        // Pure-variable pattern fans out to everyone.
        let open = TriplePattern::new(
            TermOrVar::var("s"),
            TermOrVar::var("p"),
            TermOrVar::var("o"),
        );
        assert_eq!(idx.route(&open).len(), 2);
        // Foreign IRI: nobody.
        let dead = TriplePattern::new(
            TermOrVar::iri("http://nowhere/x"),
            TermOrVar::var("p"),
            TermOrVar::var("o"),
        );
        assert!(idx.route(&dead).is_empty());
    }
}
