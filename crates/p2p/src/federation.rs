//! Federated evaluation of (rewritten) queries over the peers.
//!
//! Implements the Section 5 prototype sketch: after query rewriting,
//! sub-queries are posed to the relevant RDF sources and sub-query
//! results are joined at the originator. Evaluation is pattern-level:
//! each triple pattern of a branch is routed to the peers whose schema
//! can match it, the per-peer binding sets are unioned, and the
//! originator joins the pattern binding sets.
//!
//! Pattern matching distributes over the union of the peer databases, so
//! federated evaluation returns exactly the centralised answers — a
//! property the tests assert.

use crate::network::{NodeId, SimNetwork};
use crate::routing::SchemaIndex;
use rps_core::{PeerId, RdfPeerSystem};
use rps_query::{
    evaluate_pattern, join, GraphPattern, GraphPatternQuery, Mapping, Semantics, UnionQuery,
};
use rps_rdf::{Graph, Term};
use std::collections::BTreeSet;

/// Statistics of one federated query execution.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FederationStats {
    /// Sub-queries dispatched (pattern × peer).
    pub subqueries: usize,
    /// Distinct peers contacted.
    pub peers_contacted: usize,
    /// Messages exchanged (requests + responses).
    pub messages: usize,
    /// Total bytes moved.
    pub bytes: usize,
    /// Binding tuples received from peers.
    pub tuples_received: usize,
}

/// The federated query processor.
pub struct FederatedEngine {
    /// Peer-local stores (blank nodes scoped exactly as in the
    /// centralised stored database).
    locals: Vec<Graph>,
    index: SchemaIndex,
    /// The originator's node id (one past the last peer).
    originator: NodeId,
}

impl FederatedEngine {
    /// Builds the engine from a system.
    pub fn new(system: &RdfPeerSystem) -> Self {
        let locals: Vec<Graph> = (0..system.peers().len())
            .map(|i| system.scoped_database(PeerId(i)))
            .collect();
        let index = SchemaIndex::build(system);
        FederatedEngine {
            originator: locals.len(),
            locals,
            index,
        }
    }

    /// Builds the engine with each peer's store canonicalised onto
    /// equivalence-class representatives. Used by the combined
    /// rewrite-then-federate pipeline: queries rewritten against the
    /// quotient system are evaluated against quotient peer stores, and
    /// the originator expands answers back over the classes.
    pub fn new_canonical(system: &RdfPeerSystem, eq_index: &rps_core::EquivalenceIndex) -> Self {
        let locals: Vec<Graph> = (0..system.peers().len())
            .map(|i| rps_core::canonicalize_graph(&system.scoped_database(PeerId(i)), eq_index))
            .collect();
        // The schema index must reflect canonical IRIs too: rebuild from
        // the canonicalised stores.
        let mut canon_system = RdfPeerSystem::new();
        for (i, g) in locals.iter().enumerate() {
            canon_system.add_peer(rps_core::Peer::from_database(
                format!("canon{i}"),
                g.clone(),
            ));
        }
        let index = SchemaIndex::build(&canon_system);
        FederatedEngine {
            originator: locals.len(),
            locals,
            index,
        }
    }

    /// Evaluates a single conjunctive branch federatedly, returning the
    /// solution mappings.
    fn evaluate_branch(
        &self,
        branch: &GraphPattern,
        net: &mut SimNetwork,
        stats: &mut FederationStats,
    ) -> Vec<Mapping> {
        let mut acc: Option<Vec<Mapping>> = None;
        for pattern in branch.patterns() {
            let peers = self.index.route(pattern);
            let mut pattern_bindings: Vec<Mapping> = Vec::new();
            let request_bytes = pattern.to_string().len();
            let mut contacted = BTreeSet::new();
            for peer in peers {
                contacted.insert(peer);
                net.send(self.originator, peer.0, request_bytes, "subquery");
                stats.subqueries += 1;
                let single = GraphPattern::from_patterns(vec![pattern.clone()]);
                let bindings = evaluate_pattern(&self.locals[peer.0], &single);
                let response_bytes: usize = bindings
                    .iter()
                    .map(|m| {
                        m.iter()
                            .map(|(v, t)| v.name().len() + t.to_string().len())
                            .sum::<usize>()
                    })
                    .sum();
                stats.tuples_received += bindings.len();
                net.send(peer.0, self.originator, response_bytes.max(1), "answers");
                pattern_bindings.extend(bindings);
            }
            stats.peers_contacted = stats.peers_contacted.max(contacted.len());
            // Union of per-peer bindings may contain duplicates.
            pattern_bindings.sort();
            pattern_bindings.dedup();
            acc = Some(match acc {
                None => pattern_bindings,
                Some(prev) => join(&prev, &pattern_bindings),
            });
        }
        acc.unwrap_or_else(|| vec![Mapping::new()])
    }

    /// Evaluates one conjunctive branch with an explicit head *template*
    /// (variables or constants — rewriting may specialise an answer
    /// position to a constant), accumulating into `out` and `stats`.
    pub fn evaluate_templated(
        &self,
        branch: &GraphPattern,
        head: &[rps_query::TermOrVar],
        semantics: Semantics,
        net: &mut SimNetwork,
        stats: &mut FederationStats,
        out: &mut BTreeSet<Vec<Term>>,
    ) {
        let mappings = self.evaluate_branch(branch, net, stats);
        'mappings: for m in mappings {
            let mut tuple = Vec::with_capacity(head.len());
            for entry in head {
                match entry {
                    rps_query::TermOrVar::Var(v) => match m.get(v) {
                        Some(t) => tuple.push(t.clone()),
                        None => continue 'mappings,
                    },
                    rps_query::TermOrVar::Term(t) => tuple.push(t.clone()),
                }
            }
            if semantics == Semantics::Certain && tuple.iter().any(Term::is_blank) {
                continue;
            }
            out.insert(tuple);
        }
    }

    /// Evaluates a UCQ federatedly under the given semantics, recording
    /// traffic into `net`.
    pub fn evaluate_union(
        &self,
        query: &UnionQuery,
        semantics: Semantics,
        net: &mut SimNetwork,
    ) -> (BTreeSet<Vec<Term>>, FederationStats) {
        let mut stats = FederationStats::default();
        let mut out = BTreeSet::new();
        for branch in query.branches() {
            let mappings = self.evaluate_branch(branch, net, &mut stats);
            for m in mappings {
                if let Some(tuple) = m.project(query.free_vars()) {
                    if semantics == Semantics::Certain && tuple.iter().any(Term::is_blank) {
                        continue;
                    }
                    out.insert(tuple);
                }
            }
        }
        stats.messages = net.message_count();
        stats.bytes = net.total_bytes();
        (out, stats)
    }

    /// Evaluates a single graph pattern query federatedly.
    pub fn evaluate_query(
        &self,
        query: &GraphPatternQuery,
        semantics: Semantics,
        net: &mut SimNetwork,
    ) -> (BTreeSet<Vec<Term>>, FederationStats) {
        let union = UnionQuery::new(query.free_vars().to_vec(), vec![query.pattern().clone()]);
        self.evaluate_union(&union, semantics, net)
    }

    /// Number of peers.
    pub fn peer_count(&self) -> usize {
        self.locals.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rps_core::RpsBuilder;
    use rps_query::{evaluate_query as central_eval, TermOrVar, Variable};

    fn system() -> RdfPeerSystem {
        let mut a = PeerId(0);
        let mut b = PeerId(0);
        let mut c = PeerId(0);
        RpsBuilder::new()
            .peer_turtle(
                "A",
                "<http://e/s1> <http://e/p> <http://e/m1> .\n\
                 <http://e/s2> <http://e/p> <http://e/m2> .",
                &mut a,
            )
            .unwrap()
            .peer_turtle("B", "<http://e/m1> <http://e/q> <http://e/o1> .", &mut b)
            .unwrap()
            .peer_turtle(
                "C",
                "<http://e/m2> <http://e/q> <http://e/o2> .\n\
                 <http://c/only> <http://c/r> <http://c/x> .",
                &mut c,
            )
            .unwrap()
            .build()
    }

    fn path_query() -> GraphPatternQuery {
        GraphPatternQuery::new(
            vec![Variable::new("x"), Variable::new("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://e/p"),
                TermOrVar::var("m"),
            )
            .and(GraphPattern::triple(
                TermOrVar::var("m"),
                TermOrVar::iri("http://e/q"),
                TermOrVar::var("y"),
            )),
        )
    }

    #[test]
    fn federated_equals_centralised() {
        let sys = system();
        let engine = FederatedEngine::new(&sys);
        let mut net = SimNetwork::new();
        let (fed, stats) = engine.evaluate_query(&path_query(), Semantics::Certain, &mut net);
        let central = central_eval(&sys.stored_database(), &path_query(), Semantics::Certain);
        assert_eq!(fed, central);
        assert_eq!(fed.len(), 2); // (s1,o1) and (s2,o2) across peers
        assert!(stats.messages > 0);
        assert!(stats.bytes > 0);
    }

    #[test]
    fn cross_peer_join_works() {
        let sys = system();
        let engine = FederatedEngine::new(&sys);
        let mut net = SimNetwork::new();
        let (fed, _) = engine.evaluate_query(&path_query(), Semantics::Certain, &mut net);
        assert!(fed.contains(&vec![Term::iri("http://e/s1"), Term::iri("http://e/o1")]));
    }

    #[test]
    fn routing_prunes_subqueries() {
        let sys = system();
        let engine = FederatedEngine::new(&sys);
        let mut net = SimNetwork::new();
        // A pattern anchored in C-only vocabulary contacts one peer.
        let q = GraphPatternQuery::new(
            vec![Variable::new("x")],
            GraphPattern::triple(
                TermOrVar::iri("http://c/only"),
                TermOrVar::iri("http://c/r"),
                TermOrVar::var("x"),
            ),
        );
        let (ans, stats) = engine.evaluate_query(&q, Semantics::Certain, &mut net);
        assert_eq!(ans.len(), 1);
        assert_eq!(stats.subqueries, 1);
        assert_eq!(stats.peers_contacted, 1);
    }

    #[test]
    fn union_queries_accumulate() {
        let sys = system();
        let engine = FederatedEngine::new(&sys);
        let mut net = SimNetwork::new();
        let u = UnionQuery::new(
            vec![Variable::new("x")],
            vec![
                GraphPattern::triple(
                    TermOrVar::var("x"),
                    TermOrVar::iri("http://e/p"),
                    TermOrVar::var("y"),
                ),
                GraphPattern::triple(
                    TermOrVar::var("x"),
                    TermOrVar::iri("http://e/q"),
                    TermOrVar::var("y"),
                ),
            ],
        );
        let (ans, _) = engine.evaluate_union(&u, Semantics::Certain, &mut net);
        assert_eq!(ans.len(), 4);
    }

    #[test]
    fn blank_joins_match_centralised_scoping() {
        // Peer stores a blank-mediated path entirely locally; federated
        // join on the blank must succeed exactly as centralised.
        let mut a = PeerId(0);
        let sys = RpsBuilder::new()
            .peer_turtle(
                "A",
                "<http://e/f> <http://e/starring> _:c .\n\
                 _:c <http://e/artist> <http://e/p1> .",
                &mut a,
            )
            .unwrap()
            .build();
        let q = GraphPatternQuery::new(
            vec![Variable::new("y")],
            GraphPattern::triple(
                TermOrVar::iri("http://e/f"),
                TermOrVar::iri("http://e/starring"),
                TermOrVar::var("z"),
            )
            .and(GraphPattern::triple(
                TermOrVar::var("z"),
                TermOrVar::iri("http://e/artist"),
                TermOrVar::var("y"),
            )),
        );
        let engine = FederatedEngine::new(&sys);
        let mut net = SimNetwork::new();
        let (fed, _) = engine.evaluate_query(&q, Semantics::Certain, &mut net);
        let central = central_eval(&sys.stored_database(), &q, Semantics::Certain);
        assert_eq!(fed, central);
        assert_eq!(fed.len(), 1);
    }
}
