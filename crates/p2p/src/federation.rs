//! Federated evaluation of (rewritten) queries over the peers.
//!
//! Implements the Section 5 prototype sketch: after query rewriting,
//! sub-queries are posed to the relevant RDF sources and sub-query
//! results are joined at the originator. Evaluation is pattern-level:
//! each triple pattern of a branch is routed to the peers whose schema
//! can match it, the per-peer binding sets are unioned, and the
//! originator joins the pattern binding sets.
//!
//! Pattern matching distributes over the union of the peer databases, so
//! federated evaluation returns exactly the centralised answers — a
//! property the tests assert.
//!
//! **Id-level prepared execution.** The engine maintains an *answer
//! dictionary* at the originator (the union of the peer dictionaries,
//! built once with [`rps_rdf::TermDict::absorb`]) plus a per-peer
//! translation table from peer-local term ids to originator ids.
//! [`FederatedEngine::prepare_branches`] compiles a UCQ once — routing
//! each pattern, resolving its constants against every routed peer's
//! dictionary, and interning head-template constants — into a
//! [`PreparedFederation`] that [`FederatedEngine::execute`] can run any
//! number of times. The hot loop is then pure id arithmetic: peer-side
//! range scans (served by each peer graph's permutation indexes —
//! sorted-run storage by default, see `rps_rdf::store`), array-lookup
//! id translation, and hash joins on dense `u32` tuples at the
//! originator. No term is parsed, cloned, re-interned
//! or compared per peer per round — the failure mode of the previous
//! term-level path, which is retained as
//! [`FederatedEngine::evaluate_union_term_level`] for the benchmark
//! baseline and agreement tests.

use crate::network::{NodeId, SimNetwork};
use crate::routing::SchemaIndex;
use crate::transport::{SimTransport, Transport};
use crate::wire::{self, WireMessage, WireRequest, WireSlot};
use rps_core::{FailureCause, FailurePolicy, PeerId, RdfPeerSystem, RetryPolicy, RpsError};
use rps_query::{
    evaluate_pattern, join, GraphPattern, GraphPatternQuery, Mapping, Semantics, TermOrVar,
    UnionQuery, Variable,
};
use rps_rdf::{Graph, Term, TermDict, TermId};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Statistics of one federated query execution.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FederationStats {
    /// Sub-queries dispatched (pattern × peer).
    pub subqueries: usize,
    /// Distinct peers contacted.
    pub peers_contacted: usize,
    /// Messages exchanged (requests + responses).
    pub messages: usize,
    /// Total bytes moved.
    pub bytes: usize,
    /// Binding tuples received from peers.
    pub tuples_received: usize,
}

/// One peer exchange the execution finally gave up on (after the retry
/// policy was exhausted).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeerFailure {
    /// The peer that stayed unreachable.
    pub peer: usize,
    /// Attempts actually made before giving up (0 when the per-peer
    /// deadline was already exhausted by earlier exchanges).
    pub attempts: u32,
    /// Why the final attempt failed.
    pub cause: FailureCause,
    /// Human-readable detail from the transport or the peer.
    pub detail: String,
}

/// The fault-tolerance outcome of one federated execution — which peers
/// were skipped, why, and how much retrying it took. Returned alongside
/// the answers by [`FederatedEngine::execute_with`]; under
/// [`FailurePolicy::BestEffort`]/[`FailurePolicy::Quorum`] this is the
/// *only* record of degradation, so answers are never silently
/// incomplete.
#[derive(Clone, Debug, PartialEq)]
pub struct FederationReport {
    /// The transport's label ("sim", "faulty", "tcp").
    pub transport: &'static str,
    /// The failure policy the execution ran under.
    pub policy: FailurePolicy,
    /// Every exchange given up on (empty ⇔ the execution was not
    /// degraded). Under [`FailurePolicy::Strict`] the execution errors
    /// at the first entry instead.
    pub skipped: Vec<PeerFailure>,
    /// Retry attempts (beyond each exchange's first) per prepared
    /// branch, aligned with the plan's branch order.
    pub retries_by_branch: Vec<u32>,
    /// Distinct peers contacted across the whole execution.
    pub peers_contacted: usize,
    /// Distinct contacted peers that responded to *every* exchange
    /// addressed to them (the quorum count).
    pub peers_responded: usize,
}

impl FederationReport {
    /// Total retry attempts across every branch.
    pub fn retries(&self) -> u32 {
        self.retries_by_branch.iter().sum()
    }

    /// `true` iff at least one exchange was skipped (the answers may be
    /// a strict subset of the fault-free answers).
    pub fn degraded(&self) -> bool {
        !self.skipped.is_empty()
    }

    /// The distinct peers that failed at least one exchange.
    pub fn failed_peers(&self) -> BTreeSet<usize> {
        self.skipped.iter().map(|f| f.peer).collect()
    }
}

/// Mutable report bookkeeping threaded through an execution.
struct ReportState {
    skipped: Vec<PeerFailure>,
    retries_by_branch: Vec<u32>,
    contacted: BTreeSet<usize>,
    failed: BTreeSet<usize>,
}

impl ReportState {
    fn new(branches: usize) -> Self {
        ReportState {
            skipped: Vec::new(),
            retries_by_branch: vec![0; branches],
            contacted: BTreeSet::new(),
            failed: BTreeSet::new(),
        }
    }

    /// Merges a parallel worker's bookkeeping (branch slots are
    /// disjoint across workers).
    fn merge(&mut self, other: ReportState) {
        self.skipped.extend(other.skipped);
        for (slot, v) in self
            .retries_by_branch
            .iter_mut()
            .zip(&other.retries_by_branch)
        {
            *slot += v;
        }
        self.contacted.extend(other.contacted);
        self.failed.extend(other.failed);
    }

    /// Seals the report, enforcing the quorum policy: with peers
    /// contacted and fewer than `k` fully responsive, the execution
    /// fails with [`RpsError::QuorumNotMet`].
    fn finish(
        self,
        transport: &'static str,
        policy: FailurePolicy,
    ) -> Result<FederationReport, RpsError> {
        let responded = self.contacted.difference(&self.failed).count();
        if let FailurePolicy::Quorum(k) = policy {
            if !self.contacted.is_empty() && responded < k {
                return Err(RpsError::QuorumNotMet {
                    responded,
                    required: k,
                });
            }
        }
        Ok(FederationReport {
            transport,
            policy,
            skipped: self.skipped,
            retries_by_branch: self.retries_by_branch,
            peers_contacted: self.contacted.len(),
            peers_responded: responded,
        })
    }
}

/// A head-template position of a prepared branch.
enum TemplateSlot {
    /// Branch-local variable index.
    Var(usize),
    /// A constant, interned in the originator's answer dictionary.
    Const(TermId),
}

/// One triple pattern of a branch, compiled for repeated federated
/// execution: routing decided, constants resolved per routed peer, and
/// the wire request built — all once, at prepare time.
struct PatternPlan {
    /// The pattern's distinct branch-local variable indexes, in first
    /// occurrence order; binding rows are aligned with this.
    pvars: Vec<usize>,
    /// Routed peers, each with its ready-to-encode wire request:
    /// constants resolved to the peer's dictionary
    /// ([`WireSlot::Unresolved`] when unknown there — the sub-query is
    /// still sent, but matches nothing).
    probes: Vec<(PeerId, WireRequest)>,
}

/// One conjunctive branch of a prepared UCQ.
struct BranchPlan {
    patterns: Vec<PatternPlan>,
    /// Head template; `None` marks a dead branch (a head variable that
    /// never occurs in the body can never bind).
    template: Option<Vec<TemplateSlot>>,
}

/// A UCQ compiled against a [`FederatedEngine`] for repeated execution.
pub struct PreparedFederation {
    branches: Vec<BranchPlan>,
    /// Head-template constants absent from the engine's answer
    /// dictionary, carried by the plan itself: they get synthetic ids
    /// one past the dictionary (`dict.len() + k`), so preparation never
    /// mutates the shared engine — the seam that lets `prepare` take
    /// `&self` and run concurrently on a frozen session. Decode answer
    /// ids through [`FederatedEngine::decode_prepared`].
    extra: Vec<Term>,
}

impl PreparedFederation {
    /// Number of branches (including pruned dead ones).
    pub fn branch_count(&self) -> usize {
        self.branches.len()
    }
}

/// The federated query processor.
pub struct FederatedEngine {
    /// Peer-local stores (blank nodes scoped exactly as in the
    /// centralised stored database), shared with transports.
    locals: Arc<Vec<Graph>>,
    index: SchemaIndex,
    /// The originator's node id (one past the last peer).
    originator: NodeId,
    /// The originator's answer dictionary: the union of the peer
    /// dictionaries, so any peer's binding decodes without re-interning.
    dict: TermDict,
    /// Per peer: local term id → answer-dictionary id (dense table).
    to_global: Vec<Vec<TermId>>,
}

impl FederatedEngine {
    fn build(mut locals: Vec<Graph>, index: SchemaIndex) -> Self {
        // Peer stores never change after engine construction: seal them
        // so concurrent range scans merge immutable runs only.
        for g in &mut locals {
            g.seal();
        }
        let mut dict = TermDict::new();
        let to_global: Vec<Vec<TermId>> = locals.iter().map(|g| dict.absorb(g.dict())).collect();
        FederatedEngine {
            originator: locals.len(),
            locals: Arc::new(locals),
            index,
            dict,
            to_global,
        }
    }

    /// Builds the engine from a system.
    pub fn new(system: &RdfPeerSystem) -> Self {
        let locals: Vec<Graph> = (0..system.peers().len())
            .map(|i| system.scoped_database(PeerId(i)))
            .collect();
        let index = SchemaIndex::build(system);
        Self::build(locals, index)
    }

    /// Builds the engine with each peer's store canonicalised onto
    /// equivalence-class representatives. Used by the combined
    /// rewrite-then-federate pipeline: queries rewritten against the
    /// quotient system are evaluated against quotient peer stores, and
    /// the originator expands answers back over the classes.
    pub fn new_canonical(system: &RdfPeerSystem, eq_index: &rps_core::EquivalenceIndex) -> Self {
        let locals: Vec<Graph> = (0..system.peers().len())
            .map(|i| rps_core::canonicalize_graph(&system.scoped_database(PeerId(i)), eq_index))
            .collect();
        // The schema index must reflect canonical IRIs too: rebuild from
        // the canonicalised stores.
        let mut canon_system = RdfPeerSystem::new();
        for (i, g) in locals.iter().enumerate() {
            canon_system.add_peer(rps_core::Peer::from_database(
                format!("canon{i}"),
                g.clone(),
            ));
        }
        let index = SchemaIndex::build(&canon_system);
        Self::build(locals, index)
    }

    /// Number of peers.
    pub fn peer_count(&self) -> usize {
        self.locals.len()
    }

    /// The sealed peer graphs, shared for constructing transports
    /// ([`SimTransport::new`], [`crate::TcpTransport::serve`]) that
    /// serve the same stores this engine plans against.
    pub fn peer_graphs(&self) -> Arc<Vec<Graph>> {
        Arc::clone(&self.locals)
    }

    /// The originator's answer dictionary (decode id-level answers
    /// against this).
    pub fn dict(&self) -> &TermDict {
        &self.dict
    }

    /// Decodes id-level answer tuples to owned terms. Only valid for
    /// tuples whose every id lives in the answer dictionary; answers of
    /// a [`PreparedFederation`] may carry plan-local overlay ids, so
    /// decode those with [`FederatedEngine::decode_prepared`].
    pub fn decode(&self, tuples: &BTreeSet<Vec<TermId>>) -> BTreeSet<Vec<Term>> {
        tuples
            .iter()
            .map(|row| row.iter().map(|&id| self.dict.term(id).clone()).collect())
            .collect()
    }

    /// Decodes the id-level answers of one prepared federation,
    /// resolving plan-local overlay ids (head-template constants
    /// unknown to the answer dictionary) against the plan.
    pub fn decode_prepared(
        &self,
        prepared: &PreparedFederation,
        tuples: &BTreeSet<Vec<TermId>>,
    ) -> BTreeSet<Vec<Term>> {
        tuples
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&id| self.term_of(&prepared.extra, id).clone())
                    .collect()
            })
            .collect()
    }

    /// Resolves an answer id against the dictionary or a plan's overlay.
    fn term_of<'a>(&'a self, extra: &'a [Term], id: TermId) -> &'a Term {
        let i = id.index();
        if i < self.dict.len() {
            self.dict.term(id)
        } else {
            &extra[i - self.dict.len()]
        }
    }

    /// Certain-answer eligibility of an answer id (names are IRIs and
    /// literals; blank nodes are not certain).
    fn id_is_name(&self, extra: &[Term], id: TermId) -> bool {
        let i = id.index();
        if i < self.dict.len() {
            self.dict.is_name(id)
        } else {
            !extra[i - self.dict.len()].is_blank()
        }
    }

    // ------------------------------------------------------------------
    // Prepared, id-level path
    // ------------------------------------------------------------------

    /// Compiles a UCQ — given as `(body pattern, head template)` branches,
    /// the shape [`rps_core::RpsRewriting::branches`] produces — for
    /// repeated federated execution. Routing, per-peer constant
    /// resolution and template constant resolution happen here, once.
    /// Takes `&self`: template constants missing from the answer
    /// dictionary ride along in the plan as overlay terms (decoded via
    /// [`FederatedEngine::decode_prepared`]) instead of being interned,
    /// so any number of preparations can run against a shared engine.
    pub fn prepare_branches(
        &self,
        branches: &[(GraphPattern, Vec<TermOrVar>)],
    ) -> PreparedFederation {
        let mut extra: Vec<Term> = Vec::new();
        let mut plans = Vec::with_capacity(branches.len());
        for (gp, template) in branches {
            let mut var_ix: HashMap<Variable, usize> = HashMap::new();
            let mut patterns = Vec::with_capacity(gp.len());
            for tp in gp.patterns() {
                let mut pos_slot = [None; 3];
                let mut pvars: Vec<usize> = Vec::new();
                let mut consts: [Option<&Term>; 3] = [None; 3];
                for (k, tv) in [&tp.s, &tp.p, &tp.o].into_iter().enumerate() {
                    match tv {
                        TermOrVar::Var(v) => {
                            let next = var_ix.len();
                            let vix = *var_ix.entry(v.clone()).or_insert(next);
                            let slot = match pvars.iter().position(|&x| x == vix) {
                                Some(s) => s,
                                None => {
                                    pvars.push(vix);
                                    pvars.len() - 1
                                }
                            };
                            pos_slot[k] = Some(slot);
                        }
                        TermOrVar::Term(t) => consts[k] = Some(t),
                    }
                }
                let probes = self
                    .index
                    .route(tp)
                    .into_iter()
                    .map(|peer| {
                        let g = &self.locals[peer.0];
                        let mut slots = [WireSlot::Unresolved; 3];
                        for k in 0..3 {
                            slots[k] = match (pos_slot[k], consts[k]) {
                                (Some(slot), _) => WireSlot::Var(slot as u8),
                                (None, Some(t)) => match g.term_id(t) {
                                    Some(id) => WireSlot::Const(id),
                                    // Unknown at this peer: the request
                                    // is still sent (mirroring the wire
                                    // protocol) but matches nothing.
                                    None => WireSlot::Unresolved,
                                },
                                (None, None) => unreachable!("position is var or const"),
                            };
                        }
                        (peer, WireRequest { attempt: 1, slots })
                    })
                    .collect();
                patterns.push(PatternPlan { pvars, probes });
            }
            let template = template
                .iter()
                .map(|entry| match entry {
                    TermOrVar::Var(v) => var_ix.get(v).copied().map(TemplateSlot::Var),
                    TermOrVar::Term(t) => Some(TemplateSlot::Const(match self.dict.id(t) {
                        Some(id) => id,
                        None => {
                            // Unknown constant: a plan-local overlay id
                            // one past the (immutable) dictionary, one
                            // per distinct term so equal tuples from
                            // different branches share one id.
                            let slot = extra.iter().position(|e| e == t).unwrap_or_else(|| {
                                extra.push(t.clone());
                                extra.len() - 1
                            });
                            TermId((self.dict.len() + slot) as u32)
                        }
                    })),
                })
                .collect::<Option<Vec<TemplateSlot>>>();
            plans.push(BranchPlan { patterns, template });
        }
        PreparedFederation {
            branches: plans,
            extra,
        }
    }

    /// Compiles a single graph pattern query (head = its free variables).
    pub fn prepare_query(&self, query: &GraphPatternQuery) -> PreparedFederation {
        let template: Vec<TermOrVar> = query
            .free_vars()
            .iter()
            .map(|v| TermOrVar::Var(v.clone()))
            .collect();
        self.prepare_branches(&[(query.pattern().clone(), template)])
    }

    /// Compiles a UCQ whose every branch projects the union's free
    /// variables.
    pub fn prepare_union(&self, union: &UnionQuery) -> PreparedFederation {
        let template: Vec<TermOrVar> = union
            .free_vars()
            .iter()
            .map(|v| TermOrVar::Var(v.clone()))
            .collect();
        let branches: Vec<(GraphPattern, Vec<TermOrVar>)> = union
            .branches()
            .iter()
            .map(|b| (b.clone(), template.clone()))
            .collect();
        self.prepare_branches(&branches)
    }

    /// Executes a prepared federation over the perfect in-process
    /// [`SimTransport`], recording traffic into `net` and returning
    /// answer tuples over the originator's answer dictionary.
    ///
    /// Per branch: every pattern's sub-queries fan out to its routed
    /// peers as encoded wire frames (peer-side index range scans, ids
    /// translated to the answer dictionary by table lookup), the
    /// per-pattern binding sets are hash-joined smallest-first at the
    /// originator, and the head template projects the result. Under
    /// [`Semantics::Certain`], tuples containing blank nodes are
    /// dropped. The fault-tolerant generalisation over pluggable
    /// transports is [`FederatedEngine::execute_with`].
    pub fn execute(
        &self,
        prepared: &PreparedFederation,
        semantics: Semantics,
        net: &mut SimNetwork,
    ) -> (BTreeSet<Vec<TermId>>, FederationStats) {
        let transport = SimTransport::new(Arc::clone(&self.locals));
        let (out, stats, _report) = self
            .execute_with(
                prepared,
                semantics,
                net,
                &transport,
                &RetryPolicy::none(),
                FailurePolicy::Strict,
            )
            .expect("the perfect in-process transport cannot fail");
        (out, stats)
    }

    /// [`FederatedEngine::execute`], fanning the prepared branches out
    /// across OS threads. See
    /// [`FederatedEngine::execute_parallel_with`] for the semantics.
    pub fn execute_parallel(
        &self,
        prepared: &PreparedFederation,
        semantics: Semantics,
        net: &mut SimNetwork,
        max_threads: usize,
    ) -> (BTreeSet<Vec<TermId>>, FederationStats) {
        let transport = SimTransport::new(Arc::clone(&self.locals));
        let (out, stats, _report) = self
            .execute_parallel_with(
                prepared,
                semantics,
                net,
                &transport,
                &RetryPolicy::none(),
                FailurePolicy::Strict,
                max_threads,
            )
            .expect("the perfect in-process transport cannot fail");
        (out, stats)
    }

    /// Executes a prepared federation over an explicit [`Transport`]
    /// under a [`RetryPolicy`] and a [`FailurePolicy`] — the
    /// fault-tolerant core every other execute entry point wraps.
    ///
    /// Each pattern×peer exchange encodes the prepared wire request
    /// (the attempt number stamped into the frame), records the exact
    /// frame bytes in `net`, and retries per the policy: exponential
    /// backoff with deterministic jitter, all charged — together with
    /// the transport-reported latency — against a per-branch, per-peer
    /// virtual deadline budget. Exchanges that stay failed after the
    /// retries are resolved by the failure policy:
    ///
    /// * [`FailurePolicy::Strict`] — the execution stops with
    ///   [`RpsError::PeerUnreachable`];
    /// * [`FailurePolicy::BestEffort`] — the peer contributes nothing,
    ///   and the give-up is itemised in the returned
    ///   [`FederationReport`];
    /// * [`FailurePolicy::Quorum`]`(k)` — best-effort, then
    ///   [`RpsError::QuorumNotMet`] unless at least `k` contacted peers
    ///   responded to every exchange.
    ///
    /// With a fault-free transport this is byte-identical (answers,
    /// statistics, traffic trace) to [`FederatedEngine::execute`] for
    /// every policy combination; under a seeded
    /// [`crate::FaultyTransport`] every outcome is deterministic.
    pub fn execute_with(
        &self,
        prepared: &PreparedFederation,
        semantics: Semantics,
        net: &mut SimNetwork,
        transport: &dyn Transport,
        retry: &RetryPolicy,
        policy: FailurePolicy,
    ) -> Result<(BTreeSet<Vec<TermId>>, FederationStats, FederationReport), RpsError> {
        let mut stats = FederationStats::default();
        let mut out = BTreeSet::new();
        let mut report = ReportState::new(prepared.branches.len());
        for (bi, branch) in prepared.branches.iter().enumerate() {
            let Some(template) = &branch.template else {
                continue; // dead branch: its head can never bind
            };
            self.execute_branch_with(
                bi,
                branch,
                template,
                &prepared.extra,
                semantics,
                net,
                transport,
                retry,
                policy,
                &mut stats,
                &mut out,
                &mut report,
            )?;
        }
        stats.messages = net.message_count();
        stats.bytes = net.total_bytes();
        let report = report.finish(transport.name(), policy)?;
        Ok((out, stats, report))
    }

    /// [`FederatedEngine::execute_with`], fanning the prepared branches
    /// out across OS threads (`std::thread::scope`; at most
    /// `max_threads` of them, clamped to the live branch count and to
    /// at least 1). Each worker owns a private network, statistics,
    /// answer set and report over a contiguous chunk of branches;
    /// deadline budgets are branch-local, so nothing depends on the
    /// interleaving, and merging happens in branch order — the returned
    /// answers, statistics, report and traffic trace are byte-identical
    /// to the sequential walk (property the agreement tests pin). Under
    /// [`FailurePolicy::Strict`] the error of the lowest-indexed failing
    /// branch wins, exactly as the sequential walk would surface it.
    #[allow(clippy::too_many_arguments)]
    pub fn execute_parallel_with(
        &self,
        prepared: &PreparedFederation,
        semantics: Semantics,
        net: &mut SimNetwork,
        transport: &dyn Transport,
        retry: &RetryPolicy,
        policy: FailurePolicy,
        max_threads: usize,
    ) -> Result<(BTreeSet<Vec<TermId>>, FederationStats, FederationReport), RpsError> {
        let live: Vec<(usize, &BranchPlan, &Vec<TemplateSlot>)> = prepared
            .branches
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.template.as_ref().map(|t| (i, b, t)))
            .collect();
        let threads = max_threads.max(1).min(live.len().max(1));
        if threads <= 1 {
            return self.execute_with(prepared, semantics, net, transport, retry, policy);
        }
        let chunk = live.len().div_ceil(threads);
        type WorkerOut = (
            SimNetwork,
            FederationStats,
            BTreeSet<Vec<TermId>>,
            ReportState,
            Option<RpsError>,
        );
        let results: Vec<WorkerOut> = std::thread::scope(|scope| {
            let handles: Vec<_> = live
                .chunks(chunk)
                .map(|branches| {
                    scope.spawn(move || {
                        let mut wnet = SimNetwork::new();
                        let mut stats = FederationStats::default();
                        let mut out = BTreeSet::new();
                        let mut report = ReportState::new(prepared.branches.len());
                        let mut err = None;
                        for (bi, branch, template) in branches {
                            if let Err(e) = self.execute_branch_with(
                                *bi,
                                branch,
                                template,
                                &prepared.extra,
                                semantics,
                                &mut wnet,
                                transport,
                                retry,
                                policy,
                                &mut stats,
                                &mut out,
                                &mut report,
                            ) {
                                err = Some(e);
                                break; // mirror the sequential early stop
                            }
                        }
                        (wnet, stats, out, report, err)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("federated worker panicked"))
                .collect()
        });
        let mut stats = FederationStats::default();
        let mut out = BTreeSet::new();
        let mut report = ReportState::new(prepared.branches.len());
        for (worker_net, worker_stats, worker_out, worker_report, worker_err) in results {
            net.absorb(&worker_net);
            report.merge(worker_report);
            if let Some(e) = worker_err {
                // Lowest-branch error wins; later chunks' traffic is
                // discarded, deterministically.
                return Err(e);
            }
            stats.subqueries += worker_stats.subqueries;
            stats.tuples_received += worker_stats.tuples_received;
            stats.peers_contacted = stats.peers_contacted.max(worker_stats.peers_contacted);
            out.extend(worker_out);
        }
        stats.messages = net.message_count();
        stats.bytes = net.total_bytes();
        let report = report.finish(transport.name(), policy)?;
        Ok((out, stats, report))
    }

    /// Translates one peer batch into answer-dictionary rows, verifying
    /// shape and id range (a malformed batch is a protocol failure, not
    /// a panic).
    fn translate(
        &self,
        batch: &wire::WireBatch,
        pat: &PatternPlan,
        peer: usize,
    ) -> Result<Vec<Vec<TermId>>, String> {
        if usize::from(batch.width) != pat.pvars.len() {
            return Err(format!(
                "batch width {} does not match the expected {}",
                batch.width,
                pat.pvars.len()
            ));
        }
        let table = &self.to_global[peer];
        let mut out = Vec::with_capacity(batch.rows.len());
        for row in &batch.rows {
            let mut global = Vec::with_capacity(row.len());
            for id in row {
                match table.get(id.index()) {
                    Some(&gid) => global.push(gid),
                    None => return Err(format!("peer id {} outside its dictionary", id.0)),
                }
            }
            out.push(global);
        }
        Ok(out)
    }

    /// Resolves one failed exchange per the failure policy: Strict
    /// escalates to the typed error, the degrading policies record it.
    fn note_failure(
        report: &mut ReportState,
        policy: FailurePolicy,
        failure: PeerFailure,
    ) -> Result<(), RpsError> {
        report.failed.insert(failure.peer);
        match policy {
            FailurePolicy::Strict => Err(RpsError::PeerUnreachable {
                peer: failure.peer,
                attempts: failure.attempts,
                cause: failure.cause,
            }),
            FailurePolicy::BestEffort | FailurePolicy::Quorum(_) => {
                report.skipped.push(failure);
                Ok(())
            }
        }
    }

    /// One retried exchange with `peer`: encodes the request with the
    /// attempt number stamped in, records exact frame bytes in `net`,
    /// and charges backoff plus transport-reported latency against the
    /// branch's per-peer budget (`spent`). Returns the decoded batch or
    /// the final failure, plus the retries used (attempts beyond the
    /// first).
    fn exchange(
        &self,
        transport: &dyn Transport,
        retry: &RetryPolicy,
        req: &WireRequest,
        peer: usize,
        net: &mut SimNetwork,
        spent: &mut f64,
    ) -> (Result<wire::WireBatch, PeerFailure>, u32) {
        let fingerprint = req.fingerprint();
        let max_attempts = retry.max_attempts.max(1);
        let mut last: Option<(FailureCause, String)> = None;
        let mut attempts = 0u32;
        for attempt in 1..=max_attempts {
            *spent += retry.backoff_ms(peer, attempt, fingerprint);
            if *spent >= retry.peer_deadline_ms {
                let failure = PeerFailure {
                    peer,
                    attempts,
                    cause: FailureCause::DeadlineExhausted,
                    detail: format!(
                        "per-peer deadline of {:.1}ms exhausted before attempt {attempt}",
                        retry.peer_deadline_ms
                    ),
                };
                return (Err(failure), attempts.saturating_sub(1));
            }
            attempts = attempt;
            let frame = wire::encode_request(&WireRequest { attempt, ..*req });
            net.send_attempt(self.originator, peer, frame.len(), "subquery", attempt);
            let budget = retry.peer_deadline_ms - *spent;
            match transport.request(peer, &frame, budget) {
                Ok(reply) => {
                    *spent += reply.elapsed_ms;
                    match wire::decode(&reply.frame) {
                        Ok(WireMessage::Batch(batch)) => {
                            net.send_attempt(
                                peer,
                                self.originator,
                                reply.frame.len(),
                                "answers",
                                attempt,
                            );
                            return (Ok(batch), attempt - 1);
                        }
                        Ok(WireMessage::Fault(fault)) => {
                            net.send_attempt(
                                peer,
                                self.originator,
                                reply.frame.len(),
                                "error",
                                attempt,
                            );
                            let transient = fault.transient;
                            let cause = if transient {
                                FailureCause::Transient
                            } else {
                                FailureCause::Protocol
                            };
                            last = Some((cause, fault.message));
                            if !transient {
                                break; // permanent: retrying cannot help
                            }
                        }
                        Ok(WireMessage::Request(_)) => {
                            net.send_attempt(
                                peer,
                                self.originator,
                                reply.frame.len(),
                                "error",
                                attempt,
                            );
                            last = Some((
                                FailureCause::Protocol,
                                "peer replied with a request frame".to_string(),
                            ));
                            break;
                        }
                        Err(e) => {
                            // Corruption may be transient: retry.
                            net.send_attempt(
                                peer,
                                self.originator,
                                reply.frame.len(),
                                "error",
                                attempt,
                            );
                            last = Some((
                                FailureCause::Protocol,
                                format!("undecodable response: {e}"),
                            ));
                        }
                    }
                }
                Err(e) => {
                    *spent += e.elapsed_ms;
                    last = Some((e.cause, e.detail));
                }
            }
        }
        let (cause, detail) =
            last.unwrap_or((FailureCause::Timeout, "no attempt was possible".to_string()));
        (
            Err(PeerFailure {
                peer,
                attempts,
                cause,
                detail,
            }),
            attempts.saturating_sub(1),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_branch_with(
        &self,
        branch_ix: usize,
        branch: &BranchPlan,
        template: &[TemplateSlot],
        extra: &[Term],
        semantics: Semantics,
        net: &mut SimNetwork,
        transport: &dyn Transport,
        retry: &RetryPolicy,
        policy: FailurePolicy,
        stats: &mut FederationStats,
        out: &mut BTreeSet<Vec<TermId>>,
        report: &mut ReportState,
    ) -> Result<(), RpsError> {
        // Per-peer virtual deadline budgets, branch-local so the
        // parallel fan-out stays deterministic.
        let mut spent: BTreeMap<usize, f64> = BTreeMap::new();
        // Fetch every pattern's binding set from its routed peers.
        let mut fetched: Vec<(usize, Vec<Vec<TermId>>)> = Vec::with_capacity(branch.patterns.len());
        for (pi, pat) in branch.patterns.iter().enumerate() {
            let mut rows: Vec<Vec<TermId>> = Vec::new();
            for (peer, req) in &pat.probes {
                report.contacted.insert(peer.0);
                stats.subqueries += 1;
                let budget = spent.entry(peer.0).or_insert(0.0);
                let (outcome, retries) = self.exchange(transport, retry, req, peer.0, net, budget);
                report.retries_by_branch[branch_ix] += retries;
                match outcome {
                    Ok(batch) => match self.translate(&batch, pat, peer.0) {
                        Ok(translated) => {
                            stats.tuples_received += translated.len();
                            rows.extend(translated);
                        }
                        Err(detail) => Self::note_failure(
                            report,
                            policy,
                            PeerFailure {
                                peer: peer.0,
                                attempts: retries + 1,
                                cause: FailureCause::Protocol,
                                detail,
                            },
                        )?,
                    },
                    Err(failure) => Self::note_failure(report, policy, failure)?,
                }
            }
            stats.peers_contacted = stats.peers_contacted.max(pat.probes.len());
            // Union of per-peer bindings may contain duplicates.
            rows.sort_unstable();
            rows.dedup();
            fetched.push((pi, rows));
        }

        // Join at the originator, smallest binding set first.
        fetched.sort_by_key(|(_, rows)| rows.len());
        let mut acc_vars: Vec<usize> = Vec::new();
        let mut acc: Vec<Vec<TermId>> = vec![Vec::new()];
        for (pi, rows) in &fetched {
            let pat = &branch.patterns[*pi];
            // (acc position, row position) pairs for the shared variables
            // and (row position, var) for the newly introduced ones.
            let mut shared: Vec<(usize, usize)> = Vec::new();
            let mut fresh: Vec<(usize, usize)> = Vec::new();
            for (rp, &v) in pat.pvars.iter().enumerate() {
                match acc_vars.iter().position(|&av| av == v) {
                    Some(ap) => shared.push((ap, rp)),
                    None => fresh.push((rp, v)),
                }
            }
            let mut table: HashMap<Vec<TermId>, Vec<u32>> = HashMap::new();
            for (ri, row) in rows.iter().enumerate() {
                let key: Vec<TermId> = shared.iter().map(|&(_, rp)| row[rp]).collect();
                table.entry(key).or_default().push(ri as u32);
            }
            let mut next: Vec<Vec<TermId>> = Vec::new();
            let mut key = Vec::with_capacity(shared.len());
            for arow in &acc {
                key.clear();
                key.extend(shared.iter().map(|&(ap, _)| arow[ap]));
                if let Some(matches) = table.get(&key) {
                    for &ri in matches {
                        let row = &rows[ri as usize];
                        let mut merged = arow.clone();
                        merged.extend(fresh.iter().map(|&(rp, _)| row[rp]));
                        next.push(merged);
                    }
                }
            }
            acc_vars.extend(fresh.iter().map(|&(_, v)| v));
            acc = next;
            if acc.is_empty() {
                return Ok(());
            }
        }

        // Project through the head template.
        let slots: Vec<Result<usize, TermId>> = template
            .iter()
            .map(|slot| match slot {
                TemplateSlot::Var(v) => Ok(acc_vars
                    .iter()
                    .position(|av| av == v)
                    .expect("live branch binds every head variable")),
                TemplateSlot::Const(id) => Err(*id),
            })
            .collect();
        'rows: for arow in &acc {
            let mut tuple = Vec::with_capacity(slots.len());
            for slot in &slots {
                let id = match slot {
                    Ok(pos) => arow[*pos],
                    Err(id) => *id,
                };
                if semantics == Semantics::Certain && !self.id_is_name(extra, id) {
                    continue 'rows;
                }
                tuple.push(id);
            }
            out.insert(tuple);
        }
        Ok(())
    }

    /// Prepares and executes a single graph pattern query, decoding the
    /// answers. Prefer [`FederatedEngine::prepare_query`] +
    /// [`FederatedEngine::execute`] when the query runs repeatedly.
    pub fn evaluate_query(
        &self,
        query: &GraphPatternQuery,
        semantics: Semantics,
        net: &mut SimNetwork,
    ) -> (BTreeSet<Vec<Term>>, FederationStats) {
        let prepared = self.prepare_query(query);
        let (ids, stats) = self.execute(&prepared, semantics, net);
        (self.decode_prepared(&prepared, &ids), stats)
    }

    /// Prepares and executes a UCQ, decoding the answers.
    pub fn evaluate_union(
        &self,
        query: &UnionQuery,
        semantics: Semantics,
        net: &mut SimNetwork,
    ) -> (BTreeSet<Vec<Term>>, FederationStats) {
        let prepared = self.prepare_union(query);
        let (ids, stats) = self.execute(&prepared, semantics, net);
        (self.decode_prepared(&prepared, &ids), stats)
    }

    // ------------------------------------------------------------------
    // Term-level baseline (the pre-redesign path), kept for the e12
    // benchmark ablation and the agreement tests.
    // ------------------------------------------------------------------

    /// Evaluates a single conjunctive branch federatedly at the term
    /// level, returning the solution mappings. Every pattern is
    /// re-compiled at every peer and every binding materialises owned
    /// terms — this is the baseline the id-level path is measured
    /// against.
    fn evaluate_branch_term_level(
        &self,
        branch: &GraphPattern,
        net: &mut SimNetwork,
        stats: &mut FederationStats,
    ) -> Vec<Mapping> {
        let mut acc: Option<Vec<Mapping>> = None;
        for pattern in branch.patterns() {
            let peers = self.index.route(pattern);
            let mut pattern_bindings: Vec<Mapping> = Vec::new();
            let request_bytes = pattern.to_string().len();
            let mut contacted = BTreeSet::new();
            for peer in peers {
                contacted.insert(peer);
                net.send(self.originator, peer.0, request_bytes, "subquery");
                stats.subqueries += 1;
                let single = GraphPattern::from_patterns(vec![pattern.clone()]);
                let bindings = evaluate_pattern(&self.locals[peer.0], &single);
                let response_bytes: usize = bindings
                    .iter()
                    .map(|m| {
                        m.iter()
                            .map(|(v, t)| v.name().len() + t.to_string().len())
                            .sum::<usize>()
                    })
                    .sum();
                stats.tuples_received += bindings.len();
                net.send(peer.0, self.originator, response_bytes.max(1), "answers");
                pattern_bindings.extend(bindings);
            }
            stats.peers_contacted = stats.peers_contacted.max(contacted.len());
            pattern_bindings.sort();
            pattern_bindings.dedup();
            acc = Some(match acc {
                None => pattern_bindings,
                Some(prev) => join(&prev, &pattern_bindings),
            });
        }
        acc.unwrap_or_else(|| vec![Mapping::new()])
    }

    /// Term-level evaluation of one branch with an explicit head
    /// template, accumulating into `out` and `stats` (baseline
    /// counterpart of the prepared path's templated projection).
    pub fn evaluate_templated_term_level(
        &self,
        branch: &GraphPattern,
        head: &[TermOrVar],
        semantics: Semantics,
        net: &mut SimNetwork,
        stats: &mut FederationStats,
        out: &mut BTreeSet<Vec<Term>>,
    ) {
        let mappings = self.evaluate_branch_term_level(branch, net, stats);
        'mappings: for m in mappings {
            let mut tuple = Vec::with_capacity(head.len());
            for entry in head {
                match entry {
                    TermOrVar::Var(v) => match m.get(v) {
                        Some(t) => tuple.push(t.clone()),
                        None => continue 'mappings,
                    },
                    TermOrVar::Term(t) => tuple.push(t.clone()),
                }
            }
            if semantics == Semantics::Certain && tuple.iter().any(Term::is_blank) {
                continue;
            }
            out.insert(tuple);
        }
    }

    /// Term-level evaluation of a UCQ (the pre-redesign path).
    pub fn evaluate_union_term_level(
        &self,
        query: &UnionQuery,
        semantics: Semantics,
        net: &mut SimNetwork,
    ) -> (BTreeSet<Vec<Term>>, FederationStats) {
        let mut stats = FederationStats::default();
        let mut out = BTreeSet::new();
        for branch in query.branches() {
            let mappings = self.evaluate_branch_term_level(branch, net, &mut stats);
            for m in mappings {
                if let Some(tuple) = m.project(query.free_vars()) {
                    if semantics == Semantics::Certain && tuple.iter().any(Term::is_blank) {
                        continue;
                    }
                    out.insert(tuple);
                }
            }
        }
        stats.messages = net.message_count();
        stats.bytes = net.total_bytes();
        (out, stats)
    }

    /// Term-level evaluation of a single graph pattern query.
    pub fn evaluate_query_term_level(
        &self,
        query: &GraphPatternQuery,
        semantics: Semantics,
        net: &mut SimNetwork,
    ) -> (BTreeSet<Vec<Term>>, FederationStats) {
        let union = UnionQuery::new(query.free_vars().to_vec(), vec![query.pattern().clone()]);
        self.evaluate_union_term_level(&union, semantics, net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rps_core::RpsBuilder;
    use rps_query::{evaluate_query as central_eval, TermOrVar, Variable};

    fn system() -> RdfPeerSystem {
        let mut a = PeerId(0);
        let mut b = PeerId(0);
        let mut c = PeerId(0);
        RpsBuilder::new()
            .peer_turtle(
                "A",
                "<http://e/s1> <http://e/p> <http://e/m1> .\n\
                 <http://e/s2> <http://e/p> <http://e/m2> .",
                &mut a,
            )
            .unwrap()
            .peer_turtle("B", "<http://e/m1> <http://e/q> <http://e/o1> .", &mut b)
            .unwrap()
            .peer_turtle(
                "C",
                "<http://e/m2> <http://e/q> <http://e/o2> .\n\
                 <http://c/only> <http://c/r> <http://c/x> .",
                &mut c,
            )
            .unwrap()
            .build()
    }

    fn path_query() -> GraphPatternQuery {
        GraphPatternQuery::new(
            vec![Variable::new("x"), Variable::new("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://e/p"),
                TermOrVar::var("m"),
            )
            .and(GraphPattern::triple(
                TermOrVar::var("m"),
                TermOrVar::iri("http://e/q"),
                TermOrVar::var("y"),
            )),
        )
    }

    #[test]
    fn federated_equals_centralised() {
        let sys = system();
        let engine = FederatedEngine::new(&sys);
        let mut net = SimNetwork::new();
        let (fed, stats) = engine.evaluate_query(&path_query(), Semantics::Certain, &mut net);
        let central = central_eval(&sys.stored_database(), &path_query(), Semantics::Certain);
        assert_eq!(fed, central);
        assert_eq!(fed.len(), 2); // (s1,o1) and (s2,o2) across peers
        assert!(stats.messages > 0);
        assert!(stats.bytes > 0);
    }

    #[test]
    fn id_level_agrees_with_term_level() {
        let sys = system();
        let engine = FederatedEngine::new(&sys);
        for semantics in [Semantics::Certain, Semantics::Star] {
            let mut net = SimNetwork::new();
            let (fed, _) = engine.evaluate_query(&path_query(), semantics, &mut net);
            let mut net2 = SimNetwork::new();
            let (term, _) = engine.evaluate_query_term_level(&path_query(), semantics, &mut net2);
            assert_eq!(fed, term);
        }
    }

    #[test]
    fn prepared_execution_is_repeatable() {
        let sys = system();
        let engine = FederatedEngine::new(&sys);
        let prepared = engine.prepare_query(&path_query());
        assert_eq!(prepared.branch_count(), 1);
        let mut net = SimNetwork::new();
        let (first, s1) = engine.execute(&prepared, Semantics::Certain, &mut net);
        let mut net = SimNetwork::new();
        let (second, s2) = engine.execute(&prepared, Semantics::Certain, &mut net);
        assert_eq!(first, second);
        assert_eq!(s1, s2);
        assert_eq!(engine.decode(&first).len(), 2);
    }

    #[test]
    fn cross_peer_join_works() {
        let sys = system();
        let engine = FederatedEngine::new(&sys);
        let mut net = SimNetwork::new();
        let (fed, _) = engine.evaluate_query(&path_query(), Semantics::Certain, &mut net);
        assert!(fed.contains(&vec![Term::iri("http://e/s1"), Term::iri("http://e/o1")]));
    }

    #[test]
    fn routing_prunes_subqueries() {
        let sys = system();
        let engine = FederatedEngine::new(&sys);
        let mut net = SimNetwork::new();
        // A pattern anchored in C-only vocabulary contacts one peer.
        let q = GraphPatternQuery::new(
            vec![Variable::new("x")],
            GraphPattern::triple(
                TermOrVar::iri("http://c/only"),
                TermOrVar::iri("http://c/r"),
                TermOrVar::var("x"),
            ),
        );
        let (ans, stats) = engine.evaluate_query(&q, Semantics::Certain, &mut net);
        assert_eq!(ans.len(), 1);
        assert_eq!(stats.subqueries, 1);
        assert_eq!(stats.peers_contacted, 1);
    }

    #[test]
    fn union_queries_accumulate() {
        let sys = system();
        let engine = FederatedEngine::new(&sys);
        let mut net = SimNetwork::new();
        let u = UnionQuery::new(
            vec![Variable::new("x")],
            vec![
                GraphPattern::triple(
                    TermOrVar::var("x"),
                    TermOrVar::iri("http://e/p"),
                    TermOrVar::var("y"),
                ),
                GraphPattern::triple(
                    TermOrVar::var("x"),
                    TermOrVar::iri("http://e/q"),
                    TermOrVar::var("y"),
                ),
            ],
        );
        let (ans, _) = engine.evaluate_union(&u, Semantics::Certain, &mut net);
        assert_eq!(ans.len(), 4);
    }

    #[test]
    fn repeated_variable_within_pattern() {
        // (x, p, x) must only match reflexive triples, at the id level.
        let mut p = PeerId(0);
        let sys = RpsBuilder::new()
            .peer_turtle(
                "A",
                "<http://e/a> <http://e/p> <http://e/a> .\n\
                 <http://e/a> <http://e/p> <http://e/b> .",
                &mut p,
            )
            .unwrap()
            .build();
        let engine = FederatedEngine::new(&sys);
        let q = GraphPatternQuery::new(
            vec![Variable::new("x")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://e/p"),
                TermOrVar::var("x"),
            ),
        );
        let mut net = SimNetwork::new();
        let (ans, _) = engine.evaluate_query(&q, Semantics::Certain, &mut net);
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&vec![Term::iri("http://e/a")]));
    }

    #[test]
    fn constant_head_templates_project() {
        // A rewriting may specialise an answer position to a constant.
        let sys = system();
        let engine = FederatedEngine::new(&sys);
        let branch = GraphPattern::triple(
            TermOrVar::var("x"),
            TermOrVar::iri("http://e/p"),
            TermOrVar::var("y"),
        );
        let head = vec![
            TermOrVar::var("x"),
            TermOrVar::Term(Term::iri("http://answer/const")),
        ];
        let prepared = engine.prepare_branches(&[(branch, head)]);
        let mut net = SimNetwork::new();
        let (ids, _) = engine.execute(&prepared, Semantics::Certain, &mut net);
        // The constant is unknown to every peer dictionary, so it rides
        // in the plan's overlay; `decode_prepared` resolves it.
        let ans = engine.decode_prepared(&prepared, &ids);
        assert_eq!(ans.len(), 2);
        for tuple in &ans {
            assert_eq!(tuple[1], Term::iri("http://answer/const"));
        }
    }

    #[test]
    fn repeated_overlay_constants_share_one_id() {
        // Two branches specialising the head to the *same* unknown
        // constant must produce one id per distinct answer tuple —
        // duplicate overlay ids would make the id-level union
        // over-report rows that decode identically.
        let sys = system();
        let engine = FederatedEngine::new(&sys);
        let branch = |pred: &str| {
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri(pred),
                TermOrVar::var("y"),
            )
        };
        let head = vec![
            TermOrVar::var("x"),
            TermOrVar::Term(Term::iri("http://answer/const")),
        ];
        // Both branches bind x = e/m1 (via p at peer A and q at peer B),
        // so their projected tuples coincide.
        let prepared = engine.prepare_branches(&[
            (
                GraphPattern::triple(
                    TermOrVar::var("x"),
                    TermOrVar::iri("http://e/p"),
                    TermOrVar::var("m"),
                ),
                head.clone(),
            ),
            (branch("http://e/p"), head),
        ]);
        let mut net = SimNetwork::new();
        let (ids, _) = engine.execute(&prepared, Semantics::Certain, &mut net);
        let decoded = engine.decode_prepared(&prepared, &ids);
        assert_eq!(
            ids.len(),
            decoded.len(),
            "id-level and term-level answer counts must agree"
        );
    }

    #[test]
    fn parallel_execution_is_byte_identical_to_sequential() {
        let sys = system();
        let engine = FederatedEngine::new(&sys);
        // A union with several branches so the fan-out has work to
        // split; one branch carries an overlay head constant.
        let mk = |pred: &str| {
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri(pred),
                TermOrVar::var("y"),
            )
        };
        let head = vec![TermOrVar::var("x"), TermOrVar::var("y")];
        let branches = vec![
            (mk("http://e/p"), head.clone()),
            (mk("http://e/q"), head.clone()),
            (mk("http://c/r"), head.clone()),
            (
                mk("http://e/p"),
                vec![
                    TermOrVar::var("x"),
                    TermOrVar::Term(Term::iri("http://answer/const")),
                ],
            ),
        ];
        let prepared = engine.prepare_branches(&branches);
        for semantics in [Semantics::Certain, Semantics::Star] {
            let mut seq_net = SimNetwork::new();
            let (seq_ids, seq_stats) = engine.execute(&prepared, semantics, &mut seq_net);
            for threads in [1, 2, 4, 8] {
                let mut par_net = SimNetwork::new();
                let (par_ids, par_stats) =
                    engine.execute_parallel(&prepared, semantics, &mut par_net, threads);
                assert_eq!(par_ids, seq_ids, "{threads} threads, {semantics:?}");
                assert_eq!(par_stats, seq_stats);
                assert_eq!(par_net.messages(), seq_net.messages(), "traffic trace");
            }
        }
    }

    #[test]
    fn dead_branches_are_pruned() {
        let sys = system();
        let engine = FederatedEngine::new(&sys);
        let branch = GraphPattern::triple(
            TermOrVar::var("x"),
            TermOrVar::iri("http://e/p"),
            TermOrVar::var("y"),
        );
        // Head variable `z` never occurs in the body: no tuple can bind.
        let prepared = engine.prepare_branches(&[(branch, vec![TermOrVar::var("z")])]);
        let mut net = SimNetwork::new();
        let (ids, stats) = engine.execute(&prepared, Semantics::Certain, &mut net);
        assert!(ids.is_empty());
        assert_eq!(stats.subqueries, 0);
    }

    #[test]
    fn blank_joins_match_centralised_scoping() {
        // Peer stores a blank-mediated path entirely locally; federated
        // join on the blank must succeed exactly as centralised.
        let mut a = PeerId(0);
        let sys = RpsBuilder::new()
            .peer_turtle(
                "A",
                "<http://e/f> <http://e/starring> _:c .\n\
                 _:c <http://e/artist> <http://e/p1> .",
                &mut a,
            )
            .unwrap()
            .build();
        let q = GraphPatternQuery::new(
            vec![Variable::new("y")],
            GraphPattern::triple(
                TermOrVar::iri("http://e/f"),
                TermOrVar::iri("http://e/starring"),
                TermOrVar::var("z"),
            )
            .and(GraphPattern::triple(
                TermOrVar::var("z"),
                TermOrVar::iri("http://e/artist"),
                TermOrVar::var("y"),
            )),
        );
        let engine = FederatedEngine::new(&sys);
        let mut net = SimNetwork::new();
        let (fed, _) = engine.evaluate_query(&q, Semantics::Certain, &mut net);
        let central = central_eval(&sys.stored_database(), &q, Semantics::Certain);
        assert_eq!(fed, central);
        assert_eq!(fed.len(), 1);
    }
}
