//! A deterministic message-accounting network simulator.
//!
//! The paper's Section 5 prototype sketch performs *federated querying
//! over the sources*; what matters for the scalability story is how many
//! messages and bytes cross the network and how the critical path grows
//! with the number of peers. This simulator models exactly that — no
//! sockets, no threads, fully deterministic.

use std::collections::BTreeMap;

/// Identifier of a network node (aligned with `rps_core::PeerId.0`; the
/// originator gets its own id).
pub type NodeId = usize;

/// A latency/bandwidth cost model.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// One-way latency per message, in simulated milliseconds.
    pub latency_ms: f64,
    /// Transfer cost per kilobyte, in simulated milliseconds.
    pub ms_per_kb: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            latency_ms: 10.0,
            ms_per_kb: 0.1,
        }
    }
}

/// One recorded message.
#[derive(Clone, Debug, PartialEq)]
pub struct Message {
    /// Sender node.
    pub from: NodeId,
    /// Receiver node.
    pub to: NodeId,
    /// Payload size in bytes — the exact length of the encoded wire
    /// frame (`rps_p2p::wire`) the transports exchange, so simulated
    /// traffic and real TCP traffic agree byte for byte.
    pub bytes: usize,
    /// A short label ("subquery", "answers", "error", …) for traces.
    pub kind: &'static str,
    /// 1-based delivery attempt of the exchange this message belongs
    /// to; retries record fresh messages with higher attempts, so retry
    /// traffic stays visible in [`SimNetwork::bytes_by_kind`] and
    /// [`SimNetwork::round_makespan_ms`].
    pub attempt: u32,
}

/// The simulated network: records messages and derives cost statistics.
#[derive(Clone, Debug, Default)]
pub struct SimNetwork {
    messages: Vec<Message>,
}

impl SimNetwork {
    /// A fresh network with no recorded traffic.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a first-attempt message.
    pub fn send(&mut self, from: NodeId, to: NodeId, bytes: usize, kind: &'static str) {
        self.send_attempt(from, to, bytes, kind, 1);
    }

    /// Records a message belonging to the given (1-based) delivery
    /// attempt of its exchange.
    pub fn send_attempt(
        &mut self,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        kind: &'static str,
        attempt: u32,
    ) {
        self.messages.push(Message {
            from,
            to,
            bytes,
            kind,
            attempt,
        });
    }

    /// All recorded messages, in order.
    pub fn messages(&self) -> &[Message] {
        &self.messages
    }

    /// Total number of messages.
    pub fn message_count(&self) -> usize {
        self.messages.len()
    }

    /// Total bytes transferred.
    pub fn total_bytes(&self) -> usize {
        self.messages.iter().map(|m| m.bytes).sum()
    }

    /// Bytes per message kind (for traces/reports).
    pub fn bytes_by_kind(&self) -> BTreeMap<&'static str, usize> {
        let mut out = BTreeMap::new();
        for m in &self.messages {
            *out.entry(m.kind).or_insert(0) += m.bytes;
        }
        out
    }

    /// Bytes carried by retry traffic (messages with attempt > 1) —
    /// the overhead a fault schedule added on top of the fault-free
    /// exchange.
    pub fn retry_bytes(&self) -> usize {
        self.messages
            .iter()
            .filter(|m| m.attempt > 1)
            .map(|m| m.bytes)
            .sum()
    }

    /// Simulated makespan of one federated round under a cost model:
    /// requests fan out in parallel, so the critical path is the slowest
    /// per-peer exchange (request latency + response latency + transfer).
    ///
    /// Messages are grouped by remote node; each group's cost is
    /// `2·latency + bytes/kb · ms_per_kb`, and the round cost is the
    /// maximum over groups.
    pub fn round_makespan_ms(&self, model: &CostModel, originator: NodeId) -> f64 {
        let mut per_peer: BTreeMap<NodeId, usize> = BTreeMap::new();
        for m in &self.messages {
            let remote = if m.from == originator { m.to } else { m.from };
            *per_peer.entry(remote).or_insert(0) += m.bytes;
        }
        per_peer
            .values()
            .map(|&bytes| 2.0 * model.latency_ms + (bytes as f64 / 1024.0) * model.ms_per_kb)
            .fold(0.0, f64::max)
    }

    /// Total serial cost (sum over all messages), the pessimistic bound.
    pub fn serial_cost_ms(&self, model: &CostModel) -> f64 {
        self.messages
            .iter()
            .map(|m| model.latency_ms + (m.bytes as f64 / 1024.0) * model.ms_per_kb)
            .sum()
    }

    /// Clears recorded traffic (e.g. between queries).
    pub fn reset(&mut self) {
        self.messages.clear();
    }

    /// Appends another network's recorded traffic to this one — used to
    /// merge the per-branch networks of a parallel federated fan-out
    /// into one deterministic trace (callers absorb in branch order).
    pub fn absorb(&mut self, other: &SimNetwork) {
        self.messages.extend(other.messages.iter().cloned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting() {
        let mut n = SimNetwork::new();
        n.send(0, 1, 100, "subquery");
        n.send(1, 0, 2048, "answers");
        n.send(0, 2, 100, "subquery");
        assert_eq!(n.message_count(), 3);
        assert_eq!(n.total_bytes(), 2248);
        assert_eq!(n.bytes_by_kind()["subquery"], 200);
    }

    #[test]
    fn makespan_is_max_over_peers() {
        let mut n = SimNetwork::new();
        let model = CostModel {
            latency_ms: 5.0,
            ms_per_kb: 1.0,
        };
        n.send(0, 1, 1024, "subquery"); // peer 1: 1 KB
        n.send(0, 2, 4096, "subquery"); // peer 2: 4 KB (critical)
        let makespan = n.round_makespan_ms(&model, 0);
        assert!((makespan - (10.0 + 4.0)).abs() < 1e-9);
        // Serial cost adds everything.
        assert!(n.serial_cost_ms(&model) > makespan);
    }

    #[test]
    fn retry_traffic_is_visible() {
        let mut n = SimNetwork::new();
        n.send(0, 1, 40, "subquery");
        n.send_attempt(0, 1, 40, "subquery", 2);
        n.send_attempt(1, 0, 7, "answers", 2);
        assert_eq!(n.retry_bytes(), 47);
        assert_eq!(n.bytes_by_kind()["subquery"], 80);
        assert_eq!(n.messages()[0].attempt, 1);
        // Retries charge the same per-peer byte pools the makespan
        // model reads.
        let model = CostModel {
            latency_ms: 0.0,
            ms_per_kb: 1024.0,
        };
        assert!((n.round_makespan_ms(&model, 0) - 87.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears() {
        let mut n = SimNetwork::new();
        n.send(0, 1, 10, "x");
        n.reset();
        assert_eq!(n.message_count(), 0);
    }
}
