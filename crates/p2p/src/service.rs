//! The Section 5 prototype, end to end: a SPARQL query service that
//! (a) rewrites the query to entail the peer mappings and (b) evaluates
//! the rewriting federatedly over the sources.
//!
//! [`FederatedSession`] is the federated counterpart of
//! [`rps_core::Session`], sharing its vocabulary: it is built from an
//! [`RdfPeerSystem`] plus an [`EngineConfig`], compiles a query **once**
//! with [`FederatedSession::prepare`] (canonical UCQ rewriting + id-level
//! federation plan) into a [`PreparedFederatedQuery`], executes it any
//! number of times, streams answers through
//! [`rps_core::AnswerStream`], and reports failures as
//! [`rps_core::RpsError`]. The old [`P2pQueryService`] remains as a thin
//! shim.

use crate::federation::{FederatedEngine, FederationReport, FederationStats, PreparedFederation};
use crate::network::{CostModel, SimNetwork};
use crate::transport::{SimTransport, Transport};
use rps_core::{
    canonical_plan_key, AnswerSet, AnswerStream, EngineConfig, EquivalenceIndex, ExecRoute,
    PlanCache, PlanCacheStats, RdfPeerSystem, RpsError, RpsRewriter,
};
use rps_query::{GraphPatternQuery, Semantics};
use rps_rdf::TermId;
use rps_tgd::RewriteConfig;
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

/// A query compiled once against a [`FederatedSession`]: the canonical
/// UCQ rewriting is expanded and every branch is routed, constant-
/// resolved and id-compiled for repeated federated execution — on the
/// session that prepared it (the compiled plan's term ids belong to that
/// session's answer dictionary; execution elsewhere returns
/// [`RpsError::SessionMismatch`]).
pub struct PreparedFederatedQuery {
    session_id: u64,
    /// The session's configuration generation at prepare time (see
    /// [`FederatedSession::config_mut`]).
    generation: u32,
    query: GraphPatternQuery,
    prepared: PreparedFederation,
    complete: bool,
    explored: usize,
    branches: usize,
}

impl PreparedFederatedQuery {
    /// `true` iff the rewriting was exhaustive (perfect under
    /// Proposition 2's conditions). Only [`FederatedSession::prepare_lenient`]
    /// hands out queries where this is `false`.
    pub fn complete(&self) -> bool {
        self.complete
    }

    /// Number of distinct CQs the rewriting explored.
    pub fn explored(&self) -> usize {
        self.explored
    }

    /// Number of UNION branches compiled.
    pub fn branch_count(&self) -> usize {
        self.branches
    }

    /// The source query.
    pub fn query(&self) -> &GraphPatternQuery {
        &self.query
    }
}

/// Result of one federated execution: a streaming answer iterator plus
/// the run's completeness flag, traffic statistics and fault-tolerance
/// report.
pub struct FederatedAnswer {
    /// The answers (route is [`ExecRoute::Federated`]).
    pub stream: AnswerStream,
    /// `true` iff the underlying rewriting was exhaustive.
    pub complete: bool,
    /// Number of UNION branches evaluated.
    pub branches: usize,
    /// Federation traffic statistics.
    pub stats: FederationStats,
    /// Simulated wall-clock of the federated round.
    pub makespan_ms: f64,
    /// The fault-tolerance outcome: skipped peers, retries per branch,
    /// quorum accounting. [`FederationReport::degraded`] is `false` on
    /// a fault-free run, and under `FailurePolicy::Strict` always — a
    /// degraded strict run errors instead.
    pub report: FederationReport,
}

/// The federated answering façade: rewrite against the quotient system
/// once, federate the id-compiled branches over the canonical peer
/// stores, expand the answers back over the equivalence classes.
pub struct FederatedSession {
    id: u64,
    /// Bumped by [`FederatedSession::config_mut`]; prepared queries are
    /// stamped with it so post-prepare config changes surface as
    /// [`RpsError::StalePlan`] instead of executing silently-stale
    /// plans.
    generation: u32,
    rewriter: RpsRewriter,
    engine: FederatedEngine,
    config: EngineConfig,
    cost_model: CostModel,
    /// The peer-exchange transport (defaults to the perfect in-process
    /// [`SimTransport`] over the engine's sealed peer graphs).
    transport: Arc<dyn Transport>,
}

/// Process-unique federated-session ids (see
/// [`PreparedFederatedQuery`]'s session-binding contract).
fn next_session_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl FederatedSession {
    /// Builds a session after validating the system.
    pub fn open(system: &RdfPeerSystem, config: EngineConfig) -> Result<Self, RpsError> {
        system.validate()?;
        Ok(Self::new(system, config))
    }

    /// Builds a session without validating the system. Peer stores are
    /// canonicalised on equivalence classes (the combined approach), so
    /// rewriting only has to expand graph-mapping dependencies.
    pub fn new(system: &RdfPeerSystem, config: EngineConfig) -> Self {
        let rewriter = RpsRewriter::new(system);
        let engine = FederatedEngine::new_canonical(system, rewriter.index());
        let transport = Arc::new(SimTransport::new(engine.peer_graphs()));
        FederatedSession {
            id: next_session_id(),
            generation: 0,
            rewriter,
            engine,
            config,
            cost_model: CostModel::default(),
            transport,
        }
    }

    /// Overrides the network cost model.
    pub fn with_cost_model(mut self, model: CostModel) -> Self {
        self.cost_model = model;
        self
    }

    /// Overrides the peer-exchange transport — e.g. a
    /// [`crate::FaultyTransport`] for deterministic fault injection, or
    /// a [`crate::TcpTransport`] served over the engine's graphs
    /// ([`FederatedSession::peer_graphs`]). Retry and failure behaviour
    /// come from the configuration
    /// ([`rps_core::EngineConfig::retry`]/[`rps_core::EngineConfig::failure`]).
    pub fn with_transport(mut self, transport: Arc<dyn Transport>) -> Self {
        self.transport = transport;
        self
    }

    /// The engine's sealed peer graphs, for wiring up external
    /// transports that must serve the same stores.
    pub fn peer_graphs(&self) -> Arc<Vec<rps_rdf::Graph>> {
        self.engine.peer_graphs()
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Mutable access to the configuration. Applies to queries prepared
    /// afterwards; queries prepared *before* the change become stale and
    /// report [`RpsError::StalePlan`] at execute — re-prepare them.
    pub fn config_mut(&mut self) -> &mut EngineConfig {
        self.generation += 1;
        &mut self.config
    }

    /// `true` iff Proposition 2 guarantees the rewriting is perfect.
    pub fn fo_rewritable(&self) -> bool {
        self.rewriter.fo_rewritable()
    }

    /// Compiles a query once for repeated federated execution: canonical
    /// UCQ rewriting, branch decoding, per-pattern routing, per-peer
    /// constant resolution and head-template interning all happen here.
    ///
    /// The federated pipeline computes certain answers; requesting the
    /// `Q*` semantics is a configuration error
    /// ([`RpsError::StarNeedsMaterialisation`]). A rewriting that
    /// exhausts its budgets before reaching a fixpoint is unsound to
    /// federate silently — there is no materialised fallback out here —
    /// so it is reported as the typed [`RpsError::RewriteBudget`];
    /// callers that deliberately want the truncated union (the
    /// historical lenient contract) use [`Self::prepare_lenient`].
    pub fn prepare(
        &mut self,
        query: &GraphPatternQuery,
    ) -> Result<PreparedFederatedQuery, RpsError> {
        let prepared = self.prepare_lenient(query)?;
        if !prepared.complete {
            return Err(RpsError::RewriteBudget {
                explored: prepared.explored,
                max_depth: self.config.rewrite.max_depth,
                max_cqs: self.config.rewrite.max_cqs,
            });
        }
        Ok(prepared)
    }

    /// [`Self::prepare`] without the completeness check: an exhausted
    /// rewriting budget yields a prepared query over the *truncated*
    /// union, flagged by [`PreparedFederatedQuery::complete`] returning
    /// `false` (its answers are sound but possibly incomplete).
    pub fn prepare_lenient(
        &mut self,
        query: &GraphPatternQuery,
    ) -> Result<PreparedFederatedQuery, RpsError> {
        if self.config.semantics == Semantics::Star {
            return Err(RpsError::StarNeedsMaterialisation);
        }
        let rewriting = self.rewriter.rewrite_canonical(query, &self.config.rewrite);
        let branches = rewriting.branches(self.rewriter.encoder());
        let prepared = self.engine.prepare_branches(&branches);
        Ok(PreparedFederatedQuery {
            session_id: self.id,
            generation: self.generation,
            query: query.clone(),
            prepared,
            complete: rewriting.complete,
            explored: rewriting.explored,
            branches: branches.len(),
        })
    }

    /// Executes a prepared query: federate every branch over the
    /// canonical peer stores at the id level, then expand the union over
    /// the equivalence classes. No term is re-parsed or re-interned per
    /// peer per round — that work happened once, at prepare time. The
    /// query must have been prepared by *this* session
    /// ([`RpsError::SessionMismatch`] otherwise — its term ids belong to
    /// this session's answer dictionary).
    pub fn execute(&self, prepared: &PreparedFederatedQuery) -> Result<FederatedAnswer, RpsError> {
        if prepared.session_id != self.id {
            return Err(RpsError::SessionMismatch);
        }
        if prepared.generation != self.generation {
            return Err(RpsError::StalePlan {
                prepared: prepared.generation,
                current: self.generation,
            });
        }
        let mut net = SimNetwork::new();
        let (canon_ids, stats, report) = self.engine.execute_with(
            &prepared.prepared,
            Semantics::Certain,
            &mut net,
            &*self.transport,
            &self.config.retry,
            self.config.failure,
        )?;
        finish_federated(
            prepared,
            canon_ids,
            stats,
            report,
            net,
            &self.engine,
            self.rewriter.index(),
            &self.cost_model,
        )
    }

    /// Prepares and executes in one call. Prefer
    /// [`FederatedSession::prepare`] + [`FederatedSession::execute`] when
    /// the same query runs repeatedly.
    pub fn answer(&mut self, query: &GraphPatternQuery) -> Result<FederatedAnswer, RpsError> {
        let prepared = self.prepare(query)?;
        self.execute(&prepared)
    }

    /// Freezes this session into a shareable [`FrozenFederatedSession`]
    /// with the default plan-cache bound: a `Send + Sync` handle whose
    /// `prepare(&self)`/`execute(&self)` run concurrently from many
    /// threads, and whose execution fans the prepared branches out
    /// across OS threads. The rewrite engine's `IdTgdSet` is compiled
    /// eagerly here. `Q*` semantics has no federated route, so it is
    /// rejected at freeze ([`RpsError::StarNeedsMaterialisation`]).
    pub fn freeze(self) -> Result<FrozenFederatedSession, RpsError> {
        self.freeze_with_cache_capacity(rps_core::DEFAULT_PLAN_CACHE_CAPACITY)
    }

    /// [`FederatedSession::freeze`] with an explicit plan-cache bound.
    pub fn freeze_with_cache_capacity(
        mut self,
        capacity: usize,
    ) -> Result<FrozenFederatedSession, RpsError> {
        if self.config.semantics == Semantics::Star {
            return Err(RpsError::StarNeedsMaterialisation);
        }
        self.rewriter.precompile_canonical();
        let eq_index = self.rewriter.index().clone();
        let fo_rewritable = self.rewriter.fo_rewritable();
        Ok(FrozenFederatedSession {
            inner: Arc::new(FrozenFedInner {
                id: self.id,
                generation: self.generation,
                fo_rewritable,
                engine: self.engine,
                compiler: Mutex::new(self.rewriter),
                eq_index,
                config: self.config,
                cost_model: self.cost_model,
                transport: self.transport,
                cache: Mutex::new(PlanCache::new(capacity)),
            }),
        })
    }
}

/// Decodes, equivalence-expands and packages one federated execution —
/// the tail shared by [`FederatedSession::execute`] and
/// [`FrozenFederatedSession::execute`].
#[allow(clippy::too_many_arguments)]
fn finish_federated(
    prepared: &PreparedFederatedQuery,
    canon_ids: BTreeSet<Vec<TermId>>,
    stats: FederationStats,
    report: FederationReport,
    net: SimNetwork,
    engine: &FederatedEngine,
    eq_index: &EquivalenceIndex,
    cost_model: &CostModel,
) -> Result<FederatedAnswer, RpsError> {
    let canon_tuples = engine.decode_prepared(&prepared.prepared, &canon_ids);
    let tuples = rps_core::expand_answers(&canon_tuples, eq_index);
    let makespan_ms = net.round_makespan_ms(cost_model, engine.peer_count());
    let vars = prepared
        .query
        .free_vars()
        .iter()
        .map(|v| v.name().to_string())
        .collect();
    Ok(FederatedAnswer {
        stream: AnswerStream::from_terms(vars, ExecRoute::Federated, tuples),
        complete: prepared.complete,
        branches: prepared.branches,
        stats,
        makespan_ms,
        report,
    })
}

/// The shared state behind every clone of a [`FrozenFederatedSession`].
struct FrozenFedInner {
    id: u64,
    generation: u32,
    fo_rewritable: bool,
    /// The engine is immutable after construction (preparation carries
    /// unknown constants in the plan instead of interning them), so
    /// executes touch it lock-free from any number of threads.
    engine: FederatedEngine,
    /// The rewriting compile state — held only while preparing a query
    /// that missed the plan cache.
    compiler: Mutex<RpsRewriter>,
    eq_index: EquivalenceIndex,
    config: EngineConfig,
    cost_model: CostModel,
    /// The peer-exchange transport, shared lock-free by concurrent
    /// executes (the trait requires `Send + Sync`).
    transport: Arc<dyn Transport>,
    cache: Mutex<PlanCache<PreparedFederatedQuery>>,
}

/// The federated counterpart of `rps_core::FrozenSession`: a
/// `Send + Sync` handle over a frozen [`FederatedSession`] on which
/// [`prepare`](FrozenFederatedSession::prepare) and
/// [`execute`](FrozenFederatedSession::execute) take `&self` and run
/// concurrently, with the same bounded plan cache keyed on the
/// canonical numbered-variable query. `execute` additionally fans the
/// prepared UNION branches out across OS threads
/// (`std::thread::scope`), merging the per-branch id-level answer sets,
/// statistics and traffic traces deterministically in branch order —
/// answers are byte-identical to the sequential session's. Cloning is
/// an `Arc` bump.
#[derive(Clone)]
pub struct FrozenFederatedSession {
    inner: Arc<FrozenFedInner>,
}

// One handle, many threads — enforced at compile time.
#[allow(dead_code)]
fn static_assert_send_sync() {
    fn assert<T: Send + Sync>() {}
    assert::<FrozenFederatedSession>();
    assert::<PreparedFederatedQuery>();
}

impl FrozenFederatedSession {
    /// The (immutable) configuration this session was frozen with.
    pub fn config(&self) -> &EngineConfig {
        &self.inner.config
    }

    /// `true` iff Proposition 2 guarantees the rewriting is perfect.
    pub fn fo_rewritable(&self) -> bool {
        self.inner.fo_rewritable
    }

    /// Plan-cache hit/miss counters and occupancy.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.inner.cache.lock().expect("plan cache lock").stats()
    }

    /// Compiles a query — or returns the cached plan of an α-equivalent
    /// one. Strict like [`FederatedSession::prepare`]: an exhausted
    /// rewriting budget is the typed [`RpsError::RewriteBudget`] (a
    /// truncated union is never cached).
    pub fn prepare(
        &self,
        query: &GraphPatternQuery,
    ) -> Result<Arc<PreparedFederatedQuery>, RpsError> {
        let key = canonical_plan_key(query);
        if let Some(hit) = self
            .inner
            .cache
            .lock()
            .expect("plan cache lock")
            .lookup(&key)
        {
            return Ok(hit);
        }
        let compiled = {
            let mut rewriter = self.inner.compiler.lock().expect("compile lock");
            let rewriting = rewriter.rewrite_canonical(query, &self.inner.config.rewrite);
            if !rewriting.complete {
                return Err(RpsError::RewriteBudget {
                    explored: rewriting.explored,
                    max_depth: self.inner.config.rewrite.max_depth,
                    max_cqs: self.inner.config.rewrite.max_cqs,
                });
            }
            let branches = rewriting.branches(rewriter.encoder());
            let prepared = self.inner.engine.prepare_branches(&branches);
            PreparedFederatedQuery {
                session_id: self.inner.id,
                generation: self.inner.generation,
                query: query.clone(),
                prepared,
                complete: rewriting.complete,
                explored: rewriting.explored,
                branches: branches.len(),
            }
        };
        Ok(self
            .inner
            .cache
            .lock()
            .expect("plan cache lock")
            .insert(key, Arc::new(compiled)))
    }

    /// Executes a prepared query with the branch fan-out spread over up
    /// to [`ExecConfig::resolved_workers`](rps_core::ExecConfig) OS
    /// threads. Accepts queries prepared by this frozen session or by
    /// the mutable session it was frozen from.
    pub fn execute(&self, prepared: &PreparedFederatedQuery) -> Result<FederatedAnswer, RpsError> {
        let threads = self.inner.config.exec.resolved_workers();
        self.execute_with_threads(prepared, threads)
    }

    /// [`FrozenFederatedSession::execute`] with an explicit worker-thread
    /// bound (1 runs the sequential path; the bound is also clamped to
    /// the live branch count).
    pub fn execute_with_threads(
        &self,
        prepared: &PreparedFederatedQuery,
        max_threads: usize,
    ) -> Result<FederatedAnswer, RpsError> {
        let inner = &*self.inner;
        if prepared.session_id != inner.id {
            return Err(RpsError::SessionMismatch);
        }
        if prepared.generation != inner.generation {
            return Err(RpsError::StalePlan {
                prepared: prepared.generation,
                current: inner.generation,
            });
        }
        let mut net = SimNetwork::new();
        let (canon_ids, stats, report) = inner.engine.execute_parallel_with(
            &prepared.prepared,
            Semantics::Certain,
            &mut net,
            &*inner.transport,
            &inner.config.retry,
            inner.config.failure,
            max_threads,
        )?;
        finish_federated(
            prepared,
            canon_ids,
            stats,
            report,
            net,
            &inner.engine,
            &inner.eq_index,
            &inner.cost_model,
        )
    }

    /// Prepares (or fetches from the plan cache) and executes in one
    /// call.
    pub fn answer(&self, query: &GraphPatternQuery) -> Result<FederatedAnswer, RpsError> {
        let prepared = self.prepare(query)?;
        self.execute(&prepared)
    }
}

/// Result of a federated, rewriting-backed query execution (legacy
/// shape; see [`FederatedAnswer`] for the streaming form).
#[derive(Clone, Debug)]
pub struct ServiceAnswer {
    /// The certain answers.
    pub answers: AnswerSet,
    /// `true` iff the rewriting was exhaustive (perfect under
    /// Proposition 2's conditions).
    pub complete: bool,
    /// Number of UNION branches evaluated.
    pub branches: usize,
    /// Federation traffic statistics.
    pub stats: FederationStats,
    /// Simulated wall-clock of the federated round.
    pub makespan_ms: f64,
}

/// A SPARQL query compiled against a federated session: the lowered
/// assembly recipe plus one prepared federated plan per lowered CQ.
/// Built by [`FederatedSession::prepare_sparql`] /
/// [`FrozenFederatedSession::prepare_sparql`]; the underlying plans
/// are session-bound exactly like [`PreparedFederatedQuery`].
pub struct PreparedFederatedSparql {
    lowered: rps_query::LoweredSparql,
    plans: Vec<Arc<PreparedFederatedQuery>>,
}

impl PreparedFederatedSparql {
    /// The number of federated plans behind this query.
    pub fn plan_count(&self) -> usize {
        self.plans.len()
    }

    /// `true` for ASK queries.
    pub fn is_ask(&self) -> bool {
        self.lowered.is_ask()
    }

    /// The output column names, in order (empty for ASK).
    pub fn columns(&self) -> Vec<String> {
        self.lowered.columns()
    }
}

fn lower_sparql_text(text: &str) -> Result<rps_query::LoweredSparql, RpsError> {
    let query =
        rps_query::parse_sparql(text, &rps_rdf::PrefixMap::common()).map_err(RpsError::Sparql)?;
    Ok(query.lower())
}

fn assemble_sparql(
    lowered: &rps_query::LoweredSparql,
    answers: Vec<BTreeSet<Vec<rps_rdf::Term>>>,
) -> rps_query::SparqlResult {
    lowered.assemble(&answers)
}

impl FederatedSession {
    /// Compiles a SPARQL SELECT/ASK query (the subset documented in
    /// `rps_query::sparql`) for repeated federated execution: each
    /// lowered conjunctive query is rewritten, routed and id-compiled
    /// through [`FederatedSession::prepare`], and execution assembles
    /// the streams with the same term-level tail as the local session
    /// types — so the federated route answers byte-identically.
    pub fn prepare_sparql(&mut self, text: &str) -> Result<PreparedFederatedSparql, RpsError> {
        let lowered = lower_sparql_text(text)?;
        let plans = lowered
            .queries()
            .into_iter()
            .map(|cq| self.prepare(cq).map(Arc::new))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PreparedFederatedSparql { lowered, plans })
    }

    /// Executes a prepared SPARQL query over the federation.
    pub fn execute_sparql(
        &self,
        prepared: &PreparedFederatedSparql,
    ) -> Result<rps_query::SparqlResult, RpsError> {
        let answers = prepared
            .plans
            .iter()
            .map(|plan| {
                self.execute(plan)
                    .map(|answer| answer.stream.collect::<BTreeSet<_>>())
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(assemble_sparql(&prepared.lowered, answers))
    }

    /// Parses, prepares and executes in one call.
    pub fn answer_sparql(&mut self, text: &str) -> Result<rps_query::SparqlResult, RpsError> {
        let prepared = self.prepare_sparql(text)?;
        self.execute_sparql(&prepared)
    }
}

impl FrozenFederatedSession {
    /// [`FederatedSession::prepare_sparql`] on a frozen federated
    /// session: every lowered CQ goes through the bounded plan cache,
    /// so hot SPARQL queries reuse their compiled federated plans.
    pub fn prepare_sparql(&self, text: &str) -> Result<PreparedFederatedSparql, RpsError> {
        let lowered = lower_sparql_text(text)?;
        let plans = lowered
            .queries()
            .into_iter()
            .map(|cq| self.prepare(cq))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PreparedFederatedSparql { lowered, plans })
    }

    /// Executes a prepared SPARQL query over the federation.
    pub fn execute_sparql(
        &self,
        prepared: &PreparedFederatedSparql,
    ) -> Result<rps_query::SparqlResult, RpsError> {
        let answers = prepared
            .plans
            .iter()
            .map(|plan| {
                self.execute(plan)
                    .map(|answer| answer.stream.collect::<BTreeSet<_>>())
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(assemble_sparql(&prepared.lowered, answers))
    }

    /// Parses, prepares (or fetches from the plan cache) and executes
    /// in one call.
    pub fn answer_sparql(&self, text: &str) -> Result<rps_query::SparqlResult, RpsError> {
        let prepared = self.prepare_sparql(text)?;
        self.execute_sparql(&prepared)
    }
}

/// The legacy query service, kept as a thin shim over
/// [`FederatedSession`]. **Deprecated in favour of `FederatedSession`**,
/// which prepares queries once, streams answers and reports typed
/// errors.
pub struct P2pQueryService {
    session: FederatedSession,
}

impl P2pQueryService {
    /// Builds the service for a system.
    pub fn new(system: &RdfPeerSystem) -> Self {
        P2pQueryService {
            session: FederatedSession::new(system, EngineConfig::default()),
        }
    }

    /// Overrides the rewriting budgets.
    pub fn with_rewrite_config(mut self, config: RewriteConfig) -> Self {
        self.session.config_mut().rewrite = config;
        self
    }

    /// Overrides the network cost model.
    pub fn with_cost_model(mut self, model: CostModel) -> Self {
        self.session = self.session.with_cost_model(model);
        self
    }

    /// `true` iff Proposition 2 guarantees the rewriting is perfect.
    pub fn fo_rewritable(&self) -> bool {
        self.session.fo_rewritable()
    }

    /// Answers a query through the prepared federated pipeline. Keeps
    /// the historical lenient contract: an exhausted rewriting budget
    /// evaluates the truncated union (flagged via
    /// [`ServiceAnswer::complete`]) instead of erroring like
    /// [`FederatedSession::prepare`] does.
    pub fn answer(&mut self, query: &GraphPatternQuery) -> ServiceAnswer {
        let result = self
            .session
            .prepare_lenient(query)
            .and_then(|prepared| self.session.execute(&prepared))
            .expect("certain-semantics federated answering is infallible");
        ServiceAnswer {
            complete: result.complete,
            branches: result.branches,
            stats: result.stats.clone(),
            makespan_ms: result.makespan_ms,
            answers: result.stream.into_set(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rps_core::{certain_answers, chase_system, PeerId, RpsBuilder, RpsChaseConfig};
    use rps_query::{GraphPattern, TermOrVar, Variable};

    fn linear_system() -> RdfPeerSystem {
        let mut a = PeerId(0);
        let mut b = PeerId(0);
        let premise = GraphPatternQuery::new(
            vec![Variable::new("x"), Variable::new("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://b/actor"),
                TermOrVar::var("y"),
            ),
        );
        let conclusion = GraphPatternQuery::new(
            vec![Variable::new("x"), Variable::new("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://a/cast"),
                TermOrVar::var("y"),
            ),
        );
        RpsBuilder::new()
            .peer_turtle("A", "<http://a/f1> <http://a/cast> <http://a/p1> .", &mut a)
            .unwrap()
            .peer_turtle(
                "B",
                "<http://b/f2> <http://b/actor> <http://b/p2> .",
                &mut b,
            )
            .unwrap()
            .assertion(b, a, premise, conclusion)
            .unwrap()
            .equivalence("http://a/p1", "http://b/p2")
            .build()
    }

    fn cast_query() -> GraphPatternQuery {
        GraphPatternQuery::new(
            vec![Variable::new("x"), Variable::new("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://a/cast"),
                TermOrVar::var("y"),
            ),
        )
    }

    #[test]
    fn service_matches_materialised_answers() {
        let sys = linear_system();
        let mut service = P2pQueryService::new(&sys);
        assert!(service.fo_rewritable());
        let result = service.answer(&cast_query());
        assert!(result.complete);
        let sol = chase_system(&sys, &RpsChaseConfig::default());
        let chased = certain_answers(&sol, &cast_query());
        assert_eq!(result.answers.tuples, chased.tuples);
        assert!(result.branches >= 2);
        assert!(result.stats.messages > 0);
        assert!(result.makespan_ms > 0.0);
    }

    #[test]
    fn repeated_queries_are_independent() {
        let sys = linear_system();
        let mut service = P2pQueryService::new(&sys);
        let r1 = service.answer(&cast_query());
        let r2 = service.answer(&cast_query());
        assert_eq!(r1.answers.tuples, r2.answers.tuples);
        assert_eq!(r1.stats, r2.stats);
    }

    #[test]
    fn session_prepares_once_and_executes_repeatedly() {
        let sys = linear_system();
        let mut session = FederatedSession::open(&sys, EngineConfig::default()).unwrap();
        let prepared = session.prepare(&cast_query()).unwrap();
        assert!(prepared.complete());
        assert!(prepared.branch_count() >= 2);
        let first = session.execute(&prepared).unwrap();
        assert_eq!(first.stream.route(), ExecRoute::Federated);
        let second = session.execute(&prepared).unwrap();
        assert_eq!(first.stats, second.stats);
        let a = first.stream.into_set();
        let b = second.stream.into_set();
        assert_eq!(a.tuples, b.tuples);
        let sol = chase_system(&sys, &RpsChaseConfig::default());
        assert_eq!(a.tuples, certain_answers(&sol, &cast_query()).tuples);
    }

    #[test]
    fn foreign_prepared_queries_are_rejected() {
        let sys = linear_system();
        let mut a = FederatedSession::open(&sys, EngineConfig::default()).unwrap();
        let b = FederatedSession::open(&sys, EngineConfig::default()).unwrap();
        let prepared = a.prepare(&cast_query()).unwrap();
        // Executing against another session's answer dictionary would
        // silently mistranslate ids; it must error instead.
        assert!(matches!(
            b.execute(&prepared),
            Err(RpsError::SessionMismatch)
        ));
        assert!(!a.execute(&prepared).unwrap().stream.into_set().is_empty());
    }

    #[test]
    fn exhausted_rewriting_budget_is_a_typed_error() {
        // Transitive closure is not FO-rewritable (Proposition 3): a
        // bounded expansion can never be exhaustive. The strict prepare
        // reports that as the typed budget error instead of silently
        // federating a truncated union; the lenient path keeps the
        // historical contract and flags the truncation.
        let sys = rps_lodgen::chain::transitive_system(6);
        let cfg = EngineConfig::default().with_rewrite(RewriteConfig {
            max_depth: 3,
            max_cqs: 10_000,
        });
        let mut session = FederatedSession::open(&sys, cfg).unwrap();
        let query = rps_lodgen::chain::edge_query();
        assert!(matches!(
            session.prepare(&query),
            Err(RpsError::RewriteBudget { .. })
        ));
        let prepared = session.prepare_lenient(&query).unwrap();
        assert!(!prepared.complete());
        assert!(prepared.explored() > 0);
        // Sound but possibly incomplete: short-range pairs are found.
        let answers = session.execute(&prepared).unwrap().stream.into_set();
        assert!(!answers.is_empty());
    }

    #[test]
    fn star_semantics_is_rejected() {
        let sys = linear_system();
        let cfg = EngineConfig::default().with_semantics(Semantics::Star);
        let mut session = FederatedSession::open(&sys, cfg.clone()).unwrap();
        assert!(matches!(
            session.prepare(&cast_query()),
            Err(RpsError::StarNeedsMaterialisation)
        ));
        // A frozen session rejects the configuration at freeze time.
        assert!(matches!(
            FederatedSession::open(&sys, cfg).unwrap().freeze(),
            Err(RpsError::StarNeedsMaterialisation)
        ));
    }

    #[test]
    fn config_changes_stale_federated_plans() {
        let sys = linear_system();
        let mut session = FederatedSession::open(&sys, EngineConfig::default()).unwrap();
        let prepared = session.prepare(&cast_query()).unwrap();
        session.config_mut().rewrite = RewriteConfig::default();
        assert!(matches!(
            session.execute(&prepared),
            Err(RpsError::StalePlan {
                prepared: 0,
                current: 1
            })
        ));
        let reprepared = session.prepare(&cast_query()).unwrap();
        assert!(!session
            .execute(&reprepared)
            .unwrap()
            .stream
            .into_set()
            .is_empty());
    }

    #[test]
    fn frozen_federated_matches_sequential_session() {
        let sys = linear_system();
        let mut seq = FederatedSession::open(&sys, EngineConfig::default()).unwrap();
        let expected = seq.answer(&cast_query()).unwrap();
        let expected_tuples = expected.stream.into_set().tuples;

        let frozen = FederatedSession::open(&sys, EngineConfig::default())
            .unwrap()
            .freeze()
            .unwrap();
        let prepared = frozen.prepare(&cast_query()).unwrap();
        for threads in [1, 2, 4, 8] {
            let got = frozen.execute_with_threads(&prepared, threads).unwrap();
            assert_eq!(got.stats, expected.stats, "{threads} threads");
            assert!((got.makespan_ms - expected.makespan_ms).abs() < 1e-9);
            assert_eq!(got.stream.into_set().tuples, expected_tuples);
        }
        // Re-preparing the same (α-equivalent) query is a cache hit on
        // the identical shared plan.
        let renamed = GraphPatternQuery::new(
            vec![Variable::new("a"), Variable::new("b")],
            GraphPattern::triple(
                TermOrVar::var("a"),
                TermOrVar::iri("http://a/cast"),
                TermOrVar::var("b"),
            ),
        );
        let again = frozen.prepare(&renamed).unwrap();
        assert!(std::sync::Arc::ptr_eq(&prepared, &again));
        let stats = frozen.plan_cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }
}
