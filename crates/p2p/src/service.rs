//! The Section 5 prototype, end to end: a SPARQL query service that
//! (a) rewrites the query to entail the peer mappings and (b) evaluates
//! the rewriting federatedly over the sources.

use crate::federation::{FederatedEngine, FederationStats};
use crate::network::{CostModel, SimNetwork};
use rps_core::{AnswerSet, RdfPeerSystem, RpsRewriter};
use rps_query::{GraphPatternQuery, Semantics};
use rps_tgd::RewriteConfig;

/// Result of a federated, rewriting-backed query execution.
#[derive(Clone, Debug)]
pub struct ServiceAnswer {
    /// The certain answers.
    pub answers: AnswerSet,
    /// `true` iff the rewriting was exhaustive (perfect under
    /// Proposition 2's conditions).
    pub complete: bool,
    /// Number of UNION branches evaluated.
    pub branches: usize,
    /// Federation traffic statistics.
    pub stats: FederationStats,
    /// Simulated wall-clock of the federated round.
    pub makespan_ms: f64,
}

/// The query service: owns the rewriter and the federated engine.
pub struct P2pQueryService {
    rewriter: RpsRewriter,
    engine: FederatedEngine,
    rewrite_config: RewriteConfig,
    cost_model: CostModel,
}

impl P2pQueryService {
    /// Builds the service for a system. Peer stores are canonicalised on
    /// equivalence classes (the combined approach), so rewriting only has
    /// to expand graph-mapping dependencies.
    pub fn new(system: &RdfPeerSystem) -> Self {
        let rewriter = RpsRewriter::new(system);
        let engine = FederatedEngine::new_canonical(system, rewriter.index());
        P2pQueryService {
            rewriter,
            engine,
            rewrite_config: RewriteConfig::default(),
            cost_model: CostModel::default(),
        }
    }

    /// Overrides the rewriting budgets.
    pub fn with_rewrite_config(mut self, config: RewriteConfig) -> Self {
        self.rewrite_config = config;
        self
    }

    /// Overrides the network cost model.
    pub fn with_cost_model(mut self, model: CostModel) -> Self {
        self.cost_model = model;
        self
    }

    /// `true` iff Proposition 2 guarantees the rewriting is perfect.
    pub fn fo_rewritable(&self) -> bool {
        self.rewriter.fo_rewritable()
    }

    /// Answers a query: rewrite against the quotient system, decode each
    /// branch to an RDF pattern plus head template, federate every
    /// branch over the canonical peer stores, then expand the union over
    /// the equivalence classes.
    pub fn answer(&mut self, query: &GraphPatternQuery) -> ServiceAnswer {
        let rewriting = self.rewriter.rewrite_canonical(query, &self.rewrite_config);
        let branches = rewriting.branches(self.rewriter.encoder());
        let mut net = SimNetwork::new();
        let mut stats = crate::federation::FederationStats::default();
        let mut canon_tuples = std::collections::BTreeSet::new();
        for (pattern, template) in &branches {
            self.engine.evaluate_templated(
                pattern,
                template,
                Semantics::Certain,
                &mut net,
                &mut stats,
                &mut canon_tuples,
            );
        }
        let tuples = rps_core::expand_answers(&canon_tuples, self.rewriter.index());
        stats.messages = net.message_count();
        stats.bytes = net.total_bytes();
        let makespan_ms = net.round_makespan_ms(&self.cost_model, self.engine.peer_count());
        ServiceAnswer {
            answers: AnswerSet {
                vars: query
                    .free_vars()
                    .iter()
                    .map(|v| v.name().to_string())
                    .collect(),
                tuples,
            },
            complete: rewriting.complete,
            branches: branches.len(),
            stats,
            makespan_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rps_core::{certain_answers, chase_system, PeerId, RpsBuilder, RpsChaseConfig};
    use rps_query::{GraphPattern, TermOrVar, Variable};

    fn linear_system() -> RdfPeerSystem {
        let mut a = PeerId(0);
        let mut b = PeerId(0);
        let premise = GraphPatternQuery::new(
            vec![Variable::new("x"), Variable::new("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://b/actor"),
                TermOrVar::var("y"),
            ),
        );
        let conclusion = GraphPatternQuery::new(
            vec![Variable::new("x"), Variable::new("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://a/cast"),
                TermOrVar::var("y"),
            ),
        );
        RpsBuilder::new()
            .peer_turtle("A", "<http://a/f1> <http://a/cast> <http://a/p1> .", &mut a)
            .unwrap()
            .peer_turtle(
                "B",
                "<http://b/f2> <http://b/actor> <http://b/p2> .",
                &mut b,
            )
            .unwrap()
            .assertion(b, a, premise, conclusion)
            .unwrap()
            .equivalence("http://a/p1", "http://b/p2")
            .build()
    }

    fn cast_query() -> GraphPatternQuery {
        GraphPatternQuery::new(
            vec![Variable::new("x"), Variable::new("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://a/cast"),
                TermOrVar::var("y"),
            ),
        )
    }

    #[test]
    fn service_matches_materialised_answers() {
        let sys = linear_system();
        let mut service = P2pQueryService::new(&sys);
        assert!(service.fo_rewritable());
        let result = service.answer(&cast_query());
        assert!(result.complete);
        let sol = chase_system(&sys, &RpsChaseConfig::default());
        let chased = certain_answers(&sol, &cast_query());
        assert_eq!(result.answers.tuples, chased.tuples);
        assert!(result.branches >= 2);
        assert!(result.stats.messages > 0);
        assert!(result.makespan_ms > 0.0);
    }

    #[test]
    fn repeated_queries_are_independent() {
        let sys = linear_system();
        let mut service = P2pQueryService::new(&sys);
        let r1 = service.answer(&cast_query());
        let r2 = service.answer(&cast_query());
        assert_eq!(r1.answers.tuples, r2.answers.tuples);
        assert_eq!(r1.stats, r2.stats);
    }
}
