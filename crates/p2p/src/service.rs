//! The Section 5 prototype, end to end: a SPARQL query service that
//! (a) rewrites the query to entail the peer mappings and (b) evaluates
//! the rewriting federatedly over the sources.
//!
//! [`FederatedSession`] is the federated counterpart of
//! [`rps_core::Session`], sharing its vocabulary: it is built from an
//! [`RdfPeerSystem`] plus an [`EngineConfig`], compiles a query **once**
//! with [`FederatedSession::prepare`] (canonical UCQ rewriting + id-level
//! federation plan) into a [`PreparedFederatedQuery`], executes it any
//! number of times, streams answers through
//! [`rps_core::AnswerStream`], and reports failures as
//! [`rps_core::RpsError`]. The old [`P2pQueryService`] remains as a thin
//! shim.

use crate::federation::{FederatedEngine, FederationStats, PreparedFederation};
use crate::network::{CostModel, SimNetwork};
use rps_core::{
    AnswerSet, AnswerStream, EngineConfig, ExecRoute, RdfPeerSystem, RpsError, RpsRewriter,
};
use rps_query::{GraphPatternQuery, Semantics};
use rps_tgd::RewriteConfig;

/// A query compiled once against a [`FederatedSession`]: the canonical
/// UCQ rewriting is expanded and every branch is routed, constant-
/// resolved and id-compiled for repeated federated execution — on the
/// session that prepared it (the compiled plan's term ids belong to that
/// session's answer dictionary; execution elsewhere returns
/// [`RpsError::SessionMismatch`]).
pub struct PreparedFederatedQuery {
    session_id: u64,
    query: GraphPatternQuery,
    prepared: PreparedFederation,
    complete: bool,
    explored: usize,
    branches: usize,
}

impl PreparedFederatedQuery {
    /// `true` iff the rewriting was exhaustive (perfect under
    /// Proposition 2's conditions). Only [`FederatedSession::prepare_lenient`]
    /// hands out queries where this is `false`.
    pub fn complete(&self) -> bool {
        self.complete
    }

    /// Number of distinct CQs the rewriting explored.
    pub fn explored(&self) -> usize {
        self.explored
    }

    /// Number of UNION branches compiled.
    pub fn branch_count(&self) -> usize {
        self.branches
    }

    /// The source query.
    pub fn query(&self) -> &GraphPatternQuery {
        &self.query
    }
}

/// Result of one federated execution: a streaming answer iterator plus
/// the run's completeness flag and traffic statistics.
pub struct FederatedAnswer {
    /// The answers (route is [`ExecRoute::Federated`]).
    pub stream: AnswerStream,
    /// `true` iff the underlying rewriting was exhaustive.
    pub complete: bool,
    /// Number of UNION branches evaluated.
    pub branches: usize,
    /// Federation traffic statistics.
    pub stats: FederationStats,
    /// Simulated wall-clock of the federated round.
    pub makespan_ms: f64,
}

/// The federated answering façade: rewrite against the quotient system
/// once, federate the id-compiled branches over the canonical peer
/// stores, expand the answers back over the equivalence classes.
pub struct FederatedSession {
    id: u64,
    rewriter: RpsRewriter,
    engine: FederatedEngine,
    config: EngineConfig,
    cost_model: CostModel,
}

/// Process-unique federated-session ids (see
/// [`PreparedFederatedQuery`]'s session-binding contract).
fn next_session_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl FederatedSession {
    /// Builds a session after validating the system.
    pub fn open(system: &RdfPeerSystem, config: EngineConfig) -> Result<Self, RpsError> {
        system.validate()?;
        Ok(Self::new(system, config))
    }

    /// Builds a session without validating the system. Peer stores are
    /// canonicalised on equivalence classes (the combined approach), so
    /// rewriting only has to expand graph-mapping dependencies.
    pub fn new(system: &RdfPeerSystem, config: EngineConfig) -> Self {
        let rewriter = RpsRewriter::new(system);
        let engine = FederatedEngine::new_canonical(system, rewriter.index());
        FederatedSession {
            id: next_session_id(),
            rewriter,
            engine,
            config,
            cost_model: CostModel::default(),
        }
    }

    /// Overrides the network cost model.
    pub fn with_cost_model(mut self, model: CostModel) -> Self {
        self.cost_model = model;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Mutable access to the configuration (applies to queries prepared
    /// afterwards).
    pub fn config_mut(&mut self) -> &mut EngineConfig {
        &mut self.config
    }

    /// `true` iff Proposition 2 guarantees the rewriting is perfect.
    pub fn fo_rewritable(&self) -> bool {
        self.rewriter.fo_rewritable()
    }

    /// Compiles a query once for repeated federated execution: canonical
    /// UCQ rewriting, branch decoding, per-pattern routing, per-peer
    /// constant resolution and head-template interning all happen here.
    ///
    /// The federated pipeline computes certain answers; requesting the
    /// `Q*` semantics is a configuration error
    /// ([`RpsError::StarNeedsMaterialisation`]). A rewriting that
    /// exhausts its budgets before reaching a fixpoint is unsound to
    /// federate silently — there is no materialised fallback out here —
    /// so it is reported as the typed [`RpsError::RewriteBudget`];
    /// callers that deliberately want the truncated union (the
    /// historical lenient contract) use [`Self::prepare_lenient`].
    pub fn prepare(
        &mut self,
        query: &GraphPatternQuery,
    ) -> Result<PreparedFederatedQuery, RpsError> {
        let prepared = self.prepare_lenient(query)?;
        if !prepared.complete {
            return Err(RpsError::RewriteBudget {
                explored: prepared.explored,
                max_depth: self.config.rewrite.max_depth,
                max_cqs: self.config.rewrite.max_cqs,
            });
        }
        Ok(prepared)
    }

    /// [`Self::prepare`] without the completeness check: an exhausted
    /// rewriting budget yields a prepared query over the *truncated*
    /// union, flagged by [`PreparedFederatedQuery::complete`] returning
    /// `false` (its answers are sound but possibly incomplete).
    pub fn prepare_lenient(
        &mut self,
        query: &GraphPatternQuery,
    ) -> Result<PreparedFederatedQuery, RpsError> {
        if self.config.semantics == Semantics::Star {
            return Err(RpsError::StarNeedsMaterialisation);
        }
        let rewriting = self.rewriter.rewrite_canonical(query, &self.config.rewrite);
        let branches = rewriting.branches(self.rewriter.encoder());
        let prepared = self.engine.prepare_branches(&branches);
        Ok(PreparedFederatedQuery {
            session_id: self.id,
            query: query.clone(),
            prepared,
            complete: rewriting.complete,
            explored: rewriting.explored,
            branches: branches.len(),
        })
    }

    /// Executes a prepared query: federate every branch over the
    /// canonical peer stores at the id level, then expand the union over
    /// the equivalence classes. No term is re-parsed or re-interned per
    /// peer per round — that work happened once, at prepare time. The
    /// query must have been prepared by *this* session
    /// ([`RpsError::SessionMismatch`] otherwise — its term ids belong to
    /// this session's answer dictionary).
    pub fn execute(&self, prepared: &PreparedFederatedQuery) -> Result<FederatedAnswer, RpsError> {
        if prepared.session_id != self.id {
            return Err(RpsError::SessionMismatch);
        }
        let mut net = SimNetwork::new();
        let (canon_ids, stats) =
            self.engine
                .execute(&prepared.prepared, Semantics::Certain, &mut net);
        let canon_tuples = self.engine.decode(&canon_ids);
        let tuples = rps_core::expand_answers(&canon_tuples, self.rewriter.index());
        let makespan_ms = net.round_makespan_ms(&self.cost_model, self.engine.peer_count());
        let vars = prepared
            .query
            .free_vars()
            .iter()
            .map(|v| v.name().to_string())
            .collect();
        Ok(FederatedAnswer {
            stream: AnswerStream::from_terms(vars, ExecRoute::Federated, tuples),
            complete: prepared.complete,
            branches: prepared.branches,
            stats,
            makespan_ms,
        })
    }

    /// Prepares and executes in one call. Prefer
    /// [`FederatedSession::prepare`] + [`FederatedSession::execute`] when
    /// the same query runs repeatedly.
    pub fn answer(&mut self, query: &GraphPatternQuery) -> Result<FederatedAnswer, RpsError> {
        let prepared = self.prepare(query)?;
        self.execute(&prepared)
    }
}

/// Result of a federated, rewriting-backed query execution (legacy
/// shape; see [`FederatedAnswer`] for the streaming form).
#[derive(Clone, Debug)]
pub struct ServiceAnswer {
    /// The certain answers.
    pub answers: AnswerSet,
    /// `true` iff the rewriting was exhaustive (perfect under
    /// Proposition 2's conditions).
    pub complete: bool,
    /// Number of UNION branches evaluated.
    pub branches: usize,
    /// Federation traffic statistics.
    pub stats: FederationStats,
    /// Simulated wall-clock of the federated round.
    pub makespan_ms: f64,
}

/// The legacy query service, kept as a thin shim over
/// [`FederatedSession`]. **Deprecated in favour of `FederatedSession`**,
/// which prepares queries once, streams answers and reports typed
/// errors.
pub struct P2pQueryService {
    session: FederatedSession,
}

impl P2pQueryService {
    /// Builds the service for a system.
    pub fn new(system: &RdfPeerSystem) -> Self {
        P2pQueryService {
            session: FederatedSession::new(system, EngineConfig::default()),
        }
    }

    /// Overrides the rewriting budgets.
    pub fn with_rewrite_config(mut self, config: RewriteConfig) -> Self {
        self.session.config_mut().rewrite = config;
        self
    }

    /// Overrides the network cost model.
    pub fn with_cost_model(mut self, model: CostModel) -> Self {
        self.session = self.session.with_cost_model(model);
        self
    }

    /// `true` iff Proposition 2 guarantees the rewriting is perfect.
    pub fn fo_rewritable(&self) -> bool {
        self.session.fo_rewritable()
    }

    /// Answers a query through the prepared federated pipeline. Keeps
    /// the historical lenient contract: an exhausted rewriting budget
    /// evaluates the truncated union (flagged via
    /// [`ServiceAnswer::complete`]) instead of erroring like
    /// [`FederatedSession::prepare`] does.
    pub fn answer(&mut self, query: &GraphPatternQuery) -> ServiceAnswer {
        let result = self
            .session
            .prepare_lenient(query)
            .and_then(|prepared| self.session.execute(&prepared))
            .expect("certain-semantics federated answering is infallible");
        ServiceAnswer {
            complete: result.complete,
            branches: result.branches,
            stats: result.stats.clone(),
            makespan_ms: result.makespan_ms,
            answers: result.stream.into_set(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rps_core::{certain_answers, chase_system, PeerId, RpsBuilder, RpsChaseConfig};
    use rps_query::{GraphPattern, TermOrVar, Variable};

    fn linear_system() -> RdfPeerSystem {
        let mut a = PeerId(0);
        let mut b = PeerId(0);
        let premise = GraphPatternQuery::new(
            vec![Variable::new("x"), Variable::new("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://b/actor"),
                TermOrVar::var("y"),
            ),
        );
        let conclusion = GraphPatternQuery::new(
            vec![Variable::new("x"), Variable::new("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://a/cast"),
                TermOrVar::var("y"),
            ),
        );
        RpsBuilder::new()
            .peer_turtle("A", "<http://a/f1> <http://a/cast> <http://a/p1> .", &mut a)
            .unwrap()
            .peer_turtle(
                "B",
                "<http://b/f2> <http://b/actor> <http://b/p2> .",
                &mut b,
            )
            .unwrap()
            .assertion(b, a, premise, conclusion)
            .unwrap()
            .equivalence("http://a/p1", "http://b/p2")
            .build()
    }

    fn cast_query() -> GraphPatternQuery {
        GraphPatternQuery::new(
            vec![Variable::new("x"), Variable::new("y")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://a/cast"),
                TermOrVar::var("y"),
            ),
        )
    }

    #[test]
    fn service_matches_materialised_answers() {
        let sys = linear_system();
        let mut service = P2pQueryService::new(&sys);
        assert!(service.fo_rewritable());
        let result = service.answer(&cast_query());
        assert!(result.complete);
        let sol = chase_system(&sys, &RpsChaseConfig::default());
        let chased = certain_answers(&sol, &cast_query());
        assert_eq!(result.answers.tuples, chased.tuples);
        assert!(result.branches >= 2);
        assert!(result.stats.messages > 0);
        assert!(result.makespan_ms > 0.0);
    }

    #[test]
    fn repeated_queries_are_independent() {
        let sys = linear_system();
        let mut service = P2pQueryService::new(&sys);
        let r1 = service.answer(&cast_query());
        let r2 = service.answer(&cast_query());
        assert_eq!(r1.answers.tuples, r2.answers.tuples);
        assert_eq!(r1.stats, r2.stats);
    }

    #[test]
    fn session_prepares_once_and_executes_repeatedly() {
        let sys = linear_system();
        let mut session = FederatedSession::open(&sys, EngineConfig::default()).unwrap();
        let prepared = session.prepare(&cast_query()).unwrap();
        assert!(prepared.complete());
        assert!(prepared.branch_count() >= 2);
        let first = session.execute(&prepared).unwrap();
        assert_eq!(first.stream.route(), ExecRoute::Federated);
        let second = session.execute(&prepared).unwrap();
        assert_eq!(first.stats, second.stats);
        let a = first.stream.into_set();
        let b = second.stream.into_set();
        assert_eq!(a.tuples, b.tuples);
        let sol = chase_system(&sys, &RpsChaseConfig::default());
        assert_eq!(a.tuples, certain_answers(&sol, &cast_query()).tuples);
    }

    #[test]
    fn foreign_prepared_queries_are_rejected() {
        let sys = linear_system();
        let mut a = FederatedSession::open(&sys, EngineConfig::default()).unwrap();
        let b = FederatedSession::open(&sys, EngineConfig::default()).unwrap();
        let prepared = a.prepare(&cast_query()).unwrap();
        // Executing against another session's answer dictionary would
        // silently mistranslate ids; it must error instead.
        assert!(matches!(
            b.execute(&prepared),
            Err(RpsError::SessionMismatch)
        ));
        assert!(!a.execute(&prepared).unwrap().stream.into_set().is_empty());
    }

    #[test]
    fn exhausted_rewriting_budget_is_a_typed_error() {
        // Transitive closure is not FO-rewritable (Proposition 3): a
        // bounded expansion can never be exhaustive. The strict prepare
        // reports that as the typed budget error instead of silently
        // federating a truncated union; the lenient path keeps the
        // historical contract and flags the truncation.
        let sys = rps_lodgen::chain::transitive_system(6);
        let cfg = EngineConfig::default().with_rewrite(RewriteConfig {
            max_depth: 3,
            max_cqs: 10_000,
        });
        let mut session = FederatedSession::open(&sys, cfg).unwrap();
        let query = rps_lodgen::chain::edge_query();
        assert!(matches!(
            session.prepare(&query),
            Err(RpsError::RewriteBudget { .. })
        ));
        let prepared = session.prepare_lenient(&query).unwrap();
        assert!(!prepared.complete());
        assert!(prepared.explored() > 0);
        // Sound but possibly incomplete: short-range pairs are found.
        let answers = session.execute(&prepared).unwrap().stream.into_set();
        assert!(!answers.is_empty());
    }

    #[test]
    fn star_semantics_is_rejected() {
        let sys = linear_system();
        let cfg = EngineConfig::default().with_semantics(Semantics::Star);
        let mut session = FederatedSession::open(&sys, cfg).unwrap();
        assert!(matches!(
            session.prepare(&cast_query()),
            Err(RpsError::StarNeedsMaterialisation)
        ));
    }
}
