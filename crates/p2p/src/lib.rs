//! # rps-p2p — simulated peer-to-peer query federation
//!
//! Section 5 of *Peer-to-Peer Semantic Integration of Linked Data*
//! sketches a prototype that (a) rewrites a SPARQL query to entail the
//! peer mappings and (b) performs federated querying over the sources,
//! joining sub-query results transparently. The paper gives no
//! implementation or measurements; this crate builds the closest
//! laptop-scale equivalent:
//!
//! * [`network`] — a deterministic message-accounting simulator with a
//!   latency/bandwidth cost model (no sockets; the experiments need
//!   message counts, bytes and critical-path estimates, not real I/O);
//! * [`routing`] — schema-based routing: an inverted IRI→peers index
//!   prunes which peers receive each sub-query (peer schemas are exactly
//!   the paper's notion of "the IRIs adopted by the peer");
//! * [`federation`] — pattern-level federated evaluation with
//!   originator-side joins, proven (by tests) to coincide with
//!   centralised evaluation over the stored database. Queries are
//!   *prepared once* (routing, per-peer constant resolution, head
//!   templates) and executed at the id level against an originator-side
//!   answer dictionary — the term-level path survives as a benchmark
//!   baseline;
//! * [`service`] — the full prototype pipeline behind the
//!   [`service::FederatedSession`] façade (rewrite once → prepare once →
//!   federate repeatedly), sharing `rps_core`'s `Session` vocabulary
//!   (`EngineConfig`, `AnswerStream`, `ExecRoute`, `RpsError`);
//! * [`wire`] — the length-prefixed wire format every transport (and the
//!   simulator's byte accounting) shares;
//! * [`transport`] — the pluggable peer-exchange layer: a perfect
//!   in-process transport over the simulator's graphs, a seeded
//!   fault-injecting wrapper, and a real localhost TCP transport —
//!   combined with `rps_core`'s `RetryPolicy`/`FailurePolicy` for
//!   fault-tolerant federation.

#![warn(missing_docs)]

pub mod federation;
pub mod network;
pub mod routing;
pub mod service;
pub mod transport;
pub mod wire;

pub use federation::{
    FederatedEngine, FederationReport, FederationStats, PeerFailure, PreparedFederation,
};
pub use network::{CostModel, Message, NodeId, SimNetwork};
pub use routing::SchemaIndex;
pub use service::{
    FederatedAnswer, FederatedSession, FrozenFederatedSession, P2pQueryService,
    PreparedFederatedQuery, PreparedFederatedSparql, ServiceAnswer,
};
pub use transport::{
    FaultConfig, FaultyTransport, Reply, SimTransport, TcpTransport, Transport, TransportError,
};
pub use wire::{WireBatch, WireError, WireFault, WireMessage, WireRequest, WireSlot};
