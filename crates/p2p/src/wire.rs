//! The federation wire format: length-prefixed frames for prepared
//! sub-query requests and answer batches.
//!
//! Every byte that "crosses the network" in this crate — whether it is
//! really written to a socket by the TCP transport or merely accounted
//! by the deterministic simulator — is produced by this one codec, so
//! [`crate::SimNetwork`] traffic statistics and real loopback traffic
//! agree byte for byte.
//!
//! A frame is `[u32 little-endian payload length][payload]`; the payload
//! is `[tag byte][body]` with three message kinds:
//!
//! | tag | message | body |
//! |-----|---------|------|
//! | `1` | [`WireRequest`] — one prepared triple-pattern sub-query | attempt varint, then 3 slots |
//! | `2` | [`WireBatch`] — the peer's binding rows | width byte, row-count varint, then `rows × width` id varints |
//! | `3` | [`WireFault`] — an error response | transient flag byte, message length varint, UTF-8 bytes |
//!
//! Integers use LEB128 varints, so the dense low ids the engines
//! actually produce cost one or two bytes; ids are opaque `u32`s and
//! round-trip unchanged even past any dictionary's length (the overlay
//! ids prepared plans mint for unknown head constants). Decoding never
//! panics and never trusts a claimed length it cannot afford: malformed
//! or truncated input is a typed [`WireError`].

use rps_rdf::TermId;

/// Maximum payload a frame may claim. Larger claims are rejected before
/// any allocation happens — a garbage length prefix must not OOM the
/// decoder.
pub const MAX_FRAME_PAYLOAD: usize = 64 << 20;

/// One position of a prepared sub-query pattern.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireSlot {
    /// A variable position, projecting into the given binding-row slot
    /// (repeated variables share a slot; rows must agree there).
    Var(u8),
    /// A constant, resolved to the *peer's* dictionary id at prepare
    /// time.
    Const(TermId),
    /// A constant the peer's dictionary does not know. The sub-query is
    /// still sent (the originator cannot always know in advance) and
    /// matches nothing.
    Unresolved,
}

/// One prepared triple-pattern sub-query, addressed to one peer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WireRequest {
    /// 1-based attempt number (retries re-send with a bumped attempt,
    /// making retry traffic distinguishable in traces).
    pub attempt: u32,
    /// Subject, predicate and object slots.
    pub slots: [WireSlot; 3],
}

impl WireRequest {
    /// Number of binding-row slots the request projects (max `Var` slot
    /// plus one).
    pub fn width(&self) -> usize {
        self.slots
            .iter()
            .filter_map(|s| match s {
                WireSlot::Var(v) => Some(*v as usize + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// `true` iff every constant resolved at the addressed peer.
    pub fn resolved(&self) -> bool {
        !self.slots.contains(&WireSlot::Unresolved)
    }

    /// A stable FNV-1a fingerprint of the request's *pattern* (slots
    /// only — not the attempt), used to seed deterministic per-request
    /// jitter and fault draws that must not depend on call order.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        let mut eat = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        for slot in &self.slots {
            match slot {
                WireSlot::Var(v) => {
                    eat(0);
                    eat(*v);
                }
                WireSlot::Const(id) => {
                    eat(1);
                    for b in id.0.to_le_bytes() {
                        eat(b);
                    }
                }
                WireSlot::Unresolved => eat(2),
            }
        }
        h
    }
}

/// A peer's binding rows for one sub-query. Every row has exactly
/// `width` ids (peer-local; the originator translates them through its
/// per-peer table). Width 0 is legal: a fully-constant pattern answers
/// with empty rows, one per match.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WireBatch {
    /// Row width in ids.
    pub width: u8,
    /// The binding rows, in peer scan order.
    pub rows: Vec<Vec<TermId>>,
}

/// An error response: the peer answered, but not with a batch.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WireFault {
    /// `true` for transient conditions worth retrying (overload,
    /// injected faults); `false` for permanent protocol errors.
    pub transient: bool,
    /// Human-readable detail.
    pub message: String,
}

/// Any decoded frame.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WireMessage {
    /// A sub-query request.
    Request(WireRequest),
    /// An answer batch.
    Batch(WireBatch),
    /// An error response.
    Fault(WireFault),
}

/// Why a frame failed to decode. Never a panic.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WireError {
    /// The input ended before the structure it claims.
    Truncated,
    /// The length prefix disagrees with the bytes present, or exceeds
    /// [`MAX_FRAME_PAYLOAD`].
    BadLength,
    /// Unknown message or slot tag.
    BadTag(u8),
    /// Bytes left over after a complete message.
    TrailingBytes,
    /// A varint ran past its maximum width.
    BadVarint,
    /// The error message is not UTF-8.
    BadUtf8,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadLength => write!(f, "frame length prefix invalid"),
            WireError::BadTag(t) => write!(f, "unknown wire tag {t}"),
            WireError::TrailingBytes => write!(f, "trailing bytes after message"),
            WireError::BadVarint => write!(f, "over-long varint"),
            WireError::BadUtf8 => write!(f, "error message is not UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.bytes.get(self.at).ok_or(WireError::Truncated)?;
        self.at += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, WireError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let b = self.u8()?;
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(WireError::BadVarint)
    }

    fn varint_u32(&mut self) -> Result<u32, WireError> {
        u32::try_from(self.varint()?).map_err(|_| WireError::BadVarint)
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }
}

fn encode_payload(msg: &WireMessage) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    match msg {
        WireMessage::Request(req) => {
            out.push(1);
            push_varint(&mut out, u64::from(req.attempt));
            for slot in &req.slots {
                match slot {
                    WireSlot::Var(v) => {
                        out.push(0);
                        out.push(*v);
                    }
                    WireSlot::Const(id) => {
                        out.push(1);
                        push_varint(&mut out, u64::from(id.0));
                    }
                    WireSlot::Unresolved => out.push(2),
                }
            }
        }
        WireMessage::Batch(batch) => {
            out.push(2);
            out.push(batch.width);
            push_varint(&mut out, batch.rows.len() as u64);
            for row in &batch.rows {
                debug_assert_eq!(row.len(), batch.width as usize);
                for id in row {
                    push_varint(&mut out, u64::from(id.0));
                }
            }
        }
        WireMessage::Fault(fault) => {
            out.push(3);
            out.push(u8::from(fault.transient));
            push_varint(&mut out, fault.message.len() as u64);
            out.extend_from_slice(fault.message.as_bytes());
        }
    }
    out
}

/// Encodes a message as a length-prefixed frame.
pub fn encode(msg: &WireMessage) -> Vec<u8> {
    let payload = encode_payload(msg);
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Convenience: encodes a request frame.
pub fn encode_request(req: &WireRequest) -> Vec<u8> {
    encode(&WireMessage::Request(*req))
}

/// Convenience: encodes an answer-batch frame.
pub fn encode_batch(batch: &WireBatch) -> Vec<u8> {
    encode(&WireMessage::Batch(batch.clone()))
}

/// Convenience: encodes an error-response frame.
pub fn encode_fault(transient: bool, message: &str) -> Vec<u8> {
    encode(&WireMessage::Fault(WireFault {
        transient,
        message: message.to_string(),
    }))
}

/// Decodes a frame *payload* (the bytes after the length prefix — what
/// a TCP reader hands over after consuming the prefix itself). The
/// whole payload must be consumed.
pub fn decode_payload(payload: &[u8]) -> Result<WireMessage, WireError> {
    let mut r = Reader {
        bytes: payload,
        at: 0,
    };
    let msg = match r.u8()? {
        1 => {
            let attempt = r.varint_u32()?;
            let mut slots = [WireSlot::Unresolved; 3];
            for slot in &mut slots {
                *slot = match r.u8()? {
                    0 => WireSlot::Var(r.u8()?),
                    1 => WireSlot::Const(TermId(r.varint_u32()?)),
                    2 => WireSlot::Unresolved,
                    t => return Err(WireError::BadTag(t)),
                };
            }
            WireMessage::Request(WireRequest { attempt, slots })
        }
        2 => {
            let width = r.u8()?;
            let rows = r.varint()?;
            // Every id takes at least one byte: a row count the
            // remaining bytes cannot possibly hold is rejected before
            // any allocation. Zero-width rows carry no byte evidence,
            // so their claim is capped outright.
            if width > 0 {
                if rows.saturating_mul(u64::from(width)) > r.remaining() as u64 {
                    return Err(WireError::Truncated);
                }
            } else if rows > 1 << 20 {
                return Err(WireError::BadLength);
            }
            let rows = usize::try_from(rows).map_err(|_| WireError::Truncated)?;
            let mut out = Vec::with_capacity(rows);
            for _ in 0..rows {
                let mut row = Vec::with_capacity(width as usize);
                for _ in 0..width {
                    row.push(TermId(r.varint_u32()?));
                }
                out.push(row);
            }
            WireMessage::Batch(WireBatch { width, rows: out })
        }
        3 => {
            let transient = match r.u8()? {
                0 => false,
                1 => true,
                t => return Err(WireError::BadTag(t)),
            };
            let len = usize::try_from(r.varint()?).map_err(|_| WireError::Truncated)?;
            if len > r.remaining() {
                return Err(WireError::Truncated);
            }
            let bytes = &r.bytes[r.at..r.at + len];
            r.at += len;
            WireMessage::Fault(WireFault {
                transient,
                message: std::str::from_utf8(bytes)
                    .map_err(|_| WireError::BadUtf8)?
                    .to_string(),
            })
        }
        t => return Err(WireError::BadTag(t)),
    };
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes);
    }
    Ok(msg)
}

/// Decodes a complete frame (length prefix included).
pub fn decode(frame: &[u8]) -> Result<WireMessage, WireError> {
    if frame.len() < 4 {
        return Err(WireError::Truncated);
    }
    let len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]) as usize;
    if len > MAX_FRAME_PAYLOAD || frame.len() - 4 != len {
        return Err(WireError::BadLength);
    }
    decode_payload(&frame[4..])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: WireMessage) {
        let frame = encode(&msg);
        assert_eq!(decode(&frame).expect("decodes"), msg);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip(WireMessage::Request(WireRequest {
            attempt: 3,
            slots: [
                WireSlot::Var(0),
                WireSlot::Const(TermId(u32::MAX)),
                WireSlot::Unresolved,
            ],
        }));
    }

    #[test]
    fn batch_roundtrips_including_empty_and_wide_ids() {
        roundtrip(WireMessage::Batch(WireBatch {
            width: 0,
            rows: vec![],
        }));
        roundtrip(WireMessage::Batch(WireBatch {
            width: 0,
            rows: vec![vec![]; 3],
        }));
        roundtrip(WireMessage::Batch(WireBatch {
            width: 2,
            rows: vec![
                vec![TermId(0), TermId(127)],
                vec![TermId(128), TermId(u32::MAX)],
            ],
        }));
    }

    #[test]
    fn fault_roundtrips() {
        roundtrip(WireMessage::Fault(WireFault {
            transient: true,
            message: "injected".into(),
        }));
        roundtrip(WireMessage::Fault(WireFault {
            transient: false,
            message: String::new(),
        }));
    }

    #[test]
    fn truncation_and_garbage_are_typed_errors() {
        let frame = encode_request(&WireRequest {
            attempt: 1,
            slots: [
                WireSlot::Var(0),
                WireSlot::Const(TermId(9)),
                WireSlot::Var(1),
            ],
        });
        for cut in 0..frame.len() {
            assert!(decode(&frame[..cut]).is_err(), "cut at {cut}");
        }
        assert!(decode(&[]).is_err());
        assert!(decode(&[0xFF; 8]).is_err());
        // A batch claiming more rows than its bytes can hold must not
        // allocate for them.
        let mut bogus = vec![2u8, 4]; // tag=batch, width=4
        push_varint(&mut bogus, u64::MAX);
        let mut frame = (bogus.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&bogus);
        assert_eq!(decode(&frame), Err(WireError::Truncated));
    }

    #[test]
    fn fingerprint_ignores_attempt_but_not_pattern() {
        let a = WireRequest {
            attempt: 1,
            slots: [
                WireSlot::Var(0),
                WireSlot::Const(TermId(7)),
                WireSlot::Var(1),
            ],
        };
        let b = WireRequest { attempt: 9, ..a };
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = WireRequest {
            attempt: 1,
            slots: [
                WireSlot::Var(0),
                WireSlot::Const(TermId(8)),
                WireSlot::Var(1),
            ],
        };
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn width_and_resolved() {
        let r = WireRequest {
            attempt: 1,
            slots: [
                WireSlot::Var(1),
                WireSlot::Const(TermId(3)),
                WireSlot::Var(0),
            ],
        };
        assert_eq!(r.width(), 2);
        assert!(r.resolved());
        let u = WireRequest {
            attempt: 1,
            slots: [WireSlot::Unresolved, WireSlot::Var(0), WireSlot::Var(0)],
        };
        assert_eq!(u.width(), 1);
        assert!(!u.resolved());
    }
}
