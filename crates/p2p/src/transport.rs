//! Pluggable federation transports with deterministic fault injection.
//!
//! The federated engine talks to peers through one narrow seam: the
//! [`Transport`] trait, a blocking request/response exchange of encoded
//! [`crate::wire`] frames. Three implementations cover the whole
//! spectrum between simulation and reality:
//!
//! * [`SimTransport`] — the perfect in-process oracle: serves every
//!   request directly from the peer graphs, never fails, reports zero
//!   elapsed time. The default; byte-identical to the engine's
//!   historical inline evaluation.
//! * [`FaultyTransport`] — wraps any transport and injects a *seeded,
//!   deterministic* fault schedule: whole-peer outages, dropped
//!   exchanges, transient error responses and added virtual latency.
//!   Every decision derives from SplitMix64 over
//!   `(seed, peer, request bytes)`, so a schedule replays identically
//!   regardless of call order or thread interleaving.
//! * [`TcpTransport`] — real sockets: one localhost TCP listener per
//!   peer served by background threads, length-prefixed frames on the
//!   wire. No new dependencies — `std::net` only.
//!
//! All three speak the same wire format, so the byte accounting the
//! [`crate::SimNetwork`] derives from frame lengths describes real TCP
//! traffic exactly.
//!
//! ```
//! use rps_p2p::{wire, SimTransport, Transport};
//! use rps_core::{PeerId, RpsBuilder};
//!
//! let mut p = PeerId(0);
//! let sys = RpsBuilder::new()
//!     .peer_turtle("A", "<http://e/s> <http://e/p> <http://e/o> .", &mut p)
//!     .unwrap()
//!     .build();
//! let engine = rps_p2p::FederatedEngine::new(&sys);
//! let transport = SimTransport::new(engine.peer_graphs());
//!
//! // Ask peer 0 for every (?s, ?p, ?o) triple: three variable slots.
//! let req = wire::WireRequest {
//!     attempt: 1,
//!     slots: [
//!         wire::WireSlot::Var(0),
//!         wire::WireSlot::Var(1),
//!         wire::WireSlot::Var(2),
//!     ],
//! };
//! let reply = transport
//!     .request(0, &wire::encode_request(&req), f64::INFINITY)
//!     .unwrap();
//! match wire::decode(&reply.frame).unwrap() {
//!     wire::WireMessage::Batch(batch) => assert_eq!(batch.rows.len(), 1),
//!     other => panic!("expected a batch, got {other:?}"),
//! }
//! ```

use crate::network::NodeId;
use crate::wire::{self, WireMessage, WireSlot};
use rps_core::{splitmix64, FailureCause};
use rps_rdf::{Graph, TermId};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A successful transport exchange.
#[derive(Clone, Debug)]
pub struct Reply {
    /// The peer's complete response frame (length prefix included);
    /// decode with [`wire::decode`]. May be a [`wire::WireFault`] —
    /// "the peer answered with an error" is a *successful* exchange at
    /// this layer.
    pub frame: Vec<u8>,
    /// Time the exchange took, in milliseconds — virtual for simulated
    /// transports, measured for real ones. Charged against the caller's
    /// per-peer deadline budget.
    pub elapsed_ms: f64,
}

/// A failed transport exchange: no response frame arrived.
#[derive(Clone, Debug)]
pub struct TransportError {
    /// The failure class (drives retry/report semantics).
    pub cause: FailureCause,
    /// Human-readable detail.
    pub detail: String,
    /// Time burned before giving up, in milliseconds; charged against
    /// the caller's per-peer deadline budget.
    pub elapsed_ms: f64,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.cause, self.detail)
    }
}

impl std::error::Error for TransportError {}

/// A blocking request/response exchange of wire frames with one peer.
///
/// Implementations must be `Send + Sync`: the parallel federated
/// fan-out issues requests from many threads through one shared
/// transport.
pub trait Transport: Send + Sync {
    /// Sends `frame` to `peer` and waits for its response frame, giving
    /// up after roughly `budget_ms` milliseconds (virtual or real,
    /// matching the transport's clock; `f64::INFINITY` disables the
    /// deadline).
    fn request(&self, peer: NodeId, frame: &[u8], budget_ms: f64) -> Result<Reply, TransportError>;

    /// A short transport label for reports ("sim", "faulty", "tcp").
    fn name(&self) -> &'static str;
}

/// Serves one request frame against a peer graph, returning the
/// response frame. This is *the* peer-side evaluator — shared by
/// [`SimTransport`] and the [`TcpTransport`] server threads, so both
/// produce identical bytes for identical requests. Malformed input
/// yields an encoded [`wire::WireFault`], never a panic.
pub fn serve_frame(graph: &Graph, frame: &[u8]) -> Vec<u8> {
    let req = match wire::decode(frame) {
        Ok(WireMessage::Request(req)) => req,
        Ok(_) => return wire::encode_fault(false, "expected a request frame"),
        Err(e) => return wire::encode_fault(false, &format!("bad request frame: {e}")),
    };
    let width = req.width();
    if width > usize::from(u8::MAX) {
        return wire::encode_fault(false, "request row width overflows a batch");
    }
    let mut rows: Vec<Vec<TermId>> = Vec::new();
    // A request carrying a constant the peer's dictionary does not know
    // matches nothing; the empty batch is still a well-formed answer.
    if req.resolved() {
        let mut probe = [None; 3];
        for (k, slot) in req.slots.iter().enumerate() {
            if let WireSlot::Const(id) = slot {
                probe[k] = Some(*id);
            }
        }
        'triples: for t in graph.match_ids(probe[0], probe[1], probe[2]) {
            let vals = [t.s, t.p, t.o];
            let mut row: Vec<Option<TermId>> = vec![None; width];
            for (k, slot) in req.slots.iter().enumerate() {
                if let WireSlot::Var(s) = slot {
                    let s = usize::from(*s);
                    match row[s] {
                        None => row[s] = Some(vals[k]),
                        // A repeated variable must bind consistently.
                        Some(prev) if prev != vals[k] => continue 'triples,
                        _ => {}
                    }
                }
            }
            rows.push(row.into_iter().map(|o| o.unwrap_or(TermId(0))).collect());
        }
    }
    wire::encode_batch(&wire::WireBatch {
        width: width as u8,
        rows,
    })
}

/// The perfect in-process transport: serves requests synchronously from
/// the shared peer graphs. Never fails, never retries, reports zero
/// elapsed time — the deterministic oracle every fault schedule is
/// compared against.
#[derive(Clone)]
pub struct SimTransport {
    graphs: Arc<Vec<Graph>>,
}

impl SimTransport {
    /// A transport over the given peer graphs (share an engine's with
    /// [`crate::FederatedEngine::peer_graphs`]).
    pub fn new(graphs: Arc<Vec<Graph>>) -> Self {
        SimTransport { graphs }
    }
}

impl Transport for SimTransport {
    fn request(
        &self,
        peer: NodeId,
        frame: &[u8],
        _budget_ms: f64,
    ) -> Result<Reply, TransportError> {
        let Some(graph) = self.graphs.get(peer) else {
            return Err(TransportError {
                cause: FailureCause::Protocol,
                detail: format!("unknown peer {peer}"),
                elapsed_ms: 0.0,
            });
        };
        Ok(Reply {
            frame: serve_frame(graph, frame),
            elapsed_ms: 0.0,
        })
    }

    fn name(&self) -> &'static str {
        "sim"
    }
}

/// A seeded, deterministic fault schedule for a [`FaultyTransport`].
///
/// Every decision is a pure function of `(seed, peer, request bytes)` —
/// the request frame includes the attempt number, so each retry gets an
/// independent draw, and nothing depends on wall clock, call order or
/// thread interleaving. Rates are probabilities in `[0, 1]`.
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Seed of the schedule; two runs with the same seed inject the
    /// same faults.
    pub seed: u64,
    /// Probability that a whole peer is down for the entire run
    /// (connections refused outright).
    pub peer_outage_rate: f64,
    /// Probability that one exchange is dropped (no response; times out
    /// after [`FaultConfig::timeout_ms`] virtual milliseconds).
    pub drop_rate: f64,
    /// Probability that the peer answers one exchange with a transient
    /// error response instead of a batch.
    pub transient_rate: f64,
    /// Deterministic extra latency added to every exchange, in virtual
    /// milliseconds.
    pub added_latency_ms: f64,
    /// Upper bound of the additional per-exchange latency jitter, in
    /// virtual milliseconds (drawn deterministically per request).
    pub latency_jitter_ms: f64,
    /// Virtual time a dropped exchange burns before the caller gives up
    /// on it (capped by the caller's remaining budget).
    pub timeout_ms: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0xFA17,
            peer_outage_rate: 0.0,
            drop_rate: 0.0,
            transient_rate: 0.0,
            added_latency_ms: 0.0,
            latency_jitter_ms: 0.0,
            timeout_ms: 50.0,
        }
    }
}

/// A unit-interval draw from one SplitMix64 output.
fn unit(x: u64) -> f64 {
    (splitmix64(x) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// FNV-1a over a byte string.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Wraps any transport with a deterministic fault-injection schedule
/// ([`FaultConfig`]). Latency is *virtual*: the wrapper never sleeps, it
/// only reports elapsed milliseconds, so fault-injection tests run at
/// full speed and replay bit-identically.
pub struct FaultyTransport<T: Transport> {
    inner: T,
    config: FaultConfig,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` under the given schedule.
    pub fn new(inner: T, config: FaultConfig) -> Self {
        FaultyTransport { inner, config }
    }

    /// The active schedule.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// `true` iff the schedule takes `peer` down for the whole run.
    /// Exposed so tests can compute the reachable-peer restriction a
    /// degraded execution must agree with.
    pub fn peer_down(&self, peer: NodeId) -> bool {
        let mix = splitmix64(self.config.seed ^ 0x0DDB_EEF0)
            ^ (peer as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        unit(mix) < self.config.peer_outage_rate
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn request(&self, peer: NodeId, frame: &[u8], budget_ms: f64) -> Result<Reply, TransportError> {
        let cfg = &self.config;
        if self.peer_down(peer) {
            return Err(TransportError {
                cause: FailureCause::PeerDown,
                detail: format!("injected outage of peer {peer}"),
                elapsed_ms: 1.0_f64.min(budget_ms),
            });
        }
        // Per-exchange draws: the frame bytes include the attempt
        // number, so retries draw independently.
        let h = cfg.seed ^ fnv64(frame) ^ (peer as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let latency = cfg.added_latency_ms + unit(h ^ 3) * cfg.latency_jitter_ms;
        if unit(h ^ 1) < cfg.drop_rate {
            return Err(TransportError {
                cause: FailureCause::Timeout,
                detail: "injected drop".to_string(),
                elapsed_ms: cfg.timeout_ms.min(budget_ms),
            });
        }
        if latency >= budget_ms {
            return Err(TransportError {
                cause: FailureCause::Timeout,
                detail: "injected latency exceeded the exchange budget".to_string(),
                elapsed_ms: budget_ms,
            });
        }
        if unit(h ^ 2) < cfg.transient_rate {
            return Ok(Reply {
                frame: wire::encode_fault(true, "injected transient error"),
                elapsed_ms: latency,
            });
        }
        let mut reply = self
            .inner
            .request(peer, frame, budget_ms - latency)
            .map_err(|mut e| {
                e.elapsed_ms += latency;
                e
            })?;
        reply.elapsed_ms += latency;
        Ok(reply)
    }

    fn name(&self) -> &'static str {
        "faulty"
    }
}

/// A real localhost TCP transport: one listener per peer, served by
/// background threads that evaluate frames with [`serve_frame`] — the
/// same evaluator the simulated transport uses, so at zero faults the
/// two are byte-identical. Connections are per-exchange; timeouts
/// derive from the caller's budget. Built on `std::net` only.
pub struct TcpTransport {
    addrs: Vec<SocketAddr>,
    stop: Arc<AtomicBool>,
    servers: Vec<std::thread::JoinHandle<()>>,
}

impl TcpTransport {
    /// Binds one ephemeral localhost listener per peer graph and starts
    /// the server threads.
    pub fn serve(graphs: Arc<Vec<Graph>>) -> std::io::Result<Self> {
        let stop = Arc::new(AtomicBool::new(false));
        let mut addrs = Vec::with_capacity(graphs.len());
        let mut servers = Vec::with_capacity(graphs.len());
        for peer in 0..graphs.len() {
            let listener = TcpListener::bind(("127.0.0.1", 0))?;
            addrs.push(listener.local_addr()?);
            let graphs = Arc::clone(&graphs);
            let stop = Arc::clone(&stop);
            servers.push(std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    if let Ok(mut stream) = conn {
                        let _ = Self::handle(&mut stream, &graphs[peer]);
                    }
                }
            }));
        }
        Ok(TcpTransport {
            addrs,
            stop,
            servers,
        })
    }

    /// The bound address of one peer's listener.
    pub fn peer_addr(&self, peer: NodeId) -> Option<SocketAddr> {
        self.addrs.get(peer).copied()
    }

    fn handle(stream: &mut TcpStream, graph: &Graph) -> std::io::Result<()> {
        // Server-side hygiene: a stalled client must not pin the
        // listener thread forever.
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        stream.set_write_timeout(Some(Duration::from_secs(5)))?;
        let mut prefix = [0u8; 4];
        stream.read_exact(&mut prefix)?;
        let len = u32::from_le_bytes(prefix) as usize;
        let reply = if len > wire::MAX_FRAME_PAYLOAD {
            wire::encode_fault(false, "oversized request frame")
        } else {
            let mut frame = Vec::with_capacity(4 + len);
            frame.extend_from_slice(&prefix);
            frame.resize(4 + len, 0);
            stream.read_exact(&mut frame[4..])?;
            serve_frame(graph, &frame)
        };
        stream.write_all(&reply)
    }

    fn io_failure(e: &std::io::Error) -> FailureCause {
        use std::io::ErrorKind::*;
        match e.kind() {
            TimedOut | WouldBlock => FailureCause::Timeout,
            ConnectionRefused | ConnectionReset | ConnectionAborted | NotConnected => {
                FailureCause::PeerDown
            }
            _ => FailureCause::Transient,
        }
    }

    fn exchange(
        &self,
        addr: SocketAddr,
        frame: &[u8],
        timeout: Duration,
    ) -> std::io::Result<Vec<u8>> {
        let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.write_all(frame)?;
        let mut prefix = [0u8; 4];
        stream.read_exact(&mut prefix)?;
        let len = u32::from_le_bytes(prefix) as usize;
        if len > wire::MAX_FRAME_PAYLOAD {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "oversized response frame",
            ));
        }
        let mut reply = Vec::with_capacity(4 + len);
        reply.extend_from_slice(&prefix);
        reply.resize(4 + len, 0);
        stream.read_exact(&mut reply[4..])?;
        Ok(reply)
    }
}

impl Transport for TcpTransport {
    fn request(&self, peer: NodeId, frame: &[u8], budget_ms: f64) -> Result<Reply, TransportError> {
        let start = Instant::now();
        let Some(addr) = self.peer_addr(peer) else {
            return Err(TransportError {
                cause: FailureCause::Protocol,
                detail: format!("unknown peer {peer}"),
                elapsed_ms: 0.0,
            });
        };
        // Budgets are virtual milliseconds; clamp to a sane real-socket
        // window so a tight virtual budget still allows the syscall.
        let timeout = if budget_ms.is_finite() {
            Duration::from_secs_f64((budget_ms / 1000.0).clamp(0.01, 10.0))
        } else {
            Duration::from_secs(10)
        };
        match self.exchange(addr, frame, timeout) {
            Ok(reply) => Ok(Reply {
                frame: reply,
                elapsed_ms: start.elapsed().as_secs_f64() * 1000.0,
            }),
            Err(e) => Err(TransportError {
                cause: Self::io_failure(&e),
                detail: e.to_string(),
                elapsed_ms: start.elapsed().as_secs_f64() * 1000.0,
            }),
        }
    }

    fn name(&self) -> &'static str {
        "tcp"
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock each listener's accept loop with a dummy connection.
        for addr in &self.addrs {
            let _ = TcpStream::connect_timeout(addr, Duration::from_millis(200));
        }
        for server in self.servers.drain(..) {
            let _ = server.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rps_rdf::Term;

    fn graphs() -> Arc<Vec<Graph>> {
        let mut g = Graph::new();
        let _ = g.insert_terms(
            Term::iri("http://e/s"),
            Term::iri("http://e/p"),
            Term::iri("http://e/o"),
        );
        let _ = g.insert_terms(
            Term::iri("http://e/s"),
            Term::iri("http://e/p"),
            Term::iri("http://e/o2"),
        );
        g.seal();
        Arc::new(vec![g])
    }

    fn scan_all(attempt: u32) -> Vec<u8> {
        wire::encode_request(&wire::WireRequest {
            attempt,
            slots: [WireSlot::Var(0), WireSlot::Var(1), WireSlot::Var(2)],
        })
    }

    fn rows_of(frame: &[u8]) -> usize {
        match wire::decode(frame).expect("decodes") {
            WireMessage::Batch(b) => b.rows.len(),
            other => panic!("expected batch, got {other:?}"),
        }
    }

    #[test]
    fn sim_and_tcp_serve_identical_bytes() {
        let graphs = graphs();
        let sim = SimTransport::new(Arc::clone(&graphs));
        let tcp = TcpTransport::serve(graphs).expect("tcp serves");
        let req = scan_all(1);
        let a = sim.request(0, &req, f64::INFINITY).unwrap();
        let b = tcp.request(0, &req, f64::INFINITY).unwrap();
        assert_eq!(a.frame, b.frame);
        assert_eq!(rows_of(&a.frame), 2);
    }

    #[test]
    fn unresolved_constant_matches_nothing() {
        let graphs = graphs();
        let sim = SimTransport::new(graphs);
        let req = wire::encode_request(&wire::WireRequest {
            attempt: 1,
            slots: [WireSlot::Unresolved, WireSlot::Var(0), WireSlot::Var(1)],
        });
        let reply = sim.request(0, &req, f64::INFINITY).unwrap();
        assert_eq!(rows_of(&reply.frame), 0);
    }

    #[test]
    fn malformed_frames_get_fault_replies_not_panics() {
        let graphs = graphs();
        let sim = SimTransport::new(graphs);
        let reply = sim.request(0, &[0xFF; 9], f64::INFINITY).unwrap();
        match wire::decode(&reply.frame).unwrap() {
            WireMessage::Fault(f) => assert!(!f.transient),
            other => panic!("expected fault, got {other:?}"),
        }
    }

    #[test]
    fn fault_schedule_is_deterministic_and_attempt_sensitive() {
        let graphs = graphs();
        let cfg = FaultConfig {
            seed: 42,
            drop_rate: 0.5,
            ..FaultConfig::default()
        };
        let t1 = FaultyTransport::new(SimTransport::new(Arc::clone(&graphs)), cfg.clone());
        let t2 = FaultyTransport::new(SimTransport::new(graphs), cfg);
        let mut seen_ok = false;
        let mut seen_drop = false;
        for attempt in 1..=32 {
            let frame = scan_all(attempt);
            let a = t1.request(0, &frame, 1_000.0);
            let b = t2.request(0, &frame, 1_000.0);
            match (&a, &b) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x.frame, y.frame);
                    seen_ok = true;
                }
                (Err(x), Err(y)) => {
                    assert_eq!(x.cause, y.cause);
                    seen_drop = true;
                }
                _ => panic!("same seed diverged at attempt {attempt}"),
            }
        }
        assert!(seen_ok && seen_drop, "a 50% schedule shows both outcomes");
    }

    #[test]
    fn outages_refuse_every_exchange() {
        let graphs = graphs();
        let cfg = FaultConfig {
            seed: 7,
            peer_outage_rate: 1.0,
            ..FaultConfig::default()
        };
        let t = FaultyTransport::new(SimTransport::new(graphs), cfg);
        assert!(t.peer_down(0));
        let err = t.request(0, &scan_all(1), 1_000.0).unwrap_err();
        assert_eq!(err.cause, FailureCause::PeerDown);
    }

    #[test]
    fn tcp_down_peer_is_peer_down() {
        let graphs = graphs();
        let tcp = TcpTransport::serve(Arc::clone(&graphs)).expect("tcp serves");
        let addr = tcp.peer_addr(0).unwrap();
        drop(tcp); // listener gone: connections now refused
        let probe = TcpTransport {
            addrs: vec![addr],
            stop: Arc::new(AtomicBool::new(false)),
            servers: Vec::new(),
        };
        let err = probe.request(0, &scan_all(1), 500.0).unwrap_err();
        assert_eq!(err.cause, FailureCause::PeerDown);
    }
}
