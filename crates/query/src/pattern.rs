//! Graph patterns and graph pattern queries (paper Section 2.1).
//!
//! A *triple pattern* is a tuple from `(I ∪ L ∪ V) × (I ∪ V) × (I ∪ L ∪ V)`
//! — note that blank nodes are **not** allowed in patterns — and a *graph
//! pattern* is a conjunction (`AND`) of triple patterns. A *graph pattern
//! query* `q(x̄) ← GP` adds a tuple of free variables; the remaining
//! variables of `GP` are existentially quantified.

use rps_rdf::{Term, Triple};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A query variable (element of the set `V`).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Variable(Arc<str>);

impl Variable {
    /// Creates a variable with the given name (without the `?` sigil).
    pub fn new(name: impl Into<Arc<str>>) -> Self {
        Variable(name.into())
    }

    /// The variable's name (without the `?` sigil).
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

impl fmt::Display for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

impl From<&str> for Variable {
    fn from(s: &str) -> Self {
        Variable::new(s)
    }
}

/// Either a constant RDF term or a variable — one position of a triple
/// pattern.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TermOrVar {
    /// A constant term (IRI or literal; blank nodes are not permitted in
    /// patterns).
    Term(Term),
    /// A variable.
    Var(Variable),
}

impl TermOrVar {
    /// Convenience constructor for an IRI constant.
    pub fn iri(iri: &str) -> Self {
        TermOrVar::Term(Term::iri(iri))
    }

    /// Convenience constructor for a plain-literal constant.
    pub fn literal(lex: &str) -> Self {
        TermOrVar::Term(Term::literal(lex))
    }

    /// Convenience constructor for a variable.
    pub fn var(name: &str) -> Self {
        TermOrVar::Var(Variable::new(name))
    }

    /// The variable inside, if any.
    pub fn as_var(&self) -> Option<&Variable> {
        match self {
            TermOrVar::Var(v) => Some(v),
            TermOrVar::Term(_) => None,
        }
    }

    /// The constant term inside, if any.
    pub fn as_term(&self) -> Option<&Term> {
        match self {
            TermOrVar::Term(t) => Some(t),
            TermOrVar::Var(_) => None,
        }
    }

    /// `true` iff this position holds a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, TermOrVar::Var(_))
    }
}

impl fmt::Debug for TermOrVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TermOrVar::Term(t) => write!(f, "{t}"),
            TermOrVar::Var(v) => write!(f, "{v}"),
        }
    }
}

impl fmt::Display for TermOrVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TermOrVar::Term(t) => write!(f, "{t}"),
            TermOrVar::Var(v) => write!(f, "{v}"),
        }
    }
}

impl From<Term> for TermOrVar {
    fn from(t: Term) -> Self {
        TermOrVar::Term(t)
    }
}

impl From<Variable> for TermOrVar {
    fn from(v: Variable) -> Self {
        TermOrVar::Var(v)
    }
}

/// A triple pattern `(s, p, o) ∈ (I ∪ L ∪ V) × (I ∪ V) × (I ∪ L ∪ V)`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TriplePattern {
    /// Subject position.
    pub s: TermOrVar,
    /// Predicate position.
    pub p: TermOrVar,
    /// Object position.
    pub o: TermOrVar,
}

impl TriplePattern {
    /// Creates a triple pattern. Blank-node constants are not validated
    /// here (the paper's pattern language simply has no syntax for them);
    /// use [`TriplePattern::is_well_formed`] to check.
    pub fn new(s: impl Into<TermOrVar>, p: impl Into<TermOrVar>, o: impl Into<TermOrVar>) -> Self {
        TriplePattern {
            s: s.into(),
            p: p.into(),
            o: o.into(),
        }
    }

    /// Checks the positional constraints of the paper's pattern language:
    /// no blank nodes anywhere, predicate constants must be IRIs, and
    /// subject constants must not be... actually the paper allows literals
    /// in the subject of a *pattern* (they simply never match any triple).
    pub fn is_well_formed(&self) -> bool {
        let no_blank = |tv: &TermOrVar| !matches!(tv, TermOrVar::Term(t) if t.is_blank());
        let pred_ok = match &self.p {
            TermOrVar::Term(t) => t.is_iri(),
            TermOrVar::Var(_) => true,
        };
        no_blank(&self.s) && no_blank(&self.p) && no_blank(&self.o) && pred_ok
    }

    /// The variables of this pattern, in subject/predicate/object order,
    /// with duplicates.
    pub fn vars(&self) -> impl Iterator<Item = &Variable> {
        [&self.s, &self.p, &self.o]
            .into_iter()
            .filter_map(TermOrVar::as_var)
    }

    /// Applies a substitution of variables by terms, producing a new
    /// pattern (unmapped variables stay).
    pub fn substitute(&self, subst: &dyn Fn(&Variable) -> Option<Term>) -> TriplePattern {
        let apply = |tv: &TermOrVar| match tv {
            TermOrVar::Var(v) => match subst(v) {
                Some(t) => TermOrVar::Term(t),
                None => tv.clone(),
            },
            TermOrVar::Term(_) => tv.clone(),
        };
        TriplePattern {
            s: apply(&self.s),
            p: apply(&self.p),
            o: apply(&self.o),
        }
    }

    /// If the pattern is fully ground, returns the corresponding triple.
    pub fn as_triple(&self) -> Option<Triple> {
        match (&self.s, &self.p, &self.o) {
            (TermOrVar::Term(s), TermOrVar::Term(p), TermOrVar::Term(o)) => {
                Triple::new(s.clone(), p.clone(), o.clone()).ok()
            }
            _ => None,
        }
    }
}

impl fmt::Debug for TriplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.s, self.p, self.o)
    }
}

impl fmt::Display for TriplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.s, self.p, self.o)
    }
}

/// A graph pattern: a conjunction (`AND`) of triple patterns.
///
/// The paper defines graph patterns recursively as binary `AND`s; since
/// `AND` is associative and commutative under the join semantics, we store
/// the flattened conjunct list.
#[derive(Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct GraphPattern {
    patterns: Vec<TriplePattern>,
}

impl GraphPattern {
    /// The empty graph pattern (its evaluation is the single empty
    /// mapping).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a graph pattern from conjuncts.
    pub fn from_patterns(patterns: Vec<TriplePattern>) -> Self {
        GraphPattern { patterns }
    }

    /// A single-triple-pattern graph pattern.
    pub fn triple(
        s: impl Into<TermOrVar>,
        p: impl Into<TermOrVar>,
        o: impl Into<TermOrVar>,
    ) -> Self {
        GraphPattern {
            patterns: vec![TriplePattern::new(s, p, o)],
        }
    }

    /// The conjunction `(self AND other)`.
    pub fn and(mut self, other: GraphPattern) -> GraphPattern {
        self.patterns.extend(other.patterns);
        self
    }

    /// Appends one conjunct.
    pub fn push(&mut self, pattern: TriplePattern) {
        self.patterns.push(pattern);
    }

    /// The conjuncts.
    pub fn patterns(&self) -> &[TriplePattern] {
        &self.patterns
    }

    /// Number of conjuncts.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// `true` iff there are no conjuncts.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// `var(GP)`: the set of variables appearing in the pattern.
    pub fn vars(&self) -> BTreeSet<Variable> {
        self.patterns
            .iter()
            .flat_map(|p| p.vars().cloned())
            .collect()
    }

    /// All constant terms appearing in the pattern.
    pub fn constants(&self) -> BTreeSet<Term> {
        self.patterns
            .iter()
            .flat_map(|p| {
                [&p.s, &p.p, &p.o]
                    .into_iter()
                    .filter_map(TermOrVar::as_term)
                    .cloned()
            })
            .collect()
    }

    /// Applies a substitution to every conjunct.
    pub fn substitute(&self, subst: &dyn Fn(&Variable) -> Option<Term>) -> GraphPattern {
        GraphPattern {
            patterns: self.patterns.iter().map(|p| p.substitute(subst)).collect(),
        }
    }

    /// `true` iff all conjuncts are well-formed patterns.
    pub fn is_well_formed(&self) -> bool {
        self.patterns.iter().all(TriplePattern::is_well_formed)
    }
}

impl fmt::Debug for GraphPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.patterns.iter().map(|p| p.to_string()).collect();
        write!(f, "{{ {} }}", parts.join(" . "))
    }
}

impl fmt::Display for GraphPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.patterns.iter().map(|p| p.to_string()).collect();
        write!(f, "{{ {} }}", parts.join(" . "))
    }
}

/// A graph pattern query `q(x₁,…,xₙ) ← GP` of arity `n`.
///
/// Free variables must occur in `GP`; all other variables of `GP` are
/// existentially quantified.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GraphPatternQuery {
    free: Vec<Variable>,
    pattern: GraphPattern,
}

impl GraphPatternQuery {
    /// Creates a query; panics in debug builds if a free variable does not
    /// occur in the pattern (callers validate with [`Self::is_safe`]).
    pub fn new(free: Vec<Variable>, pattern: GraphPattern) -> Self {
        GraphPatternQuery { free, pattern }
    }

    /// A Boolean query (arity 0).
    pub fn boolean(pattern: GraphPattern) -> Self {
        GraphPatternQuery {
            free: Vec::new(),
            pattern,
        }
    }

    /// `subjQ(c) := q(x_pred, x_obj) ← (c, x_pred, x_obj)` (Section 2.3).
    pub fn subj_q(c: Term) -> Self {
        GraphPatternQuery::new(
            vec![Variable::new("pred"), Variable::new("obj")],
            GraphPattern::triple(c, Variable::new("pred"), Variable::new("obj")),
        )
    }

    /// `predQ(c) := q(x_subj, x_obj) ← (x_subj, c, x_obj)` (Section 2.3).
    pub fn pred_q(c: Term) -> Self {
        GraphPatternQuery::new(
            vec![Variable::new("subj"), Variable::new("obj")],
            GraphPattern::triple(Variable::new("subj"), c, Variable::new("obj")),
        )
    }

    /// `objQ(c) := q(x_subj, x_pred) ← (x_subj, x_pred, c)` (Section 2.3).
    pub fn obj_q(c: Term) -> Self {
        GraphPatternQuery::new(
            vec![Variable::new("subj"), Variable::new("pred")],
            GraphPattern::triple(Variable::new("subj"), Variable::new("pred"), c),
        )
    }

    /// The free (answer) variables, in order.
    pub fn free_vars(&self) -> &[Variable] {
        &self.free
    }

    /// The arity `n` of the query.
    pub fn arity(&self) -> usize {
        self.free.len()
    }

    /// The body graph pattern.
    pub fn pattern(&self) -> &GraphPattern {
        &self.pattern
    }

    /// The existentially quantified variables (body vars not in the head).
    pub fn existential_vars(&self) -> BTreeSet<Variable> {
        let free: BTreeSet<_> = self.free.iter().cloned().collect();
        self.pattern
            .vars()
            .into_iter()
            .filter(|v| !free.contains(v))
            .collect()
    }

    /// A query is *safe* if every free variable occurs in the body.
    pub fn is_safe(&self) -> bool {
        let body = self.pattern.vars();
        self.free.iter().all(|v| body.contains(v))
    }
}

impl fmt::Debug for GraphPatternQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let head: Vec<String> = self.free.iter().map(|v| v.to_string()).collect();
        write!(f, "q({}) <- {}", head.join(", "), self.pattern)
    }
}

impl fmt::Display for GraphPatternQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variable_display() {
        assert_eq!(Variable::new("x").to_string(), "?x");
    }

    #[test]
    fn pattern_vars_and_constants() {
        let gp = GraphPattern::triple(
            TermOrVar::iri("s"),
            TermOrVar::var("p"),
            TermOrVar::var("o"),
        )
        .and(GraphPattern::triple(
            TermOrVar::var("o"),
            TermOrVar::iri("q"),
            TermOrVar::literal("39"),
        ));
        assert_eq!(gp.len(), 2);
        let vars = gp.vars();
        assert_eq!(vars.len(), 2);
        assert!(vars.contains(&Variable::new("p")));
        assert!(vars.contains(&Variable::new("o")));
        let consts = gp.constants();
        assert!(consts.contains(&Term::iri("s")));
        assert!(consts.contains(&Term::literal("39")));
    }

    #[test]
    fn well_formedness() {
        let ok = TriplePattern::new(
            TermOrVar::var("x"),
            TermOrVar::iri("p"),
            TermOrVar::var("y"),
        );
        assert!(ok.is_well_formed());
        let bad_pred = TriplePattern::new(
            TermOrVar::var("x"),
            TermOrVar::literal("p"),
            TermOrVar::var("y"),
        );
        assert!(!bad_pred.is_well_formed());
        let blank = TriplePattern::new(
            TermOrVar::Term(Term::blank("b")),
            TermOrVar::iri("p"),
            TermOrVar::var("y"),
        );
        assert!(!blank.is_well_formed());
    }

    #[test]
    fn substitution_grounds_patterns() {
        let tp = TriplePattern::new(
            TermOrVar::var("x"),
            TermOrVar::iri("p"),
            TermOrVar::var("y"),
        );
        let subst = |v: &Variable| {
            if v.name() == "x" {
                Some(Term::iri("s"))
            } else {
                None
            }
        };
        let tp2 = tp.substitute(&subst);
        assert_eq!(tp2.s, TermOrVar::iri("s"));
        assert!(tp2.o.is_var());
        assert!(tp2.as_triple().is_none());
        let tp3 = tp2.substitute(&|_| Some(Term::iri("o")));
        let triple = tp3.as_triple().unwrap();
        assert_eq!(triple.object(), &Term::iri("o"));
    }

    #[test]
    fn query_safety_and_existentials() {
        let gp = GraphPattern::triple(
            TermOrVar::var("x"),
            TermOrVar::iri("p"),
            TermOrVar::var("z"),
        );
        let q = GraphPatternQuery::new(vec![Variable::new("x")], gp.clone());
        assert!(q.is_safe());
        assert_eq!(q.arity(), 1);
        assert_eq!(
            q.existential_vars().into_iter().collect::<Vec<_>>(),
            vec![Variable::new("z")]
        );
        let unsafe_q = GraphPatternQuery::new(vec![Variable::new("nope")], gp);
        assert!(!unsafe_q.is_safe());
    }

    #[test]
    fn star_queries_shapes() {
        let c = Term::iri("c");
        let s = GraphPatternQuery::subj_q(c.clone());
        assert_eq!(s.arity(), 2);
        assert_eq!(s.pattern().patterns()[0].s, TermOrVar::Term(c.clone()));
        let p = GraphPatternQuery::pred_q(c.clone());
        assert_eq!(p.pattern().patterns()[0].p, TermOrVar::Term(c.clone()));
        let o = GraphPatternQuery::obj_q(c.clone());
        assert_eq!(o.pattern().patterns()[0].o, TermOrVar::Term(c));
    }

    #[test]
    fn display_shapes() {
        let q = GraphPatternQuery::new(
            vec![Variable::new("x")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("p"),
                TermOrVar::var("y"),
            ),
        );
        let s = format!("{q}");
        assert!(s.contains("q(?x)"));
        assert!(s.contains("<p>"));
    }
}
