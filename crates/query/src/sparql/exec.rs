//! The term-level assembly tail of SPARQL evaluation.
//!
//! Everything the conjunctive engine cannot express happens here, on
//! decoded terms: OPTIONAL left joins (compatible-mapping semantics),
//! FILTER evaluation, projection with unbound columns, DISTINCT,
//! ORDER BY with a numeric-aware comparator, and LIMIT/OFFSET. The
//! routines are deliberately route-agnostic — they see only answer
//! sets of term tuples — so a query assembled over the materialised,
//! rewritten, live or federated route produces byte-identical output.

use super::lower::{LoweredSparql, SparqlResult, SparqlRows};
use super::parse::{CmpOp, FilterExpr, Operand};
use crate::pattern::Variable;
use rps_rdf::{LiteralAnnotation, Term};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};

/// A partial solution: the variables a row binds. `BTreeMap` keeps
/// rows `Ord`, which gives the sets below canonical iteration order.
type Row = BTreeMap<Variable, Term>;

fn rows_from(head: &[Variable], tuples: &BTreeSet<Vec<Term>>) -> BTreeSet<Row> {
    tuples
        .iter()
        .map(|tuple| {
            head.iter()
                .cloned()
                .zip(tuple.iter().cloned())
                .collect::<Row>()
        })
        .collect()
}

/// Two rows are compatible iff they agree on every variable both bind.
fn compatible(a: &Row, b: &Row) -> bool {
    a.iter()
        .all(|(v, t)| b.get(v).is_none_or(|other| other == t))
}

fn merge(a: &Row, b: &Row) -> Row {
    let mut out = a.clone();
    for (v, t) in b {
        out.entry(v.clone()).or_insert_with(|| t.clone());
    }
    out
}

/// SPARQL LeftJoin over term rows: rows with at least one compatible
/// extension are replaced by all their extensions; rows with none pass
/// through unextended.
fn left_join(rows: BTreeSet<Row>, extensions: &BTreeSet<Row>) -> BTreeSet<Row> {
    let mut out = BTreeSet::new();
    for row in rows {
        let mut extended = false;
        for ext in extensions {
            if compatible(&row, ext) {
                out.insert(merge(&row, ext));
                extended = true;
            }
        }
        if !extended {
            out.insert(row);
        }
    }
    out
}

/// The numeric value of a term for filter comparison and ORDER BY:
/// any non-language-tagged literal whose lexical form parses as a
/// finite float counts (covering the engine's `xsd:integer` literals
/// and plain digit strings alike).
fn numeric(term: &Term) -> Option<f64> {
    let Term::Literal(lit) = term else {
        return None;
    };
    if matches!(lit.annotation(), LiteralAnnotation::Lang(_)) {
        return None;
    }
    let v: f64 = lit.lexical().parse().ok()?;
    v.is_finite().then_some(v)
}

fn operand<'a>(op: &'a Operand, row: &'a Row) -> Option<&'a Term> {
    match op {
        Operand::Term(t) => Some(t),
        Operand::Var(v) => row.get(v),
    }
}

/// Evaluates a filter to SPARQL's three-valued logic: `Some(bool)` is
/// a defined result, `None` a type error — a comparison over an
/// unbound variable, or an ordering comparison on a non-literal.
/// Errors propagate exactly as the SPARQL evaluation tables prescribe:
/// the negation of an error is an error, `true || error` is `true`,
/// `false && error` is `false`, and every other combination involving
/// an error is an error. (`=`/`!=` between two bound terms are kept
/// total — distinct terms compare unequal rather than erroring — a
/// deliberate simplification of RDFterm-equal for this subset.)
fn eval_filter_tri(expr: &FilterExpr, row: &Row) -> Option<bool> {
    match expr {
        FilterExpr::Or(a, b) => match (eval_filter_tri(a, row), eval_filter_tri(b, row)) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        FilterExpr::And(a, b) => match (eval_filter_tri(a, row), eval_filter_tri(b, row)) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        FilterExpr::Not(a) => eval_filter_tri(a, row).map(|v| !v),
        FilterExpr::Bound(v) => Some(row.contains_key(v)),
        FilterExpr::Compare(lhs, op, rhs) => {
            let (Some(l), Some(r)) = (operand(lhs, row), operand(rhs, row)) else {
                return None;
            };
            match (numeric(l), numeric(r)) {
                (Some(a), Some(b)) => Some(match op {
                    CmpOp::Eq => a == b,
                    CmpOp::Ne => a != b,
                    CmpOp::Lt => a < b,
                    CmpOp::Le => a <= b,
                    CmpOp::Gt => a > b,
                    CmpOp::Ge => a >= b,
                }),
                _ => match op {
                    CmpOp::Eq => Some(l == r),
                    CmpOp::Ne => Some(l != r),
                    // Ordering comparisons are defined on literals
                    // only (by lexical form); on IRIs or blanks they
                    // are type errors.
                    _ => match (l, r) {
                        (Term::Literal(a), Term::Literal(b)) => {
                            let ord = a.lexical().cmp(b.lexical());
                            Some(matches!(
                                (op, ord),
                                (CmpOp::Lt, Ordering::Less)
                                    | (CmpOp::Le, Ordering::Less | Ordering::Equal)
                                    | (CmpOp::Gt, Ordering::Greater)
                                    | (CmpOp::Ge, Ordering::Greater | Ordering::Equal)
                            ))
                        }
                        _ => None,
                    },
                },
            }
        }
    }
}

/// Evaluates a filter at the FILTER boundary: a row is kept only when
/// the expression evaluates to `true` — both `false` and a type error
/// remove it, per the SPARQL FILTER rule.
pub(crate) fn eval_filter(expr: &FilterExpr, row: &Row) -> bool {
    eval_filter_tri(expr, row) == Some(true)
}

/// The ORDER BY comparator for one key: unbound sorts before bound;
/// two numerics compare numerically; anything else falls back to the
/// total term order. Ties fall through to the next key, and finally to
/// the whole projected row, so the output order is always total and
/// deterministic.
fn key_cmp(a: Option<&Term>, b: Option<&Term>) -> Ordering {
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(ta), Some(tb)) => {
            let by_number = match (numeric(ta), numeric(tb)) {
                (Some(na), Some(nb)) => na.partial_cmp(&nb).unwrap_or(Ordering::Equal),
                _ => Ordering::Equal,
            };
            by_number.then_with(|| ta.cmp(tb))
        }
    }
}

pub(crate) fn assemble(lowered: &LoweredSparql, answers: &[BTreeSet<Vec<Term>>]) -> SparqlResult {
    let expected: usize = lowered.branches.iter().map(|b| 1 + b.optionals.len()).sum();
    assert_eq!(
        answers.len(),
        expected,
        "assemble needs one answer set per lowered CQ"
    );

    let mut merged: BTreeSet<Row> = BTreeSet::new();
    let mut cursor = 0usize;
    for branch in &lowered.branches {
        let mut rows = rows_from(branch.base.free_vars(), &answers[cursor]);
        cursor += 1;
        for opt in &branch.optionals {
            let mut exts = rows_from(opt.query.free_vars(), &answers[cursor]);
            cursor += 1;
            exts.retain(|row| opt.filters.iter().all(|f| eval_filter(f, row)));
            rows = left_join(rows, &exts);
        }
        rows.retain(|row| branch.filters.iter().all(|f| eval_filter(f, row)));
        merged.extend(rows);
    }

    if lowered.ask {
        return SparqlResult::Boolean(!merged.is_empty());
    }

    // Project. The engine computes set semantics throughout, so the
    // projected rows dedup unconditionally (DISTINCT and REDUCED are
    // thereby satisfied; they are accepted syntax, not extra work).
    let projected: BTreeSet<Vec<Option<Term>>> = merged
        .iter()
        .map(|row| {
            lowered
                .projection
                .iter()
                .map(|v| row.get(v).cloned())
                .collect()
        })
        .collect();
    let mut rows: Vec<Vec<Option<Term>>> = projected.into_iter().collect();

    if !lowered.order_by.is_empty() {
        let key_cols: Vec<(usize, bool)> = lowered
            .order_by
            .iter()
            .filter_map(|k| {
                lowered
                    .projection
                    .iter()
                    .position(|v| *v == k.var)
                    .map(|i| (i, k.descending))
            })
            .collect();
        rows.sort_by(|a, b| {
            for &(col, desc) in &key_cols {
                let ord = key_cmp(a[col].as_ref(), b[col].as_ref());
                let ord = if desc { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            a.cmp(b)
        });
    }

    let offset = lowered.offset.unwrap_or(0);
    if offset > 0 {
        rows.drain(..offset.min(rows.len()));
    }
    if let Some(limit) = lowered.limit {
        rows.truncate(limit);
    }

    SparqlResult::Rows(SparqlRows {
        vars: lowered.columns(),
        rows,
    })
}
