//! A SPARQL front-end for the SELECT/ASK subset the engine executes.
//!
//! The paper's query language is conjunctive SPARQL plus UNION
//! (Section 2.1), and everything below the surface — prepare/execute,
//! plan caching, the chase and rewriting routes, federation — speaks
//! conjunctive queries. This module closes the gap to actual SPARQL
//! text:
//!
//! ```text
//! query     := prologue ( select | ask )
//! prologue  := ( PREFIX pname: <iri> | BASE <iri> )*
//! select    := SELECT [DISTINCT|REDUCED] ( ?v+ | * ) [WHERE] ggp modifiers
//! ask       := ASK [WHERE] ggp
//! ggp       := '{' ( triples | FILTER constraint
//!                  | OPTIONAL sgp | sgp (UNION sgp)* )* '}'
//! sgp       := '{' ( triples | FILTER constraint )* '}'
//! constraint:= '(' expr ')' | bound(?v)
//! expr      := expr '||' expr | expr '&&' expr | '!' expr | '(' expr ')'
//!            | operand ( '=' | '!=' | '<' | '<=' | '>' | '>=' ) operand
//!            | bound(?v)
//! modifiers := [ORDER BY ( ?v | ASC(?v) | DESC(?v) )+] [LIMIT n] [OFFSET n]
//! ```
//!
//! The subset is *structural*: OPTIONAL bodies and UNION alternatives
//! are triples + filters only, so every query lowers exactly to a
//! union of conjunctive plans plus a term-level assembly tail (left
//! joins, filters, projection, ordering) shared by all routes. Queries
//! outside the subset are rejected at parse time with a typed,
//! span-carrying [`SparqlError`] — never a panic, never a silently
//! dropped clause.
//!
//! Entry points: [`parse_sparql`] text → [`SparqlQuery`] AST,
//! [`SparqlQuery::lower`] AST → [`LoweredSparql`] conjunctive plans,
//! [`LoweredSparql::assemble`] answer sets → [`SparqlResult`]. The
//! session façades in `rps-core` and `rps-p2p` wrap these around their
//! own prepare/execute pipelines.

mod exec;
mod lex;
mod lower;
mod parse;

pub use lower::{LoweredSparql, SparqlResult, SparqlRows};
pub use parse::{
    parse_sparql, CmpOp, FilterExpr, Operand, OrderKey, Projection, QueryForm, SimpleGroup,
    SparqlQuery,
};

use std::fmt;

/// A SPARQL front-end error: what went wrong and where.
///
/// `span` is the half-open byte range of the offending token in the
/// query text; `line`/`col` are 1-based and point at its first
/// character. Every malformed query is reported through this type —
/// the front-end never panics on input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparqlError {
    /// What was wrong.
    pub message: String,
    /// Byte range of the offending token in the source text.
    pub span: (usize, usize),
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
}

impl fmt::Display for SparqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SPARQL parse error at line {}, column {}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for SparqlError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Semantics;
    use rps_rdf::{PrefixMap, Term};

    fn base() -> PrefixMap {
        let mut m = PrefixMap::common();
        m.insert("e", "http://e/");
        m
    }

    fn graph() -> rps_rdf::Graph {
        rps_rdf::turtle::parse(
            "@prefix e: <http://e/> .\n\
             e:alice e:age \"31\" ; e:knows e:bob .\n\
             e:bob e:age \"25\" .\n\
             e:carol e:age \"40\" ; e:nick \"cc\" .\n",
        )
        .unwrap()
    }

    fn run(src: &str) -> SparqlResult {
        let q = parse_sparql(src, &base()).expect("parse");
        q.lower().evaluate(&graph(), Semantics::Certain)
    }

    #[test]
    fn select_basic() {
        let r = run("SELECT ?x WHERE { ?x e:age ?a }");
        let rows = r.rows().unwrap();
        assert_eq!(rows.vars, ["x"]);
        assert_eq!(rows.rows.len(), 3);
    }

    #[test]
    fn select_star_projects_first_occurrence_order() {
        let r = run("SELECT * WHERE { ?x e:knows ?y . ?y e:age ?a }");
        let rows = r.rows().unwrap();
        assert_eq!(rows.vars, ["x", "y", "a"]);
        assert_eq!(rows.rows.len(), 1);
    }

    #[test]
    fn optional_keeps_unmatched_rows_unbound() {
        let r = run("SELECT ?x ?n WHERE { ?x e:age ?a OPTIONAL { ?x e:nick ?n } }");
        let rows = r.rows().unwrap();
        assert_eq!(rows.rows.len(), 3);
        let bound: Vec<_> = rows.rows.iter().filter(|r| r[1].is_some()).collect();
        assert_eq!(bound.len(), 1);
        assert_eq!(bound[0][0], Some(Term::iri("http://e/carol")));
        assert_eq!(bound[0][1], Some(Term::literal("cc")));
    }

    #[test]
    fn filter_comparisons_are_numeric_aware() {
        let r = run("SELECT ?x WHERE { ?x e:age ?a FILTER(?a > \"30\") }");
        let rows = r.rows().unwrap();
        // "25" < "30" numerically even though "25" < "30" also as a
        // string; "31" > "30" numerically but NOT as a string — the
        // numeric comparison must win.
        assert_eq!(rows.rows.len(), 2);
    }

    #[test]
    fn filter_bound_and_negation() {
        let r = run("SELECT ?x WHERE { ?x e:age ?a OPTIONAL { ?x e:nick ?n } FILTER(!bound(?n)) }");
        assert_eq!(r.rows().unwrap().rows.len(), 2);
    }

    #[test]
    fn filter_logical_connectives() {
        let r = run(
            "SELECT ?x WHERE { ?x e:age ?a FILTER(?a < \"26\" || (?a >= \"40\" && ?a <= \"41\")) }",
        );
        assert_eq!(r.rows().unwrap().rows.len(), 2);
    }

    #[test]
    fn order_by_desc_limit_offset() {
        let r = run("SELECT ?x ?a WHERE { ?x e:age ?a } ORDER BY DESC(?a) LIMIT 2 OFFSET 1");
        let rows = r.rows().unwrap();
        assert_eq!(rows.rows.len(), 2);
        assert_eq!(rows.rows[0][1], Some(Term::literal("31")));
        assert_eq!(rows.rows[1][1], Some(Term::literal("25")));
    }

    #[test]
    fn ask_union() {
        let t = run("ASK { { e:alice e:knows ?x } UNION { e:alice e:hates ?x } }");
        assert_eq!(t.boolean(), Some(true));
        let f = run("ASK { { e:bob e:knows ?x } UNION { e:alice e:hates ?x } }");
        assert_eq!(f.boolean(), Some(false));
    }

    #[test]
    fn union_select_merges_branches() {
        let r = run("SELECT ?x WHERE { { ?x e:nick \"cc\" } UNION { ?x e:knows e:bob } }");
        let rows = r.rows().unwrap();
        assert_eq!(rows.rows.len(), 2);
    }

    #[test]
    fn distinct_is_accepted() {
        let r = run("SELECT DISTINCT ?a WHERE { ?x e:age ?a }");
        assert_eq!(r.rows().unwrap().rows.len(), 3);
    }

    #[test]
    fn prologue_prefix_and_base() {
        let q = parse_sparql(
            "BASE <http://e/> PREFIX p: <http://e/> SELECT ?x { <alice> p:age ?x }",
            &PrefixMap::new(),
        )
        .unwrap();
        let r = q.lower().evaluate(&graph(), Semantics::Certain);
        assert_eq!(r.rows().unwrap().rows.len(), 1);
    }

    #[test]
    fn errors_carry_spans_and_positions() {
        let src = "SELECT ?x WHERE { ?x e:age }";
        let err = parse_sparql(src, &base()).unwrap_err();
        assert!(err.message.contains("expected an object"), "{err}");
        assert_eq!(&src[err.span.0..err.span.1], "}");
        assert_eq!(err.line, 1);
        assert!(err.col > 1);
    }

    #[test]
    fn structural_restrictions_are_typed_errors() {
        for (src, needle) in [
            (
                "SELECT ?x { ?x e:p ?y OPTIONAL { OPTIONAL { ?x e:q ?z } } }",
                "OPTIONAL cannot nest",
            ),
            (
                "SELECT ?x { OPTIONAL { ?x e:q ?z } }",
                "at least one triple",
            ),
            (
                "ASK { { ?x e:p ?y } UNION { OPTIONAL { ?x e:q ?z } } }",
                "OPTIONAL cannot nest",
            ),
            ("SELECT ?x { }", "at least one triple"),
            (
                "SELECT ?x { ?x e:p ?y } ORDER BY ?z",
                "must appear in the SELECT list",
            ),
            ("ASK { ?x e:p ?y } ORDER BY ?x", "no ORDER BY"),
            ("SELECT { ?x e:p ?y }", "variable list or '*'"),
            ("SELECT ?x { ?x e:p ?y FILTER(?y) }", "comparison operator"),
            ("SELECT ?x { ?x e:p \"unterminated }", "unterminated"),
            ("SELECT ?x { ?x nope:q ?y }", "unknown prefix"),
        ] {
            let err = parse_sparql(src, &base()).unwrap_err();
            assert!(
                err.message.contains(needle),
                "{src:?} => {:?} (wanted {needle:?})",
                err.message
            );
        }
    }

    #[test]
    fn lowering_minimises_heads() {
        let q = parse_sparql(
            "SELECT ?x WHERE { ?x e:knows ?y . ?y e:age ?a FILTER(?a > \"20\") }",
            &base(),
        )
        .unwrap();
        let lowered = q.lower();
        let queries = lowered.queries();
        assert_eq!(queries.len(), 1);
        // ?y joins internally but is neither projected nor filtered, so
        // the base head keeps only ?x and ?a.
        let head: Vec<_> = queries[0].free_vars().iter().map(|v| v.name()).collect();
        assert_eq!(head.len(), 2);
        assert!(head.contains(&"x") && head.contains(&"a"));
    }

    #[test]
    fn optional_join_var_survives_head_minimisation() {
        // ?y is neither projected, filtered nor sorted, but it is the
        // left-join key between the base BGP and the OPTIONAL. If head
        // minimisation dropped it, the two bindings of ?y would
        // collapse into one base row before the join and the
        // unmatched-OPTIONAL row would be lost.
        let g = rps_rdf::turtle::parse(
            "@prefix e: <http://e/> .\n\
             e:x1 e:p e:y1 .\n\
             e:x1 e:p e:y2 .\n\
             e:y1 e:q \"n1\" .\n",
        )
        .unwrap();
        let q = parse_sparql(
            "SELECT ?x ?n WHERE { ?x e:p ?y OPTIONAL { ?y e:q ?n } }",
            &base(),
        )
        .unwrap();
        let lowered = q.lower();
        for cq in lowered.queries() {
            assert!(
                cq.free_vars().iter().any(|v| v.name() == "y"),
                "join variable ?y must survive head minimisation"
            );
        }
        let r = lowered.evaluate(&g, Semantics::Certain);
        let rows = &r.rows().unwrap().rows;
        assert_eq!(rows.len(), 2, "one matched and one unmatched row");
        assert!(rows.contains(&vec![
            Some(Term::iri("http://e/x1")),
            Some(Term::literal("n1"))
        ]));
        assert!(rows.contains(&vec![Some(Term::iri("http://e/x1")), None]));
    }

    #[test]
    fn filter_type_errors_propagate_through_negation() {
        // ?n is unbound for alice and bob, so ?n = "x" is a type
        // error; the error propagates through ! and the FILTER removes
        // the row. Only carol binds ?n ("cc" != "x" → !false → true).
        let r =
            run("SELECT ?x WHERE { ?x e:age ?a OPTIONAL { ?x e:nick ?n } FILTER(!(?n = \"x\")) }");
        let rows = &r.rows().unwrap().rows;
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Some(Term::iri("http://e/carol")));
        // At an || the error is masked by a true branch but survives a
        // false one.
        let masked = run("SELECT ?x WHERE { ?x e:age ?a OPTIONAL { ?x e:nick ?n } \
             FILTER(!(?n = \"x\") || ?a > \"0\") }");
        assert_eq!(masked.rows().unwrap().rows.len(), 3);
        let surviving = run("SELECT ?x WHERE { ?x e:age ?a OPTIONAL { ?x e:nick ?n } \
             FILTER(!(?n = \"x\") || ?a < \"0\") }");
        assert_eq!(surviving.rows().unwrap().rows.len(), 1);
    }

    #[test]
    fn assemble_matches_direct_evaluation_shape() {
        let q = parse_sparql("SELECT ?x { ?x e:age ?a } LIMIT 1", &base()).unwrap();
        let lowered = q.lower();
        let g = graph();
        let answers: Vec<_> = lowered
            .queries()
            .into_iter()
            .map(|cq| crate::eval::evaluate_query(&g, cq, Semantics::Certain))
            .collect();
        assert_eq!(
            lowered.assemble(&answers),
            lowered.evaluate(&g, Semantics::Certain)
        );
    }
}
