//! The recursive-descent SPARQL parser: spanned tokens to a typed AST.
//!
//! The grammar is the SELECT/ASK subset described in [`super`]. Every
//! rejection — lexical, syntactic, or a structural restriction of the
//! subset (nested OPTIONAL, UNION inside OPTIONAL, empty group) — is a
//! [`SparqlError`] carrying the byte span and line/column of the
//! offending token; the parser never panics on malformed input.

use super::lex::{tokenize, Kw, Spanned, Tok};
use super::SparqlError;
use crate::pattern::{TermOrVar, TriplePattern, Variable};
use rps_rdf::namespace::vocab;
use rps_rdf::{Iri, Literal, PrefixMap, Term};

/// A parsed SPARQL query: form, pattern and solution modifiers.
#[derive(Debug, Clone, PartialEq)]
pub struct SparqlQuery {
    /// SELECT or ASK.
    pub form: QueryForm,
    /// The WHERE-clause group graph pattern.
    pub pattern: GroupPattern,
    /// ORDER BY keys, outermost first.
    pub order_by: Vec<OrderKey>,
    /// `LIMIT n`, if present.
    pub limit: Option<usize>,
    /// `OFFSET n`, if present.
    pub offset: Option<usize>,
}

/// The query form.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryForm {
    /// `SELECT [DISTINCT|REDUCED] (?v+ | *)`.
    Select {
        /// `true` for both DISTINCT and REDUCED (the engine computes
        /// set semantics throughout, so both are satisfied).
        distinct: bool,
        /// The projection.
        projection: Projection,
    },
    /// `ASK`.
    Ask,
}

/// A SELECT projection.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// An explicit variable list, in projection order.
    Vars(Vec<Variable>),
    /// `SELECT *`: every variable of the pattern, in first-occurrence
    /// order.
    Star,
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// The sort variable.
    pub var: Variable,
    /// `true` for `DESC(?v)`.
    pub descending: bool,
}

/// A group graph pattern: the base basic graph pattern plus the
/// OPTIONAL, FILTER and UNION elements attached to it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GroupPattern {
    /// The base BGP triples.
    pub triples: Vec<TriplePattern>,
    /// Group-level FILTER constraints (evaluated on merged rows).
    pub filters: Vec<FilterExpr>,
    /// OPTIONAL blocks, in source order (left-joined left to right).
    pub optionals: Vec<SimpleGroup>,
    /// UNION blocks: each block is a list of alternatives, and the
    /// query denotes the cross product of one alternative per block
    /// joined with the base BGP.
    pub unions: Vec<Vec<SimpleGroup>>,
}

/// A restricted group — triples plus filters only — used for OPTIONAL
/// bodies and UNION alternatives. The subset forbids nesting OPTIONAL
/// or UNION inside these (a typed parse error, not silent dropping).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimpleGroup {
    /// The triples of the block.
    pub triples: Vec<TriplePattern>,
    /// FILTERs scoped to the block.
    pub filters: Vec<FilterExpr>,
}

/// A FILTER expression over one solution row.
#[derive(Debug, Clone, PartialEq)]
pub enum FilterExpr {
    /// `a || b`.
    Or(Box<FilterExpr>, Box<FilterExpr>),
    /// `a && b`.
    And(Box<FilterExpr>, Box<FilterExpr>),
    /// `!a`.
    Not(Box<FilterExpr>),
    /// `lhs OP rhs`.
    Compare(Operand, CmpOp, Operand),
    /// `bound(?v)`.
    Bound(Variable),
}

impl FilterExpr {
    /// Collects every variable the expression mentions into `out`.
    pub fn collect_vars(&self, out: &mut Vec<Variable>) {
        match self {
            FilterExpr::Or(a, b) | FilterExpr::And(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            FilterExpr::Not(a) => a.collect_vars(out),
            FilterExpr::Compare(l, _, r) => {
                for op in [l, r] {
                    if let Operand::Var(v) = op {
                        out.push(v.clone());
                    }
                }
            }
            FilterExpr::Bound(v) => out.push(v.clone()),
        }
    }
}

/// A comparison operand: a variable or a constant term.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A variable, resolved against the row under test.
    Var(Variable),
    /// A constant RDF term.
    Term(Term),
}

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Parses a SPARQL-subset query. Prefixed names resolve first against
/// `PREFIX` declarations in the query, then against `base`.
pub fn parse_sparql(input: &str, base: &PrefixMap) -> Result<SparqlQuery, SparqlError> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        prefixes: base.clone(),
        base_iri: None,
        src_len: input.len(),
    };
    p.query()
}

/// `(order_by, limit, offset)` — the trailing solution modifiers.
type Modifiers = (Vec<OrderKey>, Option<usize>, Option<usize>);

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    prefixes: PrefixMap,
    base_iri: Option<String>,
    src_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|s| &s.tok)
    }

    fn bump(&mut self) -> Option<Spanned> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, msg: impl Into<String>) -> SparqlError {
        match self.tokens.get(self.pos) {
            Some(sp) => SparqlError {
                message: msg.into(),
                span: sp.span,
                line: sp.line,
                col: sp.col,
            },
            None => {
                let (line, col) = self
                    .tokens
                    .last()
                    .map(|s| (s.line, s.col))
                    .unwrap_or((1, 1));
                SparqlError {
                    message: format!("{} (found end of input)", msg.into()),
                    span: (self.src_len, self.src_len),
                    line,
                    col,
                }
            }
        }
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<Spanned, SparqlError> {
        match self.peek() {
            Some(t) if *t == tok => Ok(self.bump().expect("peeked")),
            _ => Err(self.err_here(format!("expected {what}"))),
        }
    }

    fn eat_kw(&mut self, kw: Kw) -> bool {
        if matches!(self.peek(), Some(Tok::Keyword(k)) if *k == kw) {
            self.pos += 1;
            return true;
        }
        false
    }

    fn resolve_iri(&self, iri: String) -> Term {
        // Relative IRIs (no scheme colon) resolve by concatenation
        // against a BASE declaration, if any.
        if !iri.contains(':') {
            if let Some(base) = &self.base_iri {
                return Term::Iri(Iri::new(format!("{base}{iri}")));
            }
        }
        Term::Iri(Iri::new(iri))
    }

    fn query(&mut self) -> Result<SparqlQuery, SparqlError> {
        self.prologue()?;
        let form = if self.eat_kw(Kw::Select) {
            let distinct = self.eat_kw(Kw::Distinct) || self.eat_kw(Kw::Reduced);
            let projection = if matches!(self.peek(), Some(Tok::Star)) {
                self.bump();
                Projection::Star
            } else {
                let mut vars = Vec::new();
                while let Some(Tok::Var(_)) = self.peek() {
                    if let Some(Spanned {
                        tok: Tok::Var(name),
                        ..
                    }) = self.bump()
                    {
                        vars.push(Variable::new(name));
                    }
                }
                if vars.is_empty() {
                    return Err(self.err_here("SELECT needs a variable list or '*'"));
                }
                Projection::Vars(vars)
            };
            self.eat_kw(Kw::Where);
            QueryForm::Select {
                distinct,
                projection,
            }
        } else if self.eat_kw(Kw::Ask) {
            self.eat_kw(Kw::Where);
            QueryForm::Ask
        } else {
            return Err(self.err_here("expected SELECT or ASK"));
        };
        let pattern = self.group_graph_pattern()?;
        let (order_by, limit, offset) = self.solution_modifiers()?;
        if self.pos != self.tokens.len() {
            return Err(self.err_here("trailing tokens after query"));
        }
        if matches!(form, QueryForm::Ask) && !order_by.is_empty() {
            return Err(self.err_here("ASK queries take no ORDER BY"));
        }
        // Sorting happens on projected columns (projection precedes
        // ORDER BY in this engine because projection dedups), so an
        // explicit SELECT list must cover every sort key. `SELECT *`
        // projects all pattern variables and always qualifies.
        if let QueryForm::Select {
            projection: Projection::Vars(vars),
            ..
        } = &form
        {
            for key in &order_by {
                if !vars.contains(&key.var) {
                    return Err(self.err_here(format!(
                        "ORDER BY variable ?{} must appear in the SELECT list",
                        key.var.name()
                    )));
                }
            }
        }
        Ok(SparqlQuery {
            form,
            pattern,
            order_by,
            limit,
            offset,
        })
    }

    fn prologue(&mut self) -> Result<(), SparqlError> {
        loop {
            if self.eat_kw(Kw::Prefix) {
                let Some(Spanned {
                    tok: Tok::PName(pname),
                    ..
                }) = self.bump()
                else {
                    return Err(self.err_here("expected a prefix name after PREFIX"));
                };
                let Some(prefix) = pname.strip_suffix(':') else {
                    return Err(self.err_here("prefix declarations must end with ':'"));
                };
                let Some(Spanned {
                    tok: Tok::Iri(ns), ..
                }) = self.bump()
                else {
                    return Err(self.err_here("expected a namespace IRI after the prefix"));
                };
                self.prefixes.insert(prefix, ns);
            } else if self.eat_kw(Kw::Base) {
                let Some(Spanned {
                    tok: Tok::Iri(iri), ..
                }) = self.bump()
                else {
                    return Err(self.err_here("expected an IRI after BASE"));
                };
                self.base_iri = Some(iri);
            } else {
                return Ok(());
            }
        }
    }

    fn solution_modifiers(&mut self) -> Result<Modifiers, SparqlError> {
        let mut order_by = Vec::new();
        if self.eat_kw(Kw::Order) {
            if !self.eat_kw(Kw::By) {
                return Err(self.err_here("expected BY after ORDER"));
            }
            loop {
                match self.peek() {
                    Some(Tok::Var(_)) => {
                        if let Some(Spanned {
                            tok: Tok::Var(name),
                            ..
                        }) = self.bump()
                        {
                            order_by.push(OrderKey {
                                var: Variable::new(name),
                                descending: false,
                            });
                        }
                    }
                    Some(Tok::Keyword(Kw::Asc)) | Some(Tok::Keyword(Kw::Desc)) => {
                        let descending = matches!(self.peek(), Some(Tok::Keyword(Kw::Desc)));
                        self.bump();
                        self.expect(Tok::LParen, "'(' after ASC/DESC")?;
                        let Some(Spanned {
                            tok: Tok::Var(name),
                            ..
                        }) = self.bump()
                        else {
                            return Err(self.err_here("expected a variable inside ASC/DESC"));
                        };
                        self.expect(Tok::RParen, "')' after the sort variable")?;
                        order_by.push(OrderKey {
                            var: Variable::new(name),
                            descending,
                        });
                    }
                    _ => break,
                }
            }
            if order_by.is_empty() {
                return Err(self.err_here("ORDER BY needs at least one sort key"));
            }
        }
        let mut limit = None;
        let mut offset = None;
        // LIMIT and OFFSET may appear in either order.
        for _ in 0..2 {
            if self.eat_kw(Kw::Limit) {
                if limit.is_some() {
                    return Err(self.err_here("duplicate LIMIT"));
                }
                limit = Some(self.integer("LIMIT")?);
            } else if self.eat_kw(Kw::Offset) {
                if offset.is_some() {
                    return Err(self.err_here("duplicate OFFSET"));
                }
                offset = Some(self.integer("OFFSET")?);
            }
        }
        Ok((order_by, limit, offset))
    }

    fn integer(&mut self, what: &str) -> Result<usize, SparqlError> {
        match self.peek() {
            Some(Tok::Integer(_)) => {
                let Some(Spanned {
                    tok: Tok::Integer(n),
                    ..
                }) = self.bump()
                else {
                    unreachable!("peeked an integer");
                };
                n.parse()
                    .map_err(|_| self.err_here(format!("{what} count out of range")))
            }
            _ => Err(self.err_here(format!("expected a non-negative integer after {what}"))),
        }
    }

    /// `'{' (triples | FILTER | OPTIONAL group | union-block)* '}'`.
    fn group_graph_pattern(&mut self) -> Result<GroupPattern, SparqlError> {
        self.expect(Tok::LBrace, "'{' to open the graph pattern")?;
        let mut group = GroupPattern::default();
        loop {
            match self.peek() {
                Some(Tok::RBrace) => {
                    self.bump();
                    break;
                }
                None => return Err(self.err_here("expected '}' to close the graph pattern")),
                Some(Tok::Dot) => {
                    // Stray separators between elements are permitted.
                    self.bump();
                }
                Some(Tok::Keyword(Kw::Filter)) => {
                    self.bump();
                    group.filters.push(self.filter_constraint()?);
                }
                Some(Tok::Keyword(Kw::Optional)) => {
                    self.bump();
                    let inner = self.simple_group("OPTIONAL")?;
                    group.optionals.push(inner);
                }
                Some(Tok::LBrace) => {
                    // A braced group at element position is a UNION
                    // block; a lone group is a one-alternative block.
                    let mut alternatives = vec![self.simple_group("UNION alternative")?];
                    while self.eat_kw(Kw::Union) {
                        alternatives.push(self.simple_group("UNION alternative")?);
                    }
                    group.unions.push(alternatives);
                }
                Some(Tok::Keyword(Kw::Union)) => {
                    return Err(self.err_here("UNION must join two braced groups"));
                }
                _ => self.triples_into(&mut group.triples)?,
            }
        }
        if group.triples.is_empty() && group.unions.is_empty() {
            return Err(self.err_here(
                "the graph pattern needs at least one triple (OPTIONAL and FILTER cannot stand alone)",
            ));
        }
        Ok(group)
    }

    /// `'{' (triples | FILTER)* '}'` — the restricted body of OPTIONAL
    /// blocks and UNION alternatives. Structural nesting is a typed
    /// error here, keeping the lowering to conjunctive plans exact.
    fn simple_group(&mut self, what: &str) -> Result<SimpleGroup, SparqlError> {
        self.expect(Tok::LBrace, "'{'")?;
        let mut out = SimpleGroup::default();
        loop {
            match self.peek() {
                Some(Tok::RBrace) => {
                    self.bump();
                    break;
                }
                None => return Err(self.err_here("expected '}'")),
                Some(Tok::Dot) => {
                    self.bump();
                }
                Some(Tok::Keyword(Kw::Filter)) => {
                    self.bump();
                    out.filters.push(self.filter_constraint()?);
                }
                Some(Tok::Keyword(Kw::Optional)) => {
                    return Err(
                        self.err_here(format!("OPTIONAL cannot nest inside an {what} block"))
                    );
                }
                Some(Tok::LBrace) | Some(Tok::Keyword(Kw::Union)) => {
                    return Err(self.err_here(format!("UNION cannot nest inside an {what} block")));
                }
                _ => self.triples_into(&mut out.triples)?,
            }
        }
        if out.triples.is_empty() {
            return Err(self.err_here(format!("an {what} block needs at least one triple")));
        }
        Ok(out)
    }

    /// `FILTER '(' expr ')'` or `FILTER bound(?v)`.
    fn filter_constraint(&mut self) -> Result<FilterExpr, SparqlError> {
        match self.peek() {
            Some(Tok::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen, "')' to close the FILTER")?;
                Ok(e)
            }
            Some(Tok::Keyword(Kw::Bound)) => self.expr_primary(),
            _ => Err(self.err_here("expected '(' or bound(...) after FILTER")),
        }
    }

    fn expr(&mut self) -> Result<FilterExpr, SparqlError> {
        let mut lhs = self.expr_and()?;
        while matches!(self.peek(), Some(Tok::OrOr)) {
            self.bump();
            let rhs = self.expr_and()?;
            lhs = FilterExpr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn expr_and(&mut self) -> Result<FilterExpr, SparqlError> {
        let mut lhs = self.expr_unary()?;
        while matches!(self.peek(), Some(Tok::AndAnd)) {
            self.bump();
            let rhs = self.expr_unary()?;
            lhs = FilterExpr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn expr_unary(&mut self) -> Result<FilterExpr, SparqlError> {
        if matches!(self.peek(), Some(Tok::Bang)) {
            self.bump();
            let inner = self.expr_unary()?;
            return Ok(FilterExpr::Not(Box::new(inner)));
        }
        self.expr_primary()
    }

    fn expr_primary(&mut self) -> Result<FilterExpr, SparqlError> {
        match self.peek() {
            Some(Tok::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen, "')'")?;
                Ok(e)
            }
            Some(Tok::Keyword(Kw::Bound)) => {
                self.bump();
                self.expect(Tok::LParen, "'(' after bound")?;
                let Some(Spanned {
                    tok: Tok::Var(name),
                    ..
                }) = self.bump()
                else {
                    return Err(self.err_here("bound() takes a variable"));
                };
                self.expect(Tok::RParen, "')' after the bound variable")?;
                Ok(FilterExpr::Bound(Variable::new(name)))
            }
            _ => {
                let lhs = self.operand()?;
                let op = match self.peek() {
                    Some(Tok::Eq) => CmpOp::Eq,
                    Some(Tok::Ne) => CmpOp::Ne,
                    Some(Tok::Lt) => CmpOp::Lt,
                    Some(Tok::Le) => CmpOp::Le,
                    Some(Tok::Gt) => CmpOp::Gt,
                    Some(Tok::Ge) => CmpOp::Ge,
                    _ => {
                        return Err(
                            self.err_here("expected a comparison operator (=, !=, <, <=, >, >=)")
                        )
                    }
                };
                self.bump();
                let rhs = self.operand()?;
                Ok(FilterExpr::Compare(lhs, op, rhs))
            }
        }
    }

    fn operand(&mut self) -> Result<Operand, SparqlError> {
        match self.peek() {
            Some(Tok::Var(_)) => {
                let Some(Spanned {
                    tok: Tok::Var(name),
                    ..
                }) = self.bump()
                else {
                    unreachable!("peeked a variable");
                };
                Ok(Operand::Var(Variable::new(name)))
            }
            _ => {
                let tv = self.term_or_var("a comparison operand")?;
                match tv {
                    TermOrVar::Term(t) => Ok(Operand::Term(t)),
                    TermOrVar::Var(v) => Ok(Operand::Var(v)),
                }
            }
        }
    }

    /// Parses triple blocks (with `;` and `,` abbreviations) into `out`
    /// until the next structural token.
    fn triples_into(&mut self, out: &mut Vec<TriplePattern>) -> Result<(), SparqlError> {
        let subject = self.term_or_var("a subject")?;
        'predicates: loop {
            let predicate = self.term_or_var("a predicate")?;
            loop {
                let object = self.term_or_var("an object")?;
                out.push(TriplePattern::new(
                    subject.clone(),
                    predicate.clone(),
                    object,
                ));
                if matches!(self.peek(), Some(Tok::Comma)) {
                    self.bump();
                    continue;
                }
                break;
            }
            match self.peek() {
                Some(Tok::Semi) => {
                    self.bump();
                    // A dangling ';' before a structural token ends the
                    // subject block (Turtle permits the trailing ';').
                    if !matches!(
                        self.peek(),
                        Some(Tok::Var(_)) | Some(Tok::Iri(_)) | Some(Tok::PName(_)) | Some(Tok::A)
                    ) {
                        break 'predicates;
                    }
                    continue 'predicates;
                }
                Some(Tok::Dot) => {
                    self.bump();
                    break 'predicates;
                }
                _ => break 'predicates,
            }
        }
        Ok(())
    }

    fn term_or_var(&mut self, what: &str) -> Result<TermOrVar, SparqlError> {
        let err = self.err_here(format!("expected {what}"));
        match self.bump() {
            Some(Spanned {
                tok: Tok::Var(name),
                ..
            }) => Ok(TermOrVar::Var(Variable::new(name))),
            Some(Spanned {
                tok: Tok::Iri(iri), ..
            }) => Ok(TermOrVar::Term(self.resolve_iri(iri))),
            Some(Spanned {
                tok: Tok::PName(name),
                span,
                line,
                col,
            }) => match self.prefixes.expand(&name) {
                Ok(iri) => Ok(TermOrVar::Term(Term::Iri(iri))),
                Err(_) => Err(SparqlError {
                    message: format!("unknown prefix in {name:?}"),
                    span,
                    line,
                    col,
                }),
            },
            Some(Spanned { tok: Tok::A, .. }) => Ok(TermOrVar::iri(vocab::RDF_TYPE)),
            Some(Spanned {
                tok: Tok::Integer(num),
                ..
            }) => Ok(TermOrVar::Term(Term::Literal(Literal::typed(
                num,
                Iri::new(format!("{}integer", vocab::XSD_NS)),
            )))),
            Some(Spanned {
                tok: Tok::Keyword(Kw::True),
                ..
            }) => Ok(TermOrVar::Term(Term::Literal(Literal::typed(
                "true",
                Iri::new(format!("{}boolean", vocab::XSD_NS)),
            )))),
            Some(Spanned {
                tok: Tok::Keyword(Kw::False),
                ..
            }) => Ok(TermOrVar::Term(Term::Literal(Literal::typed(
                "false",
                Iri::new(format!("{}boolean", vocab::XSD_NS)),
            )))),
            Some(Spanned {
                tok:
                    Tok::Literal {
                        lexical,
                        lang,
                        datatype,
                    },
                ..
            }) => {
                let lit = match (lang, datatype) {
                    (Some(tag), _) => Literal::lang(lexical, tag),
                    (None, Some(dt)) => Literal::typed(lexical, Iri::new(dt)),
                    (None, None) => Literal::plain(lexical),
                };
                Ok(TermOrVar::Term(Term::Literal(lit)))
            }
            _ => Err(err),
        }
    }
}
