//! The SPARQL lexer: UTF-8 text to spanned tokens.
//!
//! Every token carries its byte span and line/column so the parser can
//! attach precise positions to [`super::SparqlError`]s. The lexer is
//! hand-written over `char_indices` — no external lexer generator —
//! and covers exactly the token inventory of the SELECT/ASK subset:
//! keywords, variables, IRIs, prefixed names, literals (plain,
//! language-tagged, datatyped), integers, punctuation and the FILTER
//! operator set.

use super::SparqlError;

/// A token kind. Keywords are folded to lower case at lex time.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Tok {
    /// A reserved word (`select`, `ask`, `optional`, …), lower-cased.
    Keyword(Kw),
    /// `?name` or `$name`.
    Var(String),
    /// `<absolute-or-relative-iri>` (angle brackets stripped).
    Iri(String),
    /// `prefix:local` — resolved against the prefix map by the parser.
    PName(String),
    /// A quoted literal with optional `@lang` or `^^<datatype>`.
    Literal {
        /// The unescaped lexical form.
        lexical: String,
        /// `@tag`, if present.
        lang: Option<String>,
        /// `^^<iri>`, if present.
        datatype: Option<String>,
    },
    /// A bare unsigned integer.
    Integer(String),
    /// The Turtle `a` shorthand for `rdf:type`.
    A,
    /// `*` (SELECT projection).
    Star,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
}

/// The reserved words of the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kw {
    Select,
    Ask,
    Where,
    Union,
    Optional,
    Filter,
    Bound,
    Distinct,
    Reduced,
    Order,
    By,
    Asc,
    Desc,
    Limit,
    Offset,
    Prefix,
    Base,
    True,
    False,
}

fn keyword(word: &str) -> Option<Kw> {
    Some(match word.to_ascii_lowercase().as_str() {
        "select" => Kw::Select,
        "ask" => Kw::Ask,
        "where" => Kw::Where,
        "union" => Kw::Union,
        "optional" => Kw::Optional,
        "filter" => Kw::Filter,
        "bound" => Kw::Bound,
        "distinct" => Kw::Distinct,
        "reduced" => Kw::Reduced,
        "order" => Kw::Order,
        "by" => Kw::By,
        "asc" => Kw::Asc,
        "desc" => Kw::Desc,
        "limit" => Kw::Limit,
        "offset" => Kw::Offset,
        "prefix" => Kw::Prefix,
        "base" => Kw::Base,
        "true" => Kw::True,
        "false" => Kw::False,
        _ => return None,
    })
}

/// A token plus its source position.
#[derive(Debug, Clone)]
pub(crate) struct Spanned {
    pub tok: Tok,
    /// Half-open byte range in the source text.
    pub span: (usize, usize),
    /// 1-based source line of the first byte.
    pub line: usize,
    /// 1-based source column (in characters) of the first byte.
    pub col: usize,
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, start: usize, line: usize, col: usize, msg: impl Into<String>) -> SparqlError {
        SparqlError {
            message: msg.into(),
            span: (start, self.pos.max(start + 1).min(self.src.len().max(1))),
            line,
            col,
        }
    }

    /// `true` iff the `<` at the current position opens an IRI: a `>`
    /// appears before any whitespace, quote or brace. Otherwise the `<`
    /// is the less-than operator of a FILTER expression.
    fn lt_is_iri(&self) -> bool {
        for &b in &self.bytes[self.pos + 1..] {
            match b {
                b'>' => return true,
                b' ' | b'\t' | b'\r' | b'\n' | b'"' | b'{' | b'}' | b'<' => return false,
                _ => {}
            }
        }
        false
    }

    fn name(&mut self) -> String {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' || c == '-' || c == ':' || c == '.' {
                // A trailing '.' is a triple terminator, not part of a
                // name (`e:s.` means `e:s .`).
                if c == '.' {
                    let after = {
                        let mut it = self.src[self.pos..].chars();
                        it.next();
                        it.next()
                    };
                    if !after.is_some_and(|a| a.is_alphanumeric() || a == '_') {
                        break;
                    }
                }
                self.bump();
            } else {
                break;
            }
        }
        self.src[start..self.pos].to_string()
    }
}

/// Tokenises `src`, reporting the first lexical error with its span.
pub(crate) fn tokenize(src: &str) -> Result<Vec<Spanned>, SparqlError> {
    let mut lx = Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    loop {
        // Skip whitespace and comments.
        loop {
            match lx.peek() {
                Some(c) if c.is_whitespace() => {
                    lx.bump();
                }
                Some('#') => {
                    while let Some(c) = lx.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
        let (start, line, col) = (lx.pos, lx.line, lx.col);
        let Some(c) = lx.peek() else { break };
        let tok = match c {
            '{' => {
                lx.bump();
                Tok::LBrace
            }
            '}' => {
                lx.bump();
                Tok::RBrace
            }
            '(' => {
                lx.bump();
                Tok::LParen
            }
            ')' => {
                lx.bump();
                Tok::RParen
            }
            '.' => {
                lx.bump();
                Tok::Dot
            }
            ';' => {
                lx.bump();
                Tok::Semi
            }
            ',' => {
                lx.bump();
                Tok::Comma
            }
            '*' => {
                lx.bump();
                Tok::Star
            }
            '=' => {
                lx.bump();
                Tok::Eq
            }
            '!' => {
                lx.bump();
                if lx.peek() == Some('=') {
                    lx.bump();
                    Tok::Ne
                } else {
                    Tok::Bang
                }
            }
            '&' => {
                lx.bump();
                if lx.peek() == Some('&') {
                    lx.bump();
                    Tok::AndAnd
                } else {
                    return Err(lx.err(start, line, col, "expected '&&'"));
                }
            }
            '|' => {
                lx.bump();
                if lx.peek() == Some('|') {
                    lx.bump();
                    Tok::OrOr
                } else {
                    return Err(lx.err(start, line, col, "expected '||'"));
                }
            }
            '>' => {
                lx.bump();
                if lx.peek() == Some('=') {
                    lx.bump();
                    Tok::Ge
                } else {
                    Tok::Gt
                }
            }
            '<' => {
                if lx.lt_is_iri() {
                    lx.bump();
                    let iri_start = lx.pos;
                    while lx.peek() != Some('>') {
                        lx.bump();
                    }
                    let iri = lx.src[iri_start..lx.pos].to_string();
                    lx.bump();
                    Tok::Iri(iri)
                } else {
                    lx.bump();
                    if lx.peek() == Some('=') {
                        lx.bump();
                        Tok::Le
                    } else {
                        Tok::Lt
                    }
                }
            }
            '?' | '$' => {
                lx.bump();
                let name = lx.name();
                if name.is_empty() {
                    return Err(lx.err(start, line, col, "empty variable name"));
                }
                Tok::Var(name)
            }
            '"' => {
                lx.bump();
                let mut lexical = String::new();
                loop {
                    match lx.bump() {
                        Some('"') => break,
                        Some('\\') => match lx.bump() {
                            Some('"') => lexical.push('"'),
                            Some('\\') => lexical.push('\\'),
                            Some('n') => lexical.push('\n'),
                            Some('t') => lexical.push('\t'),
                            other => {
                                return Err(lx.err(
                                    start,
                                    line,
                                    col,
                                    format!("unsupported escape \\{}", other.unwrap_or(' ')),
                                ))
                            }
                        },
                        Some('\n') | None => {
                            return Err(lx.err(start, line, col, "unterminated string literal"))
                        }
                        Some(ch) => lexical.push(ch),
                    }
                }
                let mut lang = None;
                let mut datatype = None;
                if lx.peek() == Some('@') {
                    lx.bump();
                    let tag = lx.name();
                    if tag.is_empty() {
                        return Err(lx.err(start, line, col, "empty language tag"));
                    }
                    lang = Some(tag);
                } else if lx.peek() == Some('^') {
                    lx.bump();
                    if lx.bump() != Some('^') {
                        return Err(lx.err(start, line, col, "expected '^^' before datatype"));
                    }
                    if lx.peek() != Some('<') {
                        return Err(lx.err(
                            start,
                            line,
                            col,
                            "datatype must be a full IRI in angle brackets",
                        ));
                    }
                    lx.bump();
                    let dt_start = lx.pos;
                    loop {
                        match lx.peek() {
                            Some('>') => break,
                            Some('\n') | None => {
                                return Err(lx.err(start, line, col, "unterminated datatype IRI"))
                            }
                            _ => {
                                lx.bump();
                            }
                        }
                    }
                    datatype = Some(lx.src[dt_start..lx.pos].to_string());
                    lx.bump();
                }
                Tok::Literal {
                    lexical,
                    lang,
                    datatype,
                }
            }
            d if d.is_ascii_digit() => {
                let num_start = lx.pos;
                while lx.peek().is_some_and(|c| c.is_ascii_digit()) {
                    lx.bump();
                }
                Tok::Integer(lx.src[num_start..lx.pos].to_string())
            }
            c if c.is_alphanumeric() || c == '_' || c == ':' => {
                let word = lx.name();
                if word == "a" {
                    Tok::A
                } else if let Some(kw) = keyword(&word) {
                    Tok::Keyword(kw)
                } else if word.contains(':') {
                    Tok::PName(word)
                } else {
                    return Err(lx.err(
                        start,
                        line,
                        col,
                        format!("unknown keyword or bare name {word:?}"),
                    ));
                }
            }
            other => {
                lx.bump();
                return Err(lx.err(start, line, col, format!("unexpected character {other:?}")));
            }
        };
        out.push(Spanned {
            tok,
            span: (start, lx.pos),
            line,
            col,
        });
    }
    Ok(out)
}
