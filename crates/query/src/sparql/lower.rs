//! Lowering: the parsed SPARQL AST to id-level-executable conjunctive
//! plans plus a term-level assembly recipe.
//!
//! The engine underneath evaluates conjunctive queries (and unions of
//! them) — that is the whole contract of the prepare/execute pipeline,
//! the plan cache, the rewriter and the federated routes. Lowering
//! therefore reduces a SPARQL query to a list of plain
//! [`GraphPatternQuery`]s:
//!
//! * each UNION **branch** (one alternative picked from every UNION
//!   block, joined with the base BGP) contributes one **base CQ**;
//! * each OPTIONAL block contributes one **extended CQ** per branch —
//!   the branch BGP conjoined with the optional BGP, so its rows are
//!   exactly the successful extensions of base rows;
//! * FILTERs, the left-join merge, projection, DISTINCT, ORDER BY and
//!   LIMIT/OFFSET are applied afterwards at the term level by
//!   [`LoweredSparql::assemble`], identically on every route.
//!
//! The head of each CQ is minimised to the variables actually needed
//! downstream (projection ∪ filters ∪ sort keys ∪ join vars), so the
//! underlying plans stay as narrow as hand-written ones.

use super::exec;
use super::parse::{FilterExpr, OrderKey, Projection, QueryForm, SimpleGroup, SparqlQuery};
use crate::eval::Semantics;
use crate::pattern::{GraphPattern, GraphPatternQuery, TriplePattern, Variable};
use rps_rdf::{Graph, Term};
use std::collections::BTreeSet;

/// A SPARQL query lowered to conjunctive plans plus the term-level
/// assembly recipe. Obtain one with [`SparqlQuery::lower`]; feed the
/// per-CQ answer sets (in [`LoweredSparql::queries`] order) to
/// [`LoweredSparql::assemble`].
#[derive(Debug, Clone)]
pub struct LoweredSparql {
    /// `true` for ASK.
    pub(crate) ask: bool,
    /// The projection, in output-column order (empty for ASK).
    pub(crate) projection: Vec<Variable>,
    /// The lowered UNION branches.
    pub(crate) branches: Vec<LoweredBranch>,
    /// ORDER BY keys.
    pub(crate) order_by: Vec<OrderKey>,
    /// `LIMIT`.
    pub(crate) limit: Option<usize>,
    /// `OFFSET`.
    pub(crate) offset: Option<usize>,
}

/// One UNION branch: a base CQ, its optional extensions, and the
/// filters evaluated on merged rows.
#[derive(Debug, Clone)]
pub(crate) struct LoweredBranch {
    /// The base conjunctive query.
    pub base: GraphPatternQuery,
    /// One extended CQ per OPTIONAL block, in source order.
    pub optionals: Vec<LoweredOptional>,
    /// Branch-level filters (group filters plus the picked
    /// alternatives' filters), applied to merged rows.
    pub filters: Vec<FilterExpr>,
}

/// One OPTIONAL block of a branch.
#[derive(Debug, Clone)]
pub(crate) struct LoweredOptional {
    /// The branch BGP conjoined with the optional BGP.
    pub query: GraphPatternQuery,
    /// Filters scoped to the OPTIONAL block, applied to extension rows
    /// before the left join.
    pub filters: Vec<FilterExpr>,
}

impl SparqlQuery {
    /// Lowers the query to conjunctive plans. Infallible: every
    /// restriction of the subset is enforced by the parser, so a parsed
    /// query always lowers.
    pub fn lower(&self) -> LoweredSparql {
        // SELECT * projects every pattern variable in first-occurrence
        // order (scanning base, then unions, then optionals, matching
        // the serialised query left to right).
        let star_vars = || {
            let mut seen = BTreeSet::new();
            let mut out = Vec::new();
            let mut scan = |triples: &[TriplePattern]| {
                for t in triples {
                    for v in t.vars() {
                        if seen.insert(v.clone()) {
                            out.push(v.clone());
                        }
                    }
                }
            };
            scan(&self.pattern.triples);
            for block in &self.pattern.unions {
                for alt in block {
                    scan(&alt.triples);
                }
            }
            for opt in &self.pattern.optionals {
                scan(&opt.triples);
            }
            out
        };
        let (ask, projection) = match &self.form {
            QueryForm::Ask => (true, Vec::new()),
            QueryForm::Select { projection, .. } => match projection {
                Projection::Vars(vars) => (false, vars.clone()),
                Projection::Star => (false, star_vars()),
            },
        };

        // Variables needed beyond each branch's own evaluation:
        // projection columns, sort keys, and every filter mention
        // (group-level and optional-level — optional filters force the
        // base head to keep the base variables they constrain, so the
        // left join never collapses rows the filter distinguishes).
        let mut needed: BTreeSet<Variable> = projection.iter().cloned().collect();
        needed.extend(self.order_by.iter().map(|k| k.var.clone()));
        let mut filter_vars = Vec::new();
        for f in &self.pattern.filters {
            f.collect_vars(&mut filter_vars);
        }
        for opt in &self.pattern.optionals {
            for f in &opt.filters {
                f.collect_vars(&mut filter_vars);
            }
        }
        for block in &self.pattern.unions {
            for alt in block {
                for f in &alt.filters {
                    f.collect_vars(&mut filter_vars);
                }
            }
        }
        needed.extend(filter_vars);

        // Left-join keys: a variable shared between an OPTIONAL block
        // and the pattern it extends (the base BGP, any UNION
        // alternative, or another OPTIONAL block) is the join variable
        // of that left join. It must survive head minimisation even
        // when nothing downstream mentions it — otherwise distinct
        // base solutions that differ only on the key collapse before
        // the join, and unmatched-OPTIONAL rows are silently lost.
        let triple_vars = |triples: &[TriplePattern]| -> BTreeSet<Variable> {
            triples.iter().flat_map(|t| t.vars().cloned()).collect()
        };
        let mut base_side = triple_vars(&self.pattern.triples);
        for block in &self.pattern.unions {
            for alt in block {
                base_side.extend(triple_vars(&alt.triples));
            }
        }
        let opt_vars: Vec<BTreeSet<Variable>> = self
            .pattern
            .optionals
            .iter()
            .map(|opt| triple_vars(&opt.triples))
            .collect();
        for (i, vars) in opt_vars.iter().enumerate() {
            for v in vars {
                let shared = base_side.contains(v)
                    || opt_vars
                        .iter()
                        .enumerate()
                        .any(|(j, other)| j != i && other.contains(v));
                if shared {
                    needed.insert(v.clone());
                }
            }
        }

        // Cross product of one alternative per UNION block.
        let mut combos: Vec<Vec<&SimpleGroup>> = vec![Vec::new()];
        for block in &self.pattern.unions {
            let mut next = Vec::with_capacity(combos.len() * block.len());
            for combo in &combos {
                for alt in block {
                    let mut c = combo.clone();
                    c.push(alt);
                    next.push(c);
                }
            }
            combos = next;
        }

        let head_of = |pattern: &GraphPattern, needed: &BTreeSet<Variable>| -> Vec<Variable> {
            let present = pattern.vars();
            present
                .iter()
                .filter(|v| needed.contains(v))
                .cloned()
                .collect()
        };

        let mut branches = Vec::with_capacity(combos.len());
        for combo in combos {
            let mut base_pattern = GraphPattern::from_patterns(self.pattern.triples.clone());
            let mut filters = self.pattern.filters.clone();
            for alt in &combo {
                for t in &alt.triples {
                    base_pattern.push(t.clone());
                }
                filters.extend(alt.filters.iter().cloned());
            }
            let base_head = head_of(&base_pattern, &needed);
            let base = GraphPatternQuery::new(base_head.clone(), base_pattern.clone());
            let optionals = self
                .pattern
                .optionals
                .iter()
                .map(|opt| {
                    let mut ext = base_pattern.clone();
                    for t in &opt.triples {
                        ext.push(t.clone());
                    }
                    // The extension head carries the full base head (the
                    // left-join key) plus whatever optional variables are
                    // needed downstream.
                    let mut head: BTreeSet<Variable> = base_head.iter().cloned().collect();
                    head.extend(head_of(&ext, &needed));
                    LoweredOptional {
                        query: GraphPatternQuery::new(head.into_iter().collect(), ext),
                        filters: opt.filters.clone(),
                    }
                })
                .collect();
            branches.push(LoweredBranch {
                base,
                optionals,
                filters,
            });
        }

        LoweredSparql {
            ask,
            projection,
            branches,
            order_by: self.order_by.clone(),
            limit: self.limit,
            offset: self.offset,
        }
    }
}

impl LoweredSparql {
    /// The conjunctive queries to evaluate, in the fixed order
    /// [`LoweredSparql::assemble`] expects: for each branch, its base
    /// CQ followed by its optional-extension CQs.
    pub fn queries(&self) -> Vec<&GraphPatternQuery> {
        let mut out = Vec::new();
        for b in &self.branches {
            out.push(&b.base);
            for o in &b.optionals {
                out.push(&o.query);
            }
        }
        out
    }

    /// `true` for ASK queries.
    pub fn is_ask(&self) -> bool {
        self.ask
    }

    /// The output column names, in order (empty for ASK).
    pub fn columns(&self) -> Vec<String> {
        self.projection
            .iter()
            .map(|v| v.name().to_string())
            .collect()
    }

    /// Assembles the final result from the per-CQ answer sets, which
    /// must line up with [`LoweredSparql::queries`]. This is the entire
    /// non-conjunctive tail of SPARQL evaluation — left joins, filters,
    /// projection, DISTINCT, ORDER BY, LIMIT/OFFSET — and it is shared
    /// verbatim by every execution route, which is what makes the
    /// routes answer byte-identically.
    ///
    /// # Panics
    ///
    /// Panics if `answers.len()` does not match the query count — the
    /// caller zips its own execution results and a mismatch is a bug,
    /// not an input error.
    pub fn assemble(&self, answers: &[BTreeSet<Vec<Term>>]) -> SparqlResult {
        exec::assemble(self, answers)
    }

    /// Evaluates the query directly against a single graph — the
    /// reference implementation used by the oracle tests, and a
    /// convenience for callers below the session layer.
    pub fn evaluate(&self, graph: &Graph, semantics: Semantics) -> SparqlResult {
        let answers: Vec<BTreeSet<Vec<Term>>> = self
            .queries()
            .into_iter()
            .map(|q| crate::eval::evaluate_query(graph, q, semantics))
            .collect();
        self.assemble(&answers)
    }
}

/// The result of a SPARQL query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparqlResult {
    /// SELECT: a solution table.
    Rows(SparqlRows),
    /// ASK: a truth value.
    Boolean(bool),
}

impl SparqlResult {
    /// The solution table, if this is a SELECT result.
    pub fn rows(&self) -> Option<&SparqlRows> {
        match self {
            SparqlResult::Rows(r) => Some(r),
            SparqlResult::Boolean(_) => None,
        }
    }

    /// The truth value, if this is an ASK result.
    pub fn boolean(&self) -> Option<bool> {
        match self {
            SparqlResult::Boolean(b) => Some(*b),
            SparqlResult::Rows(_) => None,
        }
    }
}

/// A SELECT solution table. Row order is the ORDER BY order when one
/// was given, and the deterministic canonical order (ascending by
/// column-wise term comparison, unbound first) otherwise — never the
/// accidental order of execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparqlRows {
    /// Column names, without the `?` sigil.
    pub vars: Vec<String>,
    /// Rows; `None` is an unbound column (an OPTIONAL that did not
    /// match, or a projected variable absent from the matched branch).
    pub rows: Vec<Vec<Option<Term>>>,
}
