//! A parser for the conjunctive SPARQL subset the paper uses.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query     := prologue ( select | ask )
//! prologue  := ( PREFIX pname: <iri> )*
//! select    := SELECT ?v+ [WHERE] ggp
//! ask       := ASK ggp
//! ggp       := '{' ( group (UNION group)* | triples ) '}'
//! group     := '{' triples '}'
//! triples   := triple ( '.' triple? | ';' pred-obj | ',' obj )*
//! ```
//!
//! This covers exactly what the paper needs: graph pattern queries
//! ("conjunctive SPARQL", Section 2.1) and the UNION form that the
//! Section 4 rewriting produces (Listing 2).

use crate::algebra::{Query, UnionQuery};
use crate::pattern::{GraphPattern, TermOrVar, TriplePattern, Variable};
use rps_rdf::namespace::vocab;
use rps_rdf::{Iri, Literal, PrefixMap, RdfError, Term};

/// Parses a SPARQL-subset query, resolving prefixed names first against
/// any `PREFIX` declarations in the query and then against `base`.
pub fn parse_query(input: &str, base: &PrefixMap) -> Result<Query, RdfError> {
    let tokens = tokenize(input)?;
    let mut p = QueryParser {
        tokens,
        pos: 0,
        prefixes: base.clone(),
    };
    p.query()
}

/// Serialises a query back to SPARQL text, shrinking IRIs with `prefixes`.
pub fn to_sparql(query: &Query, prefixes: &PrefixMap) -> String {
    let render_term = |t: &Term| -> String {
        if let Term::Iri(iri) = t {
            if let Some(s) = prefixes.shrink(iri) {
                return s;
            }
        }
        t.to_string()
    };
    let render_tv = |tv: &TermOrVar| -> String {
        match tv {
            TermOrVar::Term(t) => render_term(t),
            TermOrVar::Var(v) => v.to_string(),
        }
    };
    let render_branch = |gp: &GraphPattern| -> String {
        let pats: Vec<String> = gp
            .patterns()
            .iter()
            .map(|p| {
                format!(
                    "{} {} {}",
                    render_tv(&p.s),
                    render_tv(&p.p),
                    render_tv(&p.o)
                )
            })
            .collect();
        format!("{{ {} }}", pats.join(" . "))
    };
    let render_union = |u: &UnionQuery| -> String {
        if u.branches().len() == 1 {
            render_branch(&u.branches()[0])
        } else {
            let branches: Vec<String> = u.branches().iter().map(render_branch).collect();
            format!("{{ {} }}", branches.join(" UNION "))
        }
    };
    match query {
        Query::Select(u) => {
            let vars: Vec<String> = u.free_vars().iter().map(|v| v.to_string()).collect();
            format!("SELECT {} WHERE {}", vars.join(" "), render_union(u))
        }
        Query::Ask(u) => format!("ASK {}", render_union(u)),
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Keyword(String),
    Var(String),
    Iri(String),
    PName(String),
    Literal {
        lexical: String,
        lang: Option<String>,
        datatype: Option<String>,
    },
    Integer(String),
    A,
    LBrace,
    RBrace,
    Dot,
    Semi,
    Comma,
}

#[derive(Debug, Clone)]
struct Sp {
    tok: Tok,
    line: usize,
}

const KEYWORDS: &[&str] = &["select", "ask", "where", "union", "prefix"];

fn tokenize(input: &str) -> Result<Vec<Sp>, RdfError> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    let mut line = 1usize;
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            ch if ch.is_whitespace() => {
                chars.next();
            }
            '#' => {
                for ch in chars.by_ref() {
                    if ch == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '{' => {
                chars.next();
                out.push(Sp {
                    tok: Tok::LBrace,
                    line,
                });
            }
            '}' => {
                chars.next();
                out.push(Sp {
                    tok: Tok::RBrace,
                    line,
                });
            }
            '.' => {
                chars.next();
                out.push(Sp {
                    tok: Tok::Dot,
                    line,
                });
            }
            ';' => {
                chars.next();
                out.push(Sp {
                    tok: Tok::Semi,
                    line,
                });
            }
            ',' => {
                chars.next();
                out.push(Sp {
                    tok: Tok::Comma,
                    line,
                });
            }
            '?' | '$' => {
                chars.next();
                let name = read_name(&mut chars);
                if name.is_empty() {
                    return Err(RdfError::parse(line, "empty variable name"));
                }
                out.push(Sp {
                    tok: Tok::Var(name),
                    line,
                });
            }
            '<' => {
                chars.next();
                let mut iri = String::new();
                loop {
                    match chars.next() {
                        Some('>') => break,
                        Some('\n') | None => return Err(RdfError::parse(line, "unterminated IRI")),
                        Some(ch) => iri.push(ch),
                    }
                }
                out.push(Sp {
                    tok: Tok::Iri(iri),
                    line,
                });
            }
            '"' => {
                chars.next();
                let mut lex = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some('"') => lex.push('"'),
                            Some('\\') => lex.push('\\'),
                            Some('n') => lex.push('\n'),
                            Some('t') => lex.push('\t'),
                            other => {
                                return Err(RdfError::parse(
                                    line,
                                    format!("bad escape \\{other:?}"),
                                ))
                            }
                        },
                        Some('\n') | None => {
                            return Err(RdfError::parse(line, "unterminated literal"))
                        }
                        Some(ch) => lex.push(ch),
                    }
                }
                let mut lang = None;
                let mut datatype = None;
                if chars.peek() == Some(&'@') {
                    chars.next();
                    let tag = read_name(&mut chars);
                    if tag.is_empty() {
                        return Err(RdfError::parse(line, "empty language tag"));
                    }
                    lang = Some(tag);
                } else if chars.peek() == Some(&'^') {
                    chars.next();
                    if chars.next() != Some('^') {
                        return Err(RdfError::parse(line, "expected ^^"));
                    }
                    if chars.peek() == Some(&'<') {
                        chars.next();
                        let mut iri = String::new();
                        loop {
                            match chars.next() {
                                Some('>') => break,
                                Some('\n') | None => {
                                    return Err(RdfError::parse(line, "unterminated datatype"))
                                }
                                Some(ch) => iri.push(ch),
                            }
                        }
                        datatype = Some(iri);
                    } else {
                        return Err(RdfError::parse(
                            line,
                            "prefixed datatype names not supported in queries",
                        ));
                    }
                }
                out.push(Sp {
                    tok: Tok::Literal {
                        lexical: lex,
                        lang,
                        datatype,
                    },
                    line,
                });
            }
            ch if ch.is_ascii_digit() => {
                let mut num = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        num.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Sp {
                    tok: Tok::Integer(num),
                    line,
                });
            }
            _ => {
                let name = read_name(&mut chars);
                if name.is_empty() {
                    return Err(RdfError::parse(line, format!("unexpected character {c:?}")));
                }
                let lower = name.to_ascii_lowercase();
                if KEYWORDS.contains(&lower.as_str()) {
                    out.push(Sp {
                        tok: Tok::Keyword(lower),
                        line,
                    });
                } else if name == "a" {
                    out.push(Sp { tok: Tok::A, line });
                } else {
                    out.push(Sp {
                        tok: Tok::PName(name),
                        line,
                    });
                }
            }
        }
    }
    Ok(out)
}

fn read_name(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> String {
    let mut name = String::new();
    while let Some(&ch) = chars.peek() {
        if ch.is_alphanumeric() || ch == ':' || ch == '_' || ch == '-' {
            name.push(ch);
            chars.next();
        } else {
            break;
        }
    }
    name
}

struct QueryParser {
    tokens: Vec<Sp>,
    pos: usize,
    prefixes: PrefixMap,
}

impl QueryParser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|s| &s.tok)
    }

    fn line(&self) -> usize {
        self.tokens.get(self.pos).map(|s| s.line).unwrap_or(0)
    }

    fn next(&mut self) -> Option<Sp> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn query(&mut self) -> Result<Query, RdfError> {
        // Prologue.
        while matches!(self.peek(), Some(Tok::Keyword(k)) if k == "prefix") {
            self.next();
            let line = self.line();
            let Some(Sp {
                tok: Tok::PName(pname),
                ..
            }) = self.next()
            else {
                return Err(RdfError::parse(line, "expected prefix name"));
            };
            let prefix = pname
                .strip_suffix(':')
                .ok_or_else(|| RdfError::parse(line, "prefix must end with ':'"))?;
            let Some(Sp {
                tok: Tok::Iri(ns), ..
            }) = self.next()
            else {
                return Err(RdfError::parse(line, "expected namespace IRI"));
            };
            self.prefixes.insert(prefix, ns);
        }
        let line = self.line();
        match self.next() {
            Some(Sp {
                tok: Tok::Keyword(k),
                ..
            }) if k == "select" => {
                let mut vars = Vec::new();
                while let Some(Tok::Var(_)) = self.peek() {
                    if let Some(Sp {
                        tok: Tok::Var(name),
                        ..
                    }) = self.next()
                    {
                        vars.push(Variable::new(name));
                    }
                }
                if vars.is_empty() {
                    return Err(RdfError::parse(line, "SELECT needs at least one variable"));
                }
                if matches!(self.peek(), Some(Tok::Keyword(k)) if k == "where") {
                    self.next();
                }
                let branches = self.group_graph_pattern()?;
                self.end()?;
                Ok(Query::Select(UnionQuery::new(vars, branches)))
            }
            Some(Sp {
                tok: Tok::Keyword(k),
                ..
            }) if k == "ask" => {
                let branches = self.group_graph_pattern()?;
                self.end()?;
                Ok(Query::Ask(UnionQuery::new(Vec::new(), branches)))
            }
            _ => Err(RdfError::parse(line, "expected SELECT or ASK")),
        }
    }

    fn end(&mut self) -> Result<(), RdfError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(RdfError::parse(self.line(), "trailing tokens after query"))
        }
    }

    /// Parses `'{' ... '}'`, returning the UNION branches. The body is
    /// either plain triples (one branch) or `group (UNION group)*`.
    fn group_graph_pattern(&mut self) -> Result<Vec<GraphPattern>, RdfError> {
        let line = self.line();
        match self.next() {
            Some(Sp {
                tok: Tok::LBrace, ..
            }) => {}
            _ => return Err(RdfError::parse(line, "expected '{'")),
        }
        if matches!(self.peek(), Some(Tok::LBrace)) {
            // Union of groups.
            let mut branches = Vec::new();
            loop {
                // Each group may itself be `{ triples }` or a nested union;
                // we flatten nested unions into the branch list.
                let inner = self.group_graph_pattern()?;
                branches.extend(inner);
                if matches!(self.peek(), Some(Tok::Keyword(k)) if k == "union") {
                    self.next();
                    continue;
                }
                break;
            }
            let line = self.line();
            match self.next() {
                Some(Sp {
                    tok: Tok::RBrace, ..
                }) => Ok(branches),
                _ => Err(RdfError::parse(line, "expected '}' after UNION groups")),
            }
        } else {
            let gp = self.triples_block()?;
            let line = self.line();
            match self.next() {
                Some(Sp {
                    tok: Tok::RBrace, ..
                }) => Ok(vec![gp]),
                _ => Err(RdfError::parse(line, "expected '}'")),
            }
        }
    }

    /// Parses triples until (not consuming) the closing `'}'`.
    fn triples_block(&mut self) -> Result<GraphPattern, RdfError> {
        let mut gp = GraphPattern::new();
        loop {
            if matches!(self.peek(), Some(Tok::RBrace)) || self.peek().is_none() {
                return Ok(gp);
            }
            let subject = self.term_or_var()?;
            'predicates: loop {
                let predicate = self.term_or_var()?;
                loop {
                    let object = self.term_or_var()?;
                    gp.push(TriplePattern::new(
                        subject.clone(),
                        predicate.clone(),
                        object,
                    ));
                    match self.peek() {
                        Some(Tok::Comma) => {
                            self.next();
                        }
                        _ => break,
                    }
                }
                match self.peek() {
                    Some(Tok::Semi) => {
                        self.next();
                        if matches!(self.peek(), Some(Tok::RBrace) | Some(Tok::Dot)) {
                            break 'predicates;
                        }
                        continue 'predicates;
                    }
                    Some(Tok::Dot) => {
                        self.next();
                        break 'predicates;
                    }
                    Some(Tok::RBrace) | None => break 'predicates,
                    _ => {
                        return Err(RdfError::parse(
                            self.line(),
                            "expected '.', ';', ',' or '}' after triple",
                        ))
                    }
                }
            }
        }
    }

    fn term_or_var(&mut self) -> Result<TermOrVar, RdfError> {
        let line = self.line();
        match self.next() {
            Some(Sp {
                tok: Tok::Var(name),
                ..
            }) => Ok(TermOrVar::Var(Variable::new(name))),
            Some(Sp {
                tok: Tok::Iri(iri), ..
            }) => Ok(TermOrVar::Term(Term::Iri(Iri::new(iri)))),
            Some(Sp {
                tok: Tok::PName(name),
                ..
            }) => Ok(TermOrVar::Term(Term::Iri(self.prefixes.expand(&name)?))),
            Some(Sp { tok: Tok::A, .. }) => Ok(TermOrVar::iri(vocab::RDF_TYPE)),
            Some(Sp {
                tok: Tok::Integer(num),
                ..
            }) => Ok(TermOrVar::Term(Term::Literal(Literal::typed(
                num,
                Iri::new(format!("{}integer", vocab::XSD_NS)),
            )))),
            Some(Sp {
                tok:
                    Tok::Literal {
                        lexical,
                        lang,
                        datatype,
                    },
                ..
            }) => {
                let lit = match (lang, datatype) {
                    (Some(tag), _) => Literal::lang(lexical, tag),
                    (None, Some(dt)) => Literal::typed(lexical, Iri::new(dt)),
                    (None, None) => Literal::plain(lexical),
                };
                Ok(TermOrVar::Term(Term::Literal(lit)))
            }
            other => Err(RdfError::parse(
                other.map(|s| s.line).unwrap_or(line),
                "expected term or variable",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Semantics;

    fn base() -> PrefixMap {
        let mut m = PrefixMap::common();
        m.insert("e", "http://e/");
        m
    }

    #[test]
    fn parse_select() {
        let q = parse_query("SELECT ?x ?y WHERE { ?x e:p ?z . ?z e:q ?y }", &base()).unwrap();
        let Query::Select(u) = &q else {
            panic!("expected select")
        };
        assert_eq!(u.free_vars().len(), 2);
        assert_eq!(u.branches().len(), 1);
        assert_eq!(u.branches()[0].len(), 2);
    }

    #[test]
    fn parse_select_without_where() {
        let q = parse_query("SELECT ?x { ?x e:p ?y }", &base()).unwrap();
        assert!(matches!(q, Query::Select(_)));
    }

    #[test]
    fn parse_prefix_declaration() {
        let q = parse_query(
            "PREFIX db: <http://db/> SELECT ?x WHERE { db:Spiderman db:starring ?x }",
            &PrefixMap::new(),
        )
        .unwrap();
        let u = q.as_union();
        let c = u.branches()[0].constants();
        assert!(c.contains(&Term::iri("http://db/Spiderman")));
    }

    #[test]
    fn parse_ask_with_union() {
        let q = parse_query(
            "ASK {{ ?x e:p ?y } UNION { ?x e:q ?y } UNION { ?x e:r ?y }}",
            &base(),
        )
        .unwrap();
        let Query::Ask(u) = &q else {
            panic!("expected ask")
        };
        assert_eq!(u.branches().len(), 3);
    }

    #[test]
    fn parse_literals_and_integers() {
        let q = parse_query(
            "SELECT ?x WHERE { ?x e:age \"39\" . ?x e:year 2002 . ?x e:label \"f\"@en }",
            &base(),
        )
        .unwrap();
        let gp = &q.as_union().branches()[0];
        assert_eq!(gp.len(), 3);
        assert!(gp.constants().contains(&Term::literal("39")));
    }

    #[test]
    fn parse_semicolon_and_comma_groups() {
        let q = parse_query(
            "SELECT ?x WHERE { ?x e:p e:a , e:b ; e:q e:c . e:s e:r ?x }",
            &base(),
        )
        .unwrap();
        assert_eq!(q.as_union().branches()[0].len(), 4);
    }

    #[test]
    fn unknown_prefix_fails() {
        assert!(parse_query("SELECT ?x WHERE { ?x nope:p ?y }", &PrefixMap::new()).is_err());
    }

    #[test]
    fn trailing_garbage_fails() {
        assert!(parse_query("ASK { ?x e:p ?y } garbage", &base()).is_err());
    }

    #[test]
    fn roundtrip_through_to_sparql() {
        let src = "SELECT ?x ?y WHERE { ?x e:p ?z . ?z e:q ?y }";
        let q = parse_query(src, &base()).unwrap();
        let text = to_sparql(&q, &base());
        let q2 = parse_query(&text, &base()).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn roundtrip_union_ask() {
        let src = "ASK {{ ?x e:p ?y } UNION { ?x e:q ?y }}";
        let q = parse_query(src, &base()).unwrap();
        let text = to_sparql(&q, &base());
        let q2 = parse_query(&text, &base()).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn end_to_end_evaluation() {
        let g = rps_rdf::turtle::parse("@prefix e: <http://e/> .\ne:s e:p e:m .\ne:m e:q e:o .\n")
            .unwrap();
        let q = parse_query("SELECT ?x WHERE { e:s e:p ?m . ?m e:q ?x }", &base()).unwrap();
        let r = q.evaluate(&g, Semantics::Certain);
        let tuples = r.tuples().unwrap();
        assert_eq!(tuples.len(), 1);
        assert!(tuples.contains(&vec![Term::iri("http://e/o")]));
    }

    #[test]
    fn paper_example_query_parses() {
        // The exact query from Example 1 of the paper (modulo prefixes).
        let mut m = PrefixMap::new();
        m.insert("db1", "http://db1/");
        m.insert("", "http://vocab/");
        let q = parse_query(
            "SELECT ?x ?y WHERE { db1:Spiderman :starring ?z . ?z :artist ?x . ?x :age ?y }",
            &m,
        )
        .unwrap();
        assert_eq!(q.as_union().branches()[0].len(), 3);
    }
}
