//! # rps-query — graph pattern queries over RDF
//!
//! Implements the query language of Section 2.1 of *Peer-to-Peer Semantic
//! Integration of Linked Data*: graph patterns (conjunctions of triple
//! patterns over `(I ∪ L ∪ V) × (I ∪ V) × (I ∪ L ∪ V)`), graph pattern
//! queries `q(x̄) ← GP`, and the two result semantics `Q_D` (blank nodes
//! dropped — certain-answer eligible) and `Q*_D` (blank nodes kept — used
//! by the equivalence-mapping conditions of Definition 2).
//!
//! * [`pattern`] — [`Variable`], [`TermOrVar`], [`TriplePattern`],
//!   [`GraphPattern`], [`GraphPatternQuery`] (including the `subjQ` /
//!   `predQ` / `objQ` star queries of Section 2.3);
//! * [`binding`] — mappings `µ` and the compatible-join semantics;
//! * [`eval`] — the index-nested-loop evaluator with greedy join ordering;
//! * [`algebra`] — unions of conjunctive queries (the output language of
//!   the Section 4 rewriting), SELECT/ASK forms;
//! * [`parser`] — a parser for the conjunctive SPARQL subset plus UNION;
//! * [`sparql`] — the full SPARQL front-end (SELECT/ASK with OPTIONAL,
//!   UNION, FILTER, DISTINCT, ORDER BY, LIMIT/OFFSET), lowered onto the
//!   conjunctive engine.

#![warn(missing_docs)]

pub mod algebra;
pub mod binding;
pub mod eval;
pub mod parser;
pub mod pattern;
pub mod sparql;

pub use algebra::{Query, QueryResult, UnionQuery};
pub use binding::{join, Mapping};
pub use eval::{
    evaluate_boolean, evaluate_pattern, evaluate_query, evaluate_query_ids,
    evaluate_query_ids_delta, has_match, has_match_with, JoinOrder, PlanSlot, PreparedPattern,
    PreparedQueryIds, ScanPerm, Semantics,
};
pub use parser::{parse_query, to_sparql};
pub use pattern::{GraphPattern, GraphPatternQuery, TermOrVar, TriplePattern, Variable};
pub use sparql::{parse_sparql, LoweredSparql, SparqlError, SparqlQuery, SparqlResult, SparqlRows};
