//! Evaluation of graph patterns and graph pattern queries over a [`Graph`].
//!
//! Implements Definition 1 of the paper (the Pérez-et-al. join semantics)
//! with an index-nested-loop strategy: conjuncts are ordered greedily by
//! estimated selectivity, and each conjunct is matched by a range scan on
//! the store's permutation indexes ([`Graph::match_ids`] — under the
//! default sorted-run backend that scan is a k-way merge over the run
//! slices and the mutable tail, in the same key order as a B-tree
//! range, so the evaluator is storage-agnostic). Both result semantics
//! are provided:
//!
//! * `Q_D` (certain-answer eligible): tuples containing blank nodes are
//!   dropped;
//! * `Q*_D`: blank nodes are kept (used by Definition 2's equivalence-
//!   mapping conditions and by the chase).

use crate::binding::Mapping;
use crate::pattern::{GraphPattern, GraphPatternQuery, TermOrVar, Variable};
use rps_rdf::{Graph, GraphStats, IdTriple, TermId};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// How the planner orders a conjunction's atoms (and with it, which scan
/// permutation each atom ends up probing — see
/// [`PreparedQueryIds::planned_scans`]). Orthogonal to answer
/// correctness: every mode yields byte-identical answer sets (the
/// equivalence proptests pin this); only wall-clock time changes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum JoinOrder {
    /// Cost-based when the graph has a statistics snapshot
    /// ([`Graph::graph_stats`] — sealed graphs only), shape heuristic
    /// otherwise. The default.
    #[default]
    Auto,
    /// Selectivity estimation from the [`GraphStats`] snapshot
    /// (per-predicate counts refined by distinct-subject/object
    /// cardinalities). Falls back to the shape heuristic when the graph
    /// is unsealed and therefore has no snapshot.
    CostBased,
    /// The legacy smallest-first shape heuristic (predicate counts with
    /// fixed refinement divisors), retained as the oracle the
    /// cost-based path is differentially tested against.
    SmallestFirst,
}

/// Which tuples a query evaluation returns (Section 2.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Semantics {
    /// `Q_D`: only tuples over `I ∪ L` — blank-node tuples are dropped.
    Certain,
    /// `Q*_D`: tuples may contain blank nodes.
    Star,
}

/// One position of a compiled triple pattern.
#[derive(Clone, Copy, Debug)]
enum Slot {
    /// A constant, already resolved to a term id of the target graph.
    Const(TermId),
    /// A variable, identified by its dense index.
    Var(usize),
}

/// A graph pattern compiled against a specific graph's dictionary.
struct Compiled {
    /// One `[s, p, o]` slot triple per conjunct, in planner order.
    slots: Vec<[Slot; 3]>,
    /// Dense variable table; `Slot::Var` indexes into this.
    vars: Vec<Variable>,
    /// False if some constant does not occur in the graph at all, which
    /// makes the whole conjunction unsatisfiable.
    satisfiable: bool,
    /// The ordering mode the plan was compiled under (delta evaluation
    /// re-orders its non-pivot conjuncts under the same mode).
    order: JoinOrder,
    /// Source conjunct index per planner position — `source[i]` is the
    /// position the `i`-th planned conjunct held in the input pattern.
    source: Vec<usize>,
}

fn compile(graph: &Graph, gp: &GraphPattern, order: JoinOrder) -> Compiled {
    let mut vars: Vec<Variable> = Vec::new();
    let mut var_index = std::collections::HashMap::new();
    let mut slots = Vec::with_capacity(gp.len());
    let mut satisfiable = true;

    for pat in gp.patterns() {
        let mut slot = [Slot::Var(usize::MAX); 3];
        for (i, tv) in [&pat.s, &pat.p, &pat.o].into_iter().enumerate() {
            slot[i] = match tv {
                TermOrVar::Term(t) => match graph.term_id(t) {
                    Some(id) => Slot::Const(id),
                    None => {
                        satisfiable = false;
                        // Placeholder; never used because satisfiable=false.
                        Slot::Var(usize::MAX)
                    }
                },
                TermOrVar::Var(v) => {
                    let idx = *var_index.entry(v.clone()).or_insert_with(|| {
                        vars.push(v.clone());
                        vars.len() - 1
                    });
                    Slot::Var(idx)
                }
            };
        }
        slots.push(slot);
    }

    let source = if satisfiable {
        order_slots(graph, &mut slots, BTreeSet::new(), order)
    } else {
        (0..slots.len()).collect()
    };
    Compiled {
        slots,
        vars,
        satisfiable,
        order,
        source,
    }
}

/// Greedy join ordering: repeatedly pick the conjunct with the smallest
/// cardinality estimate given the variables bound so far (seeded with
/// `bound` — non-empty when ordering the non-pivot conjuncts of a delta
/// evaluation). The estimate is the stats-based selectivity model when
/// `order` resolves to the cost-based path (the graph is sealed and has
/// a [`GraphStats`] snapshot), the shape heuristic otherwise. Returns
/// the applied permutation: element `i` is the input position of the
/// conjunct now planned `i`-th.
fn order_slots(
    graph: &Graph,
    slots: &mut [[Slot; 3]],
    bound: BTreeSet<usize>,
    order: JoinOrder,
) -> Vec<usize> {
    let stats = match order {
        JoinOrder::SmallestFirst => None,
        JoinOrder::Auto | JoinOrder::CostBased => graph.graph_stats(),
    };
    let n = slots.len();
    let mut source: Vec<usize> = (0..n).collect();
    let mut bound = bound;
    for i in 0..n {
        let mut best = i;
        let mut best_cost = f64::INFINITY;
        for (j, slot) in slots.iter().enumerate().take(n).skip(i) {
            let cost = match &stats {
                Some(st) => stats_estimate(st, slot, &bound),
                None => shape_estimate(graph, slot, &bound),
            };
            if cost < best_cost {
                best_cost = cost;
                best = j;
            }
        }
        slots.swap(i, best);
        source.swap(i, best);
        for s in slots[i] {
            if let Slot::Var(v) = s {
                bound.insert(v);
            }
        }
    }
    source
}

/// `true` iff every position of the conjunct is a constant — a pure
/// membership probe, which both estimators order first unconditionally
/// (cost 0: one `contains` call can only shrink the search).
fn all_const(slot: &[Slot; 3]) -> bool {
    slot.iter().all(|s| matches!(s, Slot::Const(_)))
}

/// The legacy shape heuristic: predicate counts refined by fixed
/// divisors, sqrt guesses for subject/object anchors. Kept bit-for-bit
/// (apart from the all-constant fix) as the differential oracle for the
/// stats-based estimator.
fn shape_estimate(graph: &Graph, slot: &[Slot; 3], bound: &BTreeSet<usize>) -> f64 {
    if all_const(slot) {
        return 0.0;
    }
    let is_bound = |s: &Slot| match s {
        Slot::Const(_) => true,
        Slot::Var(v) => bound.contains(v),
    };
    let s_bound = is_bound(&slot[0]);
    let o_bound = is_bound(&slot[2]);
    let est: usize = match (&slot[1], s_bound, o_bound) {
        (_, true, true) if is_bound(&slot[1]) => 1,
        (Slot::Const(p), s, o) => {
            let base = graph.predicate_count(*p);
            match (s, o) {
                (true, true) => (base / 16).max(1),
                (true, false) | (false, true) => (base / 4).max(1),
                (false, false) => base.max(1),
            }
        }
        (Slot::Var(pv), s, o) => {
            let p_bound = bound.contains(pv);
            let n = graph.len().max(1);
            match (p_bound, s, o) {
                (_, true, true) => ((n as f64).sqrt() as usize).max(1),
                (true, _, _) => (n / 4).max(1),
                (false, true, false) | (false, false, true) => ((n as f64).sqrt() as usize).max(1),
                (false, false, false) => n,
            }
        }
    };
    est as f64
}

/// The stats-based selectivity estimate: start from the predicate's
/// triple count (or the graph total for a variable predicate) and divide
/// by the distinct-subject/object cardinality for each bound position —
/// the expected fan-out of the probe under a uniform-spread assumption.
/// Constants absent from the snapshot (unknown predicate, subject
/// outside the sealed SPO key bounds) estimate 0: scanning them first
/// terminates the join immediately.
fn stats_estimate(stats: &GraphStats, slot: &[Slot; 3], bound: &BTreeSet<usize>) -> f64 {
    if all_const(slot) {
        return 0.0;
    }
    let is_bound = |s: &Slot| match s {
        Slot::Const(_) => true,
        Slot::Var(v) => bound.contains(v),
    };
    let s_bound = is_bound(&slot[0]);
    let o_bound = is_bound(&slot[2]);
    if let Slot::Const(s) = slot[0] {
        if let Some((lo, hi)) = &stats.spo_bounds {
            if s < lo.s || s > hi.s {
                return 0.0;
            }
        }
    }
    match &slot[1] {
        Slot::Const(p) => {
            let Some(ps) = stats.predicate(*p) else {
                return 0.0;
            };
            let mut est = ps.count as f64;
            if s_bound {
                est /= ps.distinct_subjects.max(1) as f64;
            }
            if o_bound {
                est /= ps.distinct_objects.max(1) as f64;
            }
            est
        }
        Slot::Var(pv) => {
            let mut est = stats.triples.max(1) as f64;
            if bound.contains(pv) {
                est /= stats.predicates().max(1) as f64;
            }
            if s_bound {
                est /= stats.distinct_subjects.max(1) as f64;
            }
            if o_bound {
                est /= stats.distinct_objects.max(1) as f64;
            }
            est
        }
    }
}

/// Evaluates a graph pattern, returning the set of solution mappings
/// `⟦GP⟧_D` of Definition 1 (term-level, sorted, deduplicated).
pub fn evaluate_pattern(graph: &Graph, gp: &GraphPattern) -> Vec<Mapping> {
    let compiled = compile(graph, gp, JoinOrder::Auto);
    if !compiled.satisfiable {
        return Vec::new();
    }
    let nvars = compiled.vars.len();
    let mut binding: Vec<Option<TermId>> = vec![None; nvars];
    let mut results: Vec<Vec<TermId>> = Vec::new();
    search(graph, &compiled.slots, 0, &mut binding, &mut |binding| {
        results.push(binding.iter().map(|b| b.expect("var bound")).collect());
        true
    });
    results.sort();
    results.dedup();
    results
        .into_iter()
        .map(|row| {
            Mapping::from_pairs(
                row.iter()
                    .enumerate()
                    .map(|(i, id)| (compiled.vars[i].clone(), graph.term(*id).clone())),
            )
        })
        .collect()
}

/// Backtracking matcher over compiled conjuncts. The `emit` callback
/// receives the full binding at each solution and returns `false` to stop
/// the search; the overall return is `false` iff the search was stopped.
/// Candidates stream directly off the permutation-index range scans — no
/// per-level candidate materialisation.
fn search(
    graph: &Graph,
    slots: &[[Slot; 3]],
    depth: usize,
    binding: &mut Vec<Option<TermId>>,
    emit: &mut dyn FnMut(&[Option<TermId>]) -> bool,
) -> bool {
    if depth == slots.len() {
        // All conjuncts matched; every variable that occurs is bound.
        return emit(binding);
    }
    let slot = &slots[depth];
    let resolve = |s: &Slot, binding: &[Option<TermId>]| match s {
        Slot::Const(id) => Some(*id),
        Slot::Var(v) => binding[*v],
    };
    let qs = resolve(&slot[0], binding);
    let qp = resolve(&slot[1], binding);
    let qo = resolve(&slot[2], binding);

    for t in graph.match_ids(qs, qp, qo) {
        let keep_going = match_one(graph, slots, depth + 1, slot, t, binding, emit);
        if !keep_going {
            return false;
        }
    }
    true
}

/// Binds one candidate triple against `slot`, recurses into
/// `slots[next_depth..]` on success, and undoes the bindings. Returns
/// `false` iff the search was stopped.
fn match_one(
    graph: &Graph,
    slots: &[[Slot; 3]],
    next_depth: usize,
    slot: &[Slot; 3],
    t: rps_rdf::IdTriple,
    binding: &mut Vec<Option<TermId>>,
    emit: &mut dyn FnMut(&[Option<TermId>]) -> bool,
) -> bool {
    let vals = [t.s, t.p, t.o];
    let mut newly_bound: [Option<usize>; 3] = [None; 3];
    let mut ok = true;
    for i in 0..3 {
        match slot[i] {
            Slot::Var(v) => match binding[v] {
                Some(existing) => {
                    if existing != vals[i] {
                        ok = false;
                        break;
                    }
                }
                None => {
                    binding[v] = Some(vals[i]);
                    newly_bound[i] = Some(v);
                }
            },
            Slot::Const(c) => {
                if c != vals[i] {
                    ok = false;
                    break;
                }
            }
        }
    }
    let keep_going = if ok {
        search(graph, slots, next_depth, binding, emit)
    } else {
        true
    };
    for nb in newly_bound.into_iter().flatten() {
        binding[nb] = None;
    }
    keep_going
}

/// Evaluates a graph pattern query, returning its answer tuples under the
/// requested semantics (`Q_D` or `Q*_D`), sorted and deduplicated.
pub fn evaluate_query(
    graph: &Graph,
    query: &GraphPatternQuery,
    semantics: Semantics,
) -> BTreeSet<Vec<rps_rdf::Term>> {
    let mappings = evaluate_pattern(graph, query.pattern());
    let mut out = BTreeSet::new();
    for m in mappings {
        if let Some(tuple) = m.project(query.free_vars()) {
            if semantics == Semantics::Certain && tuple.iter().any(|t| t.is_blank()) {
                continue;
            }
            out.insert(tuple);
        }
    }
    out
}

/// Evaluates a Boolean (arity-0) query: `true` iff the body matches.
pub fn evaluate_boolean(graph: &Graph, query: &GraphPatternQuery) -> bool {
    // A single witness suffices; reuse evaluate_pattern but stop early by
    // checking non-emptiness of the mapping set. (The search enumerates all
    // matches; for the workloads in this repository bodies are small, and
    // the early-exit variant is provided by `has_match`.)
    has_match(graph, query.pattern())
}

/// `true` iff the pattern has at least one solution mapping (early exit).
pub fn has_match(graph: &Graph, gp: &GraphPattern) -> bool {
    has_match_with(graph, gp, &|_| None)
}

/// A graph pattern compiled once against a graph's dictionary for
/// repeated matching (e.g. the per-trigger satisfaction checks of the
/// chase). Construction interns the pattern's constants, so the plan
/// stays valid as the graph grows — a constant with no triples simply
/// matches nothing until triples arrive.
pub struct PreparedPattern {
    compiled: Compiled,
}

impl PreparedPattern {
    /// Compiles `gp` against `graph`, interning its constants.
    pub fn new(graph: &mut Graph, gp: &GraphPattern) -> Self {
        for pat in gp.patterns() {
            for tv in [&pat.s, &pat.p, &pat.o] {
                if let TermOrVar::Term(t) = tv {
                    graph.intern(t);
                }
            }
        }
        PreparedPattern {
            compiled: compile(graph, gp, JoinOrder::Auto),
        }
    }

    /// `true` iff the pattern has a solution extending the id-level
    /// binding `bind` (early exit). `graph` must be the graph (or a
    /// descendant sharing its dictionary ids) the pattern was prepared
    /// against.
    pub fn has_match_with(
        &self,
        graph: &Graph,
        bind: &dyn Fn(&Variable) -> Option<TermId>,
    ) -> bool {
        debug_assert!(self.compiled.satisfiable, "constants were interned");
        let mut binding: Vec<Option<TermId>> = vec![None; self.compiled.vars.len()];
        for (i, v) in self.compiled.vars.iter().enumerate() {
            if let Some(id) = bind(v) {
                binding[i] = Some(id);
            }
        }
        let mut found = false;
        search(graph, &self.compiled.slots, 0, &mut binding, &mut |_| {
            found = true;
            false
        });
        found
    }

    /// The triples supporting the *first* solution extending the
    /// id-level binding `bind` (early exit), one per conjunct in
    /// planner order, or `None` when no solution exists. This is the
    /// witness-extraction form of [`Self::has_match_with`]: the chase
    /// records these triples as the premise provenance of a firing, so
    /// delete-and-rederive knows which conclusions a removal can
    /// invalidate.
    pub fn first_match_with(
        &self,
        graph: &Graph,
        bind: &dyn Fn(&Variable) -> Option<TermId>,
    ) -> Option<Vec<IdTriple>> {
        if !self.compiled.satisfiable {
            return None;
        }
        let mut binding: Vec<Option<TermId>> = vec![None; self.compiled.vars.len()];
        for (i, v) in self.compiled.vars.iter().enumerate() {
            if let Some(id) = bind(v) {
                binding[i] = Some(id);
            }
        }
        let slots = &self.compiled.slots;
        let mut witness: Option<Vec<IdTriple>> = None;
        search(graph, slots, 0, &mut binding, &mut |b| {
            let resolve = |s: &Slot| match s {
                Slot::Const(id) => *id,
                Slot::Var(v) => b[*v].expect("a full match binds every occurring variable"),
            };
            witness = Some(
                slots
                    .iter()
                    .map(|sl| IdTriple::new(resolve(&sl[0]), resolve(&sl[1]), resolve(&sl[2])))
                    .collect(),
            );
            false
        });
        witness
    }
}

/// `true` iff the pattern has a solution mapping extending the partial
/// id-level binding `bind` (early exit). This is the hot-path form of
/// "substitute the tuple into the pattern, then test for a match": no
/// pattern copy and no term re-interning — variables are pre-bound to
/// term ids of this graph's dictionary.
pub fn has_match_with(
    graph: &Graph,
    gp: &GraphPattern,
    bind: &dyn Fn(&Variable) -> Option<TermId>,
) -> bool {
    let compiled = compile(graph, gp, JoinOrder::Auto);
    if !compiled.satisfiable {
        return false;
    }
    let mut binding: Vec<Option<TermId>> = vec![None; compiled.vars.len()];
    for (i, v) in compiled.vars.iter().enumerate() {
        if let Some(id) = bind(v) {
            binding[i] = Some(id);
        }
    }
    let mut found = false;
    search(graph, &compiled.slots, 0, &mut binding, &mut |_| {
        found = true;
        false
    });
    found
}

/// A graph pattern *query* compiled once against a graph's dictionary to
/// an id-level plan: planner-ordered conjunct slots plus the projection
/// of the query's free variables into the dense variable table. Where
/// [`PreparedPattern`] answers repeated *match* probes, a
/// `PreparedQueryIds` answers repeated *evaluations* — full or delta —
/// without re-compiling, re-ordering or re-resolving constants per call.
///
/// ```
/// use rps_query::{GraphPattern, GraphPatternQuery, PreparedQueryIds,
///                 Semantics, TermOrVar, Variable};
/// use rps_rdf::{Graph, Term};
///
/// let mut g = Graph::new();
/// let q = GraphPatternQuery::new(
///     vec![Variable::new("who")],
///     GraphPattern::triple(
///         TermOrVar::var("who"),
///         TermOrVar::iri("http://e/knows"),
///         TermOrVar::iri("http://e/alice"),
///     ),
/// );
/// // Compile once (interning constants so the plan survives growth)...
/// let plan = PreparedQueryIds::new(&mut g, &q);
/// let mark = g.log_len();
/// g.insert_terms(
///     Term::iri("http://e/bob"), Term::iri("http://e/knows"),
///     Term::iri("http://e/alice"),
/// ).unwrap();
/// // ...then evaluate repeatedly: full, or restricted to the delta
/// // window since a mark.
/// assert_eq!(plan.evaluate(&g, Semantics::Certain).len(), 1);
/// assert_eq!(plan.evaluate_delta(&g, Semantics::Certain, mark).len(), 1);
/// assert!(plan.evaluate_delta(&g, Semantics::Certain, g.log_len()).is_empty());
/// ```
pub struct PreparedQueryIds {
    compiled: Compiled,
    /// Free-variable projection into compiled variable indexes; `None`
    /// when some free variable does not occur in the pattern (the answer
    /// set is then empty).
    proj: Option<Vec<usize>>,
}

impl PreparedQueryIds {
    /// Compiles `query` against `graph`, interning the pattern's
    /// constants so the plan stays valid as the graph grows (a constant
    /// with no triples simply matches nothing until triples arrive).
    pub fn new(graph: &mut Graph, query: &GraphPatternQuery) -> Self {
        for pat in query.pattern().patterns() {
            for tv in [&pat.s, &pat.p, &pat.o] {
                if let TermOrVar::Term(t) = tv {
                    graph.intern(t);
                }
            }
        }
        Self::compile_only(graph, query)
    }

    /// Compiles `query` against a graph *without* interning its
    /// constants: a constant missing from the dictionary makes the plan
    /// unsatisfiable. Correct for frozen graphs (e.g. a materialised
    /// universal solution) — a graph that later gains triples could make
    /// the missing constant appear, which this plan would not notice.
    pub fn compile_only(graph: &Graph, query: &GraphPatternQuery) -> Self {
        Self::compile_only_with(graph, query, JoinOrder::Auto)
    }

    /// [`Self::compile_only`] with an explicit join-ordering mode —
    /// the seam the `ExecConfig` knob forces the cost-based or the
    /// smallest-first planner through (answers are byte-identical
    /// either way; only the conjunct order and scan permutations
    /// change).
    pub fn compile_only_with(graph: &Graph, query: &GraphPatternQuery, order: JoinOrder) -> Self {
        let compiled = compile(graph, query.pattern(), order);
        let proj = projection(&compiled, query);
        PreparedQueryIds { compiled, proj }
    }

    /// The ordering mode this plan was compiled under.
    pub fn join_order(&self) -> JoinOrder {
        self.compiled.order
    }

    /// The planner's conjunct order: element `i` is the position in the
    /// source pattern of the conjunct executed `i`-th. The ordering
    /// unit tests pin planner decisions through this.
    pub fn planned_order(&self) -> &[usize] {
        &self.compiled.source
    }

    /// The scan permutation each planned conjunct probes, in execution
    /// order — derived from which positions are constant or bound by
    /// earlier conjuncts, mirroring [`Graph::match_ids`]'s choice.
    pub fn planned_scans(&self) -> Vec<ScanPerm> {
        let mut bound: BTreeSet<usize> = BTreeSet::new();
        let mut out = Vec::with_capacity(self.compiled.slots.len());
        for slot in &self.compiled.slots {
            let known = |s: &Slot| match s {
                Slot::Const(_) => true,
                Slot::Var(v) => bound.contains(v),
            };
            let (s, p, o) = (known(&slot[0]), known(&slot[1]), known(&slot[2]));
            out.push(match (s, p, o) {
                (true, true, true) => ScanPerm::Probe,
                (true, true, false) | (true, false, false) => ScanPerm::Spo,
                (true, false, true) => ScanPerm::Osp,
                (false, true, _) => ScanPerm::Pos,
                (false, false, true) => ScanPerm::Osp,
                (false, false, false) => ScanPerm::Spo,
            });
            for sl in slot {
                if let Slot::Var(v) = sl {
                    bound.insert(*v);
                }
            }
        }
        out
    }

    /// Evaluates the plan, returning id-level answer tuples (dense,
    /// copy-free). Under [`Semantics::Certain`], tuples containing blank
    /// nodes are dropped. `graph` must be the graph the plan was compiled
    /// against (or a descendant sharing its dictionary ids).
    pub fn evaluate(&self, graph: &Graph, semantics: Semantics) -> BTreeSet<Vec<TermId>> {
        let mut out = BTreeSet::new();
        if !self.compiled.satisfiable {
            return out;
        }
        let Some(proj) = &self.proj else {
            return out;
        };
        let mut binding: Vec<Option<TermId>> = vec![None; self.compiled.vars.len()];
        search(graph, &self.compiled.slots, 0, &mut binding, &mut |b| {
            project_into(graph, proj, b, semantics, &mut out);
            true
        });
        out
    }

    /// Morsel-driven parallel evaluation: byte-identical to
    /// [`Self::evaluate`], but the first (planner-ordered) conjunct's
    /// candidate scan is materialised and split into fixed-size
    /// **morsels** claimed by a `std::thread::scope` worker pool over a
    /// shared atomic counter — work-stealing without queues: a worker
    /// that finishes its share simply claims the next morsel regardless
    /// of whose round-robin slot it was. Each worker backtracks its
    /// morsels' candidates through the remaining conjuncts into a
    /// private answer set; the per-worker sets are merged at the end.
    /// Because answers accumulate in ordered sets and set union is
    /// commutative, the merged result is independent of scheduling —
    /// the determinism contract the agreement tests pin.
    ///
    /// Falls back to the sequential path when `workers <= 1`, when the
    /// driver scan is no larger than one morsel, or when the plan is
    /// trivially empty.
    pub fn evaluate_parallel(
        &self,
        graph: &Graph,
        semantics: Semantics,
        workers: usize,
        morsel_size: usize,
    ) -> BTreeSet<Vec<TermId>> {
        let morsel = morsel_size.max(1);
        if workers <= 1
            || !self.compiled.satisfiable
            || self.proj.is_none()
            || self.compiled.slots.is_empty()
        {
            return self.evaluate(graph, semantics);
        }
        // The driver: all candidates of the first conjunct (with no
        // binding in flight, only its constants are resolved — exactly
        // what sequential `search` scans at depth 0).
        let slot = &self.compiled.slots[0];
        let resolve = |s: &Slot| match s {
            Slot::Const(id) => Some(*id),
            Slot::Var(_) => None,
        };
        let driver: Vec<rps_rdf::IdTriple> = graph
            .match_ids(resolve(&slot[0]), resolve(&slot[1]), resolve(&slot[2]))
            .collect();
        if driver.len() <= morsel {
            return self.evaluate(graph, semantics);
        }
        let proj = self.proj.as_ref().expect("checked above");
        let morsel_count = driver.len().div_ceil(morsel);
        let workers = workers.min(morsel_count);
        let next_morsel = AtomicUsize::new(0);
        let steals = AtomicU64::new(0);
        let driver = &driver;
        let mut partials: Vec<BTreeSet<Vec<TermId>>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let next_morsel = &next_morsel;
                    let steals = &steals;
                    scope.spawn(move || {
                        let mut local = BTreeSet::new();
                        let mut binding: Vec<Option<TermId>> = vec![None; self.compiled.vars.len()];
                        loop {
                            let m = next_morsel.fetch_add(1, Ordering::Relaxed);
                            if m >= morsel_count {
                                break;
                            }
                            if m % workers != w {
                                steals.fetch_add(1, Ordering::Relaxed);
                            }
                            let lo = m * morsel;
                            let hi = (lo + morsel).min(driver.len());
                            for &t in &driver[lo..hi] {
                                match_one(
                                    graph,
                                    &self.compiled.slots,
                                    1,
                                    slot,
                                    t,
                                    &mut binding,
                                    &mut |b| {
                                        project_into(graph, proj, b, semantics, &mut local);
                                        true
                                    },
                                );
                            }
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                partials.push(h.join().expect("morsel worker panicked"));
            }
        });
        graph.note_parallel_scan(morsel_count as u64, steals.load(Ordering::Relaxed));
        let mut out = partials.pop().unwrap_or_default();
        for p in partials {
            out.extend(p);
        }
        out
    }

    /// Delta evaluation: the answer tuples with at least one witness
    /// using a triple inserted at log index `log_from` or later (see
    /// [`Graph::log_since`] and [`evaluate_query_ids_delta`]).
    pub fn evaluate_delta(
        &self,
        graph: &Graph,
        semantics: Semantics,
        log_from: usize,
    ) -> BTreeSet<Vec<TermId>> {
        let mut out = BTreeSet::new();
        if graph.log_since(log_from).is_empty() || !self.compiled.satisfiable {
            return out;
        }
        let Some(proj) = &self.proj else {
            return out;
        };
        // One pass per pivot conjunct: the pivot ranges over the delta
        // triples, the remaining conjuncts over the whole graph (ordered
        // with the pivot's variables pre-bound). Tuples found via several
        // pivots collapse in the output set.
        for pivot in 0..self.compiled.slots.len() {
            let slot = self.compiled.slots[pivot];
            let mut rest: Vec<[Slot; 3]> = self
                .compiled
                .slots
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != pivot)
                .map(|(_, s)| *s)
                .collect();
            let pivot_vars: BTreeSet<usize> = slot
                .iter()
                .filter_map(|s| match s {
                    Slot::Var(v) => Some(*v),
                    Slot::Const(_) => None,
                })
                .collect();
            order_slots(graph, &mut rest, pivot_vars, self.compiled.order);
            let mut binding: Vec<Option<TermId>> = vec![None; self.compiled.vars.len()];
            for t in graph.log_since(log_from) {
                match_one(graph, &rest, 0, &slot, t, &mut binding, &mut |b| {
                    project_into(graph, proj, b, semantics, &mut out);
                    true
                });
            }
        }
        out
    }
}

/// One position of an id-level conjunct handed to
/// [`PreparedQueryIds::from_id_slots`]: a constant already resolved to a
/// term id of the target graph, or a dense variable index.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PlanSlot {
    /// A constant, already resolved against the target graph's
    /// dictionary.
    Const(TermId),
    /// A variable, identified by its dense index (must be `< nvars`).
    Var(usize),
}

impl PreparedQueryIds {
    /// Builds a plan from pre-resolved id-level conjuncts — the seam the
    /// UCQ rewriting pipeline hands its numbered-variable CQ branches
    /// through, with no [`Term`](rps_rdf::Term) decode / re-intern
    /// round-trip on the way.
    ///
    /// `nvars` is the dense variable count (every [`PlanSlot::Var`]
    /// index must be below it); `proj` maps answer positions to variable
    /// indexes, or is `None` when some answer variable cannot be bound
    /// by the body (the answer set is then empty); `satisfiable: false`
    /// short-circuits evaluation for branches whose constants the caller
    /// already knows are absent from the graph's dictionary. Conjuncts
    /// are planner-ordered against the graph's current statistics,
    /// exactly as Term-level compilation would order them.
    pub fn from_id_slots(
        graph: &Graph,
        conjuncts: &[[PlanSlot; 3]],
        nvars: usize,
        proj: Option<Vec<usize>>,
        satisfiable: bool,
    ) -> Self {
        Self::from_id_slots_with(graph, conjuncts, nvars, proj, satisfiable, JoinOrder::Auto)
    }

    /// [`Self::from_id_slots`] with an explicit join-ordering mode (see
    /// [`Self::compile_only_with`]).
    pub fn from_id_slots_with(
        graph: &Graph,
        conjuncts: &[[PlanSlot; 3]],
        nvars: usize,
        proj: Option<Vec<usize>>,
        satisfiable: bool,
        order: JoinOrder,
    ) -> Self {
        let mut slots: Vec<[Slot; 3]> = conjuncts
            .iter()
            .map(|c| {
                c.map(|s| match s {
                    PlanSlot::Const(id) => Slot::Const(id),
                    PlanSlot::Var(v) => {
                        debug_assert!(v < nvars, "variable index out of range");
                        Slot::Var(v)
                    }
                })
            })
            .collect();
        let source = if satisfiable {
            order_slots(graph, &mut slots, BTreeSet::new(), order)
        } else {
            (0..slots.len()).collect()
        };
        debug_assert!(proj.iter().flatten().all(|&i| i < nvars));
        // Numbered variables have no source names; synthesise stable
        // placeholders so the dense table keeps its invariants.
        let vars: Vec<Variable> = (0..nvars).map(|i| Variable::new(format!("_{i}"))).collect();
        PreparedQueryIds {
            compiled: Compiled {
                slots,
                vars,
                satisfiable,
                order,
                source,
            },
            proj,
        }
    }
}

/// The scan permutation a planned conjunct probes (see
/// [`PreparedQueryIds::planned_scans`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScanPerm {
    /// Subject-anchored range scan of the SPO index.
    Spo,
    /// Predicate-anchored range scan of the POS index.
    Pos,
    /// Object-anchored range scan of the OSP index.
    Osp,
    /// All three positions known at scan time: a single membership
    /// probe, no range scan at all.
    Probe,
}

/// Evaluates a graph pattern query at the id level: answer tuples are
/// [`TermId`]s of this graph's dictionary (dense, copy-free). Under
/// [`Semantics::Certain`], tuples containing blank nodes are dropped.
pub fn evaluate_query_ids(
    graph: &Graph,
    query: &GraphPatternQuery,
    semantics: Semantics,
) -> BTreeSet<Vec<TermId>> {
    PreparedQueryIds::compile_only(graph, query).evaluate(graph, semantics)
}

/// Delta evaluation: the answer tuples of `query` that have at least one
/// witness using a triple inserted at log index `log_from` or later
/// (see [`Graph::log_since`]). Together with the monotonicity of
/// conjunctive queries this is the semi-naive decomposition: evaluating
/// from `log_from = 0` equals [`evaluate_query_ids`], and a consumer that
/// saw all tuples before `log_from` misses nothing by evaluating only the
/// delta. An empty pattern has no delta (its sole empty witness uses no
/// triples).
pub fn evaluate_query_ids_delta(
    graph: &Graph,
    query: &GraphPatternQuery,
    semantics: Semantics,
    log_from: usize,
) -> BTreeSet<Vec<TermId>> {
    PreparedQueryIds::compile_only(graph, query).evaluate_delta(graph, semantics, log_from)
}

/// Maps the query's free variables to compiled variable indexes; `None`
/// if some free variable does not occur in the pattern (no tuple can bind
/// it, so the answer set is empty).
fn projection(compiled: &Compiled, query: &GraphPatternQuery) -> Option<Vec<usize>> {
    query
        .free_vars()
        .iter()
        .map(|v| compiled.vars.iter().position(|x| x == v))
        .collect()
}

fn project_into(
    graph: &Graph,
    proj: &[usize],
    binding: &[Option<TermId>],
    semantics: Semantics,
    out: &mut BTreeSet<Vec<TermId>>,
) {
    let tuple: Vec<TermId> = proj
        .iter()
        .map(|&i| binding[i].expect("solution binds all pattern vars"))
        .collect();
    if semantics == Semantics::Certain && tuple.iter().any(|&id| !graph.dict().is_name(id)) {
        return;
    }
    out.insert(tuple);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rps_rdf::Term;

    fn graph() -> Graph {
        let src = r#"
@prefix e: <http://e/> .
e:film1 e:starring _:c1 .
_:c1 e:artist e:actor1 .
e:film1 e:starring _:c2 .
_:c2 e:artist e:actor2 .
e:actor1 e:age "39" .
e:actor2 e:age "32" .
e:film2 e:starring _:c3 .
_:c3 e:artist e:actor1 .
"#;
        rps_rdf::turtle::parse(src).unwrap()
    }

    fn var(n: &str) -> Variable {
        Variable::new(n)
    }

    #[test]
    fn single_pattern_all_matches() {
        let g = graph();
        let gp = GraphPattern::triple(
            TermOrVar::var("f"),
            TermOrVar::iri("http://e/starring"),
            TermOrVar::var("c"),
        );
        assert_eq!(evaluate_pattern(&g, &gp).len(), 3);
    }

    #[test]
    fn join_two_patterns() {
        let g = graph();
        let gp = GraphPattern::triple(
            TermOrVar::iri("http://e/film1"),
            TermOrVar::iri("http://e/starring"),
            TermOrVar::var("z"),
        )
        .and(GraphPattern::triple(
            TermOrVar::var("z"),
            TermOrVar::iri("http://e/artist"),
            TermOrVar::var("x"),
        ));
        let sols = evaluate_pattern(&g, &gp);
        assert_eq!(sols.len(), 2);
        let actors: BTreeSet<_> = sols
            .iter()
            .map(|m| m.get(&var("x")).unwrap().clone())
            .collect();
        assert!(actors.contains(&Term::iri("http://e/actor1")));
        assert!(actors.contains(&Term::iri("http://e/actor2")));
    }

    #[test]
    fn three_way_join_paper_shape() {
        // The Example 1 query shape: starring / artist / age.
        let g = graph();
        let gp = GraphPattern::triple(
            TermOrVar::iri("http://e/film1"),
            TermOrVar::iri("http://e/starring"),
            TermOrVar::var("z"),
        )
        .and(GraphPattern::triple(
            TermOrVar::var("z"),
            TermOrVar::iri("http://e/artist"),
            TermOrVar::var("x"),
        ))
        .and(GraphPattern::triple(
            TermOrVar::var("x"),
            TermOrVar::iri("http://e/age"),
            TermOrVar::var("y"),
        ));
        let q = GraphPatternQuery::new(vec![var("x"), var("y")], gp);
        let ans = evaluate_query(&g, &q, Semantics::Certain);
        assert_eq!(ans.len(), 2);
        assert!(ans.contains(&vec![Term::iri("http://e/actor1"), Term::literal("39")]));
    }

    #[test]
    fn certain_semantics_drops_blank_tuples() {
        let g = graph();
        let gp = GraphPattern::triple(
            TermOrVar::var("f"),
            TermOrVar::iri("http://e/starring"),
            TermOrVar::var("c"),
        );
        let q = GraphPatternQuery::new(vec![var("c")], gp.clone());
        assert!(evaluate_query(&g, &q, Semantics::Certain).is_empty());
        assert_eq!(evaluate_query(&g, &q, Semantics::Star).len(), 3);
    }

    #[test]
    fn existential_projection() {
        let g = graph();
        // q(f) <- (f, starring, z): z existential, blanks allowed in body.
        let gp = GraphPattern::triple(
            TermOrVar::var("f"),
            TermOrVar::iri("http://e/starring"),
            TermOrVar::var("z"),
        );
        let q = GraphPatternQuery::new(vec![var("f")], gp);
        let ans = evaluate_query(&g, &q, Semantics::Certain);
        assert_eq!(ans.len(), 2); // film1, film2
    }

    #[test]
    fn unknown_constant_yields_empty() {
        let g = graph();
        let gp = GraphPattern::triple(
            TermOrVar::iri("http://e/NO-SUCH"),
            TermOrVar::var("p"),
            TermOrVar::var("o"),
        );
        assert!(evaluate_pattern(&g, &gp).is_empty());
        assert!(!has_match(&g, &gp));
    }

    #[test]
    fn repeated_variable_within_pattern() {
        let mut g = Graph::new();
        g.insert_terms(Term::iri("a"), Term::iri("p"), Term::iri("a"))
            .unwrap();
        g.insert_terms(Term::iri("a"), Term::iri("p"), Term::iri("b"))
            .unwrap();
        let gp = GraphPattern::triple(
            TermOrVar::var("x"),
            TermOrVar::iri("p"),
            TermOrVar::var("x"),
        );
        let sols = evaluate_pattern(&g, &gp);
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].get(&var("x")), Some(&Term::iri("a")));
    }

    #[test]
    fn empty_pattern_yields_single_empty_mapping() {
        let g = graph();
        let sols = evaluate_pattern(&g, &GraphPattern::new());
        assert_eq!(sols.len(), 1);
        assert!(sols[0].is_empty());
        assert!(has_match(&g, &GraphPattern::new()));
    }

    #[test]
    fn variable_predicate() {
        let g = graph();
        let gp = GraphPattern::triple(
            TermOrVar::iri("http://e/actor1"),
            TermOrVar::var("p"),
            TermOrVar::var("o"),
        );
        let sols = evaluate_pattern(&g, &gp);
        assert_eq!(sols.len(), 1); // age triple
    }

    #[test]
    fn boolean_query() {
        let g = graph();
        let yes = GraphPatternQuery::boolean(GraphPattern::triple(
            TermOrVar::var("x"),
            TermOrVar::iri("http://e/age"),
            TermOrVar::literal("39"),
        ));
        let no = GraphPatternQuery::boolean(GraphPattern::triple(
            TermOrVar::var("x"),
            TermOrVar::iri("http://e/age"),
            TermOrVar::literal("99"),
        ));
        assert!(evaluate_boolean(&g, &yes));
        assert!(!evaluate_boolean(&g, &no));
    }

    #[test]
    fn id_level_evaluation_matches_term_level() {
        let g = graph();
        let gp = GraphPattern::triple(
            TermOrVar::var("x"),
            TermOrVar::iri("http://e/age"),
            TermOrVar::var("y"),
        );
        let q = GraphPatternQuery::new(vec![var("x"), var("y")], gp);
        let terms = evaluate_query(&g, &q, Semantics::Certain);
        let ids = evaluate_query_ids(&g, &q, Semantics::Certain);
        let decoded: BTreeSet<Vec<Term>> = ids
            .iter()
            .map(|t| t.iter().map(|&id| g.term(id).clone()).collect())
            .collect();
        assert_eq!(terms, decoded);
    }

    #[test]
    fn delta_evaluation_finds_exactly_new_tuples() {
        let mut g = graph();
        let gp = GraphPattern::triple(
            TermOrVar::var("x"),
            TermOrVar::iri("http://e/age"),
            TermOrVar::var("y"),
        );
        let q = GraphPatternQuery::new(vec![var("x"), var("y")], gp);
        let before = evaluate_query_ids(&g, &q, Semantics::Certain);
        assert_eq!(before.len(), 2);
        let mark = g.log_len();
        // No new triples: empty delta.
        assert!(evaluate_query_ids_delta(&g, &q, Semantics::Certain, mark).is_empty());
        g.insert_terms(
            Term::iri("http://e/actor3"),
            Term::iri("http://e/age"),
            Term::literal("55"),
        )
        .unwrap();
        let delta = evaluate_query_ids_delta(&g, &q, Semantics::Certain, mark);
        assert_eq!(delta.len(), 1);
        // Delta-from-zero equals the full evaluation.
        assert_eq!(
            evaluate_query_ids_delta(&g, &q, Semantics::Certain, 0),
            evaluate_query_ids(&g, &q, Semantics::Certain)
        );
    }

    #[test]
    fn delta_evaluation_requires_one_new_conjunct_witness() {
        // A two-conjunct join where the new triple completes an old one.
        let mut g = Graph::new();
        g.insert_terms(Term::iri("f"), Term::iri("starring"), Term::iri("c"))
            .unwrap();
        let mark = g.log_len();
        let gp = GraphPattern::triple(
            TermOrVar::var("f"),
            TermOrVar::iri("starring"),
            TermOrVar::var("z"),
        )
        .and(GraphPattern::triple(
            TermOrVar::var("z"),
            TermOrVar::iri("artist"),
            TermOrVar::var("x"),
        ));
        let q = GraphPatternQuery::new(vec![var("f"), var("x")], gp);
        assert!(evaluate_query_ids_delta(&g, &q, Semantics::Certain, mark).is_empty());
        g.insert_terms(Term::iri("c"), Term::iri("artist"), Term::iri("a"))
            .unwrap();
        let delta = evaluate_query_ids_delta(&g, &q, Semantics::Certain, mark);
        assert_eq!(delta.len(), 1);
    }

    #[test]
    fn prepared_query_survives_graph_growth() {
        let mut g = Graph::new();
        let gp = GraphPattern::triple(
            TermOrVar::var("x"),
            TermOrVar::iri("http://e/age"),
            TermOrVar::var("y"),
        );
        let q = GraphPatternQuery::new(vec![var("x"), var("y")], gp);
        // Interning constructor on an empty graph: the constant gets an
        // id up front, so the plan keeps working as triples arrive.
        let plan = PreparedQueryIds::new(&mut g, &q);
        assert!(plan.evaluate(&g, Semantics::Certain).is_empty());
        let mark = g.log_len();
        g.insert_terms(
            Term::iri("http://e/actor1"),
            Term::iri("http://e/age"),
            Term::literal("39"),
        )
        .unwrap();
        assert_eq!(plan.evaluate(&g, Semantics::Certain).len(), 1);
        assert_eq!(plan.evaluate_delta(&g, Semantics::Certain, mark).len(), 1);
        // Repeated execution agrees with the one-shot helpers.
        assert_eq!(
            plan.evaluate(&g, Semantics::Certain),
            evaluate_query_ids(&g, &q, Semantics::Certain)
        );
    }

    #[test]
    fn prepared_query_missing_free_var_is_empty() {
        let g = graph();
        let gp = GraphPattern::triple(
            TermOrVar::var("x"),
            TermOrVar::iri("http://e/age"),
            TermOrVar::var("y"),
        );
        let q = GraphPatternQuery::new(vec![var("x"), var("unbound")], gp);
        let plan = PreparedQueryIds::compile_only(&g, &q);
        assert!(plan.evaluate(&g, Semantics::Star).is_empty());
    }

    #[test]
    fn from_id_slots_matches_term_level_compilation() {
        let g = graph();
        let age = g.term_id(&Term::iri("http://e/age")).unwrap();
        // q(x, y) <- (x, age, y) built straight from resolved ids.
        let plan = PreparedQueryIds::from_id_slots(
            &g,
            &[[PlanSlot::Var(0), PlanSlot::Const(age), PlanSlot::Var(1)]],
            2,
            Some(vec![0, 1]),
            true,
        );
        let gp = GraphPattern::triple(
            TermOrVar::var("x"),
            TermOrVar::iri("http://e/age"),
            TermOrVar::var("y"),
        );
        let q = GraphPatternQuery::new(vec![var("x"), var("y")], gp);
        assert_eq!(
            plan.evaluate(&g, Semantics::Certain),
            evaluate_query_ids(&g, &q, Semantics::Certain)
        );
        // An unsatisfiable branch (constant absent from the dictionary)
        // evaluates to nothing.
        let dead = PreparedQueryIds::from_id_slots(
            &g,
            &[[PlanSlot::Var(0), PlanSlot::Const(age), PlanSlot::Var(1)]],
            2,
            Some(vec![0, 1]),
            false,
        );
        assert!(dead.evaluate(&g, Semantics::Star).is_empty());
        // A projection that no variable can bind yields nothing either.
        let unbound = PreparedQueryIds::from_id_slots(
            &g,
            &[[PlanSlot::Var(0), PlanSlot::Const(age), PlanSlot::Var(1)]],
            2,
            None,
            true,
        );
        assert!(unbound.evaluate(&g, Semantics::Star).is_empty());
    }

    #[test]
    fn has_match_with_pre_bound_ids() {
        let g = graph();
        let gp = GraphPattern::triple(
            TermOrVar::var("x"),
            TermOrVar::iri("http://e/age"),
            TermOrVar::var("y"),
        );
        let actor1 = g.term_id(&Term::iri("http://e/actor1")).unwrap();
        let film1 = g.term_id(&Term::iri("http://e/film1")).unwrap();
        assert!(has_match_with(&g, &gp, &|v| {
            (v.name() == "x").then_some(actor1)
        }));
        assert!(!has_match_with(&g, &gp, &|v| {
            (v.name() == "x").then_some(film1)
        }));
    }

    #[test]
    fn cartesian_product_of_disconnected_patterns() {
        let g = graph();
        let gp = GraphPattern::triple(
            TermOrVar::var("a"),
            TermOrVar::iri("http://e/age"),
            TermOrVar::var("v"),
        )
        .and(GraphPattern::triple(
            TermOrVar::var("f"),
            TermOrVar::iri("http://e/starring"),
            TermOrVar::var("c"),
        ));
        // 2 age triples x 3 starring triples.
        assert_eq!(evaluate_pattern(&g, &gp).len(), 6);
    }

    #[test]
    fn blank_constant_in_pattern_is_matchable() {
        // Algorithm 1 substitutes tuples that may contain blanks into query
        // bodies, so the evaluator must accept blank-node constants.
        let mut g = Graph::new();
        g.insert_terms(Term::blank("b"), Term::iri("p"), Term::iri("o"))
            .unwrap();
        let gp = GraphPattern::triple(
            TermOrVar::Term(Term::blank("b")),
            TermOrVar::iri("p"),
            TermOrVar::var("o"),
        );
        assert_eq!(evaluate_pattern(&g, &gp).len(), 1);
    }

    /// A join-shaped graph big enough that the first conjunct's driver
    /// scan spans many morsels: `si --p--> mj --q--> ok` chains (plus a
    /// blank-valued chain, so Certain/Maybe differ).
    fn chain_graph(n: u32) -> (Graph, GraphPatternQuery) {
        let mut g = Graph::new();
        for i in 0..n {
            g.insert_terms(
                Term::iri(format!("s{i}")),
                Term::iri("p"),
                Term::iri(format!("m{}", i % 97)),
            )
            .unwrap();
            g.insert_terms(
                Term::iri(format!("m{}", i % 97)),
                Term::iri("q"),
                Term::iri(format!("o{}", i % 13)),
            )
            .unwrap();
            if i % 10 == 0 {
                g.insert_terms(
                    Term::iri(format!("m{}", i % 97)),
                    Term::iri("q"),
                    Term::blank(format!("b{i}")),
                )
                .unwrap();
            }
        }
        let q = GraphPatternQuery::new(
            vec![var("x"), var("z")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("p"),
                TermOrVar::var("y"),
            )
            .and(GraphPattern::triple(
                TermOrVar::var("y"),
                TermOrVar::iri("q"),
                TermOrVar::var("z"),
            )),
        );
        (g, q)
    }

    /// Parallel evaluation is byte-identical to sequential across
    /// worker counts, morsel sizes (smaller than a run, larger than the
    /// whole driver), semantics, and sealed layouts (plain, sharded,
    /// sharded+compressed) — the morsel-boundary agreement test.
    #[test]
    fn parallel_evaluation_is_byte_identical_to_sequential() {
        let (mut g, q) = chain_graph(600);
        let plan = PreparedQueryIds::new(&mut g, &q);
        for seal in 0..3 {
            match seal {
                0 => g.seal(),
                1 => g.seal_with(&rps_rdf::SealConfig {
                    shards: 4,
                    ..rps_rdf::SealConfig::default()
                }),
                _ => g.seal_with(&rps_rdf::SealConfig {
                    shards: 3,
                    compress: true,
                    compress_min_keys: 16,
                }),
            }
            for semantics in [Semantics::Certain, Semantics::Star] {
                let sequential = plan.evaluate(&g, semantics);
                assert!(!sequential.is_empty());
                for workers in [1usize, 2, 3, 4, 8] {
                    for morsel in [1usize, 7, 64, 1_000_000] {
                        assert_eq!(
                            plan.evaluate_parallel(&g, semantics, workers, morsel),
                            sequential,
                            "layout {seal}, {semantics:?}, {workers} workers, morsel {morsel}"
                        );
                    }
                }
            }
        }
        // The scans above dispatched morsels and (almost certainly)
        // recorded steals; the counters surface through storage_stats.
        assert!(g.storage_stats().morsels_dispatched > 0);
    }

    /// Edge shapes: a single-key driver range (one candidate — falls
    /// back to sequential), an unsatisfiable plan, and an empty graph.
    #[test]
    fn parallel_evaluation_edge_shapes() {
        let (mut g, q) = chain_graph(50);
        let plan = PreparedQueryIds::new(&mut g, &q);
        // Single-key driver: fully bound first conjunct.
        let single = GraphPatternQuery::new(
            vec![var("z")],
            GraphPattern::triple(
                TermOrVar::iri("s1"),
                TermOrVar::iri("p"),
                TermOrVar::var("y"),
            )
            .and(GraphPattern::triple(
                TermOrVar::var("y"),
                TermOrVar::iri("q"),
                TermOrVar::var("z"),
            )),
        );
        let single_plan = PreparedQueryIds::new(&mut g, &single);
        g.seal_with(&rps_rdf::SealConfig {
            shards: 5,
            compress: true,
            compress_min_keys: 1,
        });
        assert_eq!(
            single_plan.evaluate_parallel(&g, Semantics::Star, 8, 4),
            single_plan.evaluate(&g, Semantics::Star),
        );
        // Unsatisfiable / empty shapes stay empty under any pool.
        let absent = GraphPatternQuery::new(
            vec![var("x")],
            GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("no-such-predicate"),
                TermOrVar::var("y"),
            ),
        );
        let absent_plan = PreparedQueryIds::compile_only(&g, &absent);
        assert!(absent_plan
            .evaluate_parallel(&g, Semantics::Star, 4, 2)
            .is_empty());
        let empty = Graph::new();
        assert!(plan
            .evaluate_parallel(&empty, Semantics::Star, 4, 2)
            .is_empty());
    }

    /// A graph with two predicates of equal cardinality but opposite
    /// skew: `status` fans into 2 objects, `ident` is one-to-one.
    fn skewed_graph(n: usize) -> Graph {
        let mut g = Graph::new();
        for i in 0..n {
            let s = Term::iri(format!("http://e/s{i}"));
            g.insert_terms(
                s.clone(),
                Term::iri("http://e/status"),
                Term::literal(if i % 2 == 0 { "active" } else { "idle" }),
            )
            .unwrap();
            g.insert_terms(
                s,
                Term::iri("http://e/ident"),
                Term::literal(format!("{i}")),
            )
            .unwrap();
        }
        g
    }

    #[test]
    fn all_constant_atom_is_ordered_first() {
        // The membership probe comes first under BOTH estimators even
        // though its predicate is the most frequent one — the blind
        // spot the old heuristic had (it costed fully-bound atoms 1,
        // tying with refined estimates instead of winning outright).
        let g = skewed_graph(64);
        let probe = GraphPattern::triple(
            TermOrVar::iri("http://e/s3"),
            TermOrVar::iri("http://e/status"),
            TermOrVar::Term(Term::literal("idle")),
        );
        let gp = GraphPattern::triple(
            TermOrVar::var("x"),
            TermOrVar::iri("http://e/ident"),
            TermOrVar::var("i"),
        )
        .and(probe);
        let q = GraphPatternQuery::new(vec![var("x")], gp);
        for order in [JoinOrder::SmallestFirst, JoinOrder::CostBased] {
            let plan = PreparedQueryIds::compile_only_with(&g, &q, order);
            assert_eq!(
                plan.planned_order()[0],
                1,
                "all-constant atom must lead under {order:?}"
            );
            assert_eq!(plan.planned_scans()[0], ScanPerm::Probe);
        }
    }

    #[test]
    fn cost_based_orderer_uses_distinct_counts() {
        // Both atoms have predicate count n, so the shape heuristic
        // (count/4 for one bound position) ties and keeps query order.
        // The stats see that `ident "7"` pins one row while `status
        // "active"` matches n/2, and reorder.
        let mut g = skewed_graph(64);
        g.seal();
        let gp = GraphPattern::triple(
            TermOrVar::var("x"),
            TermOrVar::iri("http://e/status"),
            TermOrVar::Term(Term::literal("active")),
        )
        .and(GraphPattern::triple(
            TermOrVar::var("x"),
            TermOrVar::iri("http://e/ident"),
            TermOrVar::Term(Term::literal("7")),
        ));
        let q = GraphPatternQuery::new(vec![var("x")], gp);

        let heuristic = PreparedQueryIds::compile_only_with(&g, &q, JoinOrder::SmallestFirst);
        assert_eq!(heuristic.planned_order(), &[0, 1], "tie keeps query order");

        let cost = PreparedQueryIds::compile_only_with(&g, &q, JoinOrder::CostBased);
        assert_eq!(cost.planned_order(), &[1, 0], "selective atom leads");
        // The ident atom scans POS (only p+o known); by then the
        // status atom is fully bound and degenerates to a probe.
        assert_eq!(cost.planned_scans(), vec![ScanPerm::Pos, ScanPerm::Probe]);

        // Same answers either way — ordering is performance-only.
        assert_eq!(
            heuristic.evaluate(&g, Semantics::Certain),
            cost.evaluate(&g, Semantics::Certain)
        );
        // Auto resolves to the cost-based plan on a sealed graph...
        let auto = PreparedQueryIds::compile_only_with(&g, &q, JoinOrder::Auto);
        assert_eq!(auto.planned_order(), cost.planned_order());
        // ...and to the heuristic on an unsealed one (no snapshot).
        // Keep the graph under TAIL_MAX triples so the tail does not
        // auto-flush, which would leave the store sealed.
        let unsealed = skewed_graph(20);
        assert!(!unsealed.is_sealed());
        let auto_unsealed = PreparedQueryIds::compile_only_with(&unsealed, &q, JoinOrder::Auto);
        assert_eq!(auto_unsealed.planned_order(), &[0, 1]);
    }

    #[test]
    fn stats_snapshot_counts_are_exact() {
        let mut g = skewed_graph(32);
        assert!(
            g.graph_stats().is_none(),
            "unsealed graphs have no snapshot"
        );
        g.seal();
        let stats = g.graph_stats().expect("sealed");
        assert_eq!(stats.triples, 64);
        let status = g.term_id(&Term::iri("http://e/status")).unwrap();
        let ident = g.term_id(&Term::iri("http://e/ident")).unwrap();
        let st = stats.predicate(status).unwrap();
        assert_eq!(
            (st.count, st.distinct_subjects, st.distinct_objects),
            (32, 32, 2)
        );
        let id = stats.predicate(ident).unwrap();
        assert_eq!(
            (id.count, id.distinct_subjects, id.distinct_objects),
            (32, 32, 32)
        );
        assert_eq!(stats.predicates(), 2);
        assert!(stats.spo_bounds.is_some() && stats.pos_bounds.is_some());
        // Mutation invalidates; resealing rebuilds.
        g.insert_terms(
            Term::iri("http://e/s0"),
            Term::iri("http://e/status"),
            Term::literal("gone"),
        )
        .unwrap();
        assert!(g.graph_stats().is_none(), "tail reopened by the insert");
        g.seal();
        assert_eq!(g.graph_stats().unwrap().triples, 65);
        // The flat counters surface through storage_stats once built.
        let flat = g.storage_stats();
        assert_eq!(flat.stats_predicates, 2);
        assert!(flat.stats_distinct_subjects >= 32);
    }
}
