//! Query algebra above single graph patterns: unions of conjunctive
//! queries (UCQs), SELECT and ASK forms.
//!
//! The rewriting algorithms of Section 4 produce unions of conjunctive
//! SPARQL queries (Listing 2 rewrites an ASK into a UNION of two ASKs),
//! so the algebra models a query as a *set of branches*, each branch a
//! [`GraphPattern`].

use crate::eval::{evaluate_query, has_match, Semantics};
use crate::pattern::{GraphPattern, GraphPatternQuery, Variable};
use rps_rdf::{Graph, Term};
use std::collections::BTreeSet;
use std::fmt;

/// A union of conjunctive queries with a shared head `q(x̄)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UnionQuery {
    free: Vec<Variable>,
    branches: Vec<GraphPattern>,
}

impl UnionQuery {
    /// Creates a UCQ from a head and its branches.
    pub fn new(free: Vec<Variable>, branches: Vec<GraphPattern>) -> Self {
        UnionQuery { free, branches }
    }

    /// A UCQ with a single branch.
    pub fn single(query: GraphPatternQuery) -> Self {
        UnionQuery {
            free: query.free_vars().to_vec(),
            branches: vec![query.pattern().clone()],
        }
    }

    /// The head variables.
    pub fn free_vars(&self) -> &[Variable] {
        &self.free
    }

    /// The branches.
    pub fn branches(&self) -> &[GraphPattern] {
        &self.branches
    }

    /// Number of branches.
    pub fn len(&self) -> usize {
        self.branches.len()
    }

    /// `true` iff the union has no branches (evaluates to the empty set).
    pub fn is_empty(&self) -> bool {
        self.branches.is_empty()
    }

    /// Adds a branch, skipping exact duplicates.
    pub fn add_branch(&mut self, branch: GraphPattern) {
        if !self.branches.contains(&branch) {
            self.branches.push(branch);
        }
    }

    /// The branches as [`GraphPatternQuery`]s sharing this UCQ's head.
    pub fn branch_queries(&self) -> impl Iterator<Item = GraphPatternQuery> + '_ {
        self.branches
            .iter()
            .map(|b| GraphPatternQuery::new(self.free.clone(), b.clone()))
    }

    /// Evaluates the UCQ: the union of the branch answer sets.
    pub fn evaluate(&self, graph: &Graph, semantics: Semantics) -> BTreeSet<Vec<Term>> {
        let mut out = BTreeSet::new();
        for q in self.branch_queries() {
            out.extend(evaluate_query(graph, &q, semantics));
        }
        out
    }

    /// Evaluates the UCQ as a Boolean query (arity 0): true iff some
    /// branch matches.
    pub fn ask(&self, graph: &Graph) -> bool {
        self.branches.iter().any(|b| has_match(graph, b))
    }
}

impl fmt::Display for UnionQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let head: Vec<String> = self.free.iter().map(|v| v.to_string()).collect();
        let body: Vec<String> = self.branches.iter().map(|b| b.to_string()).collect();
        write!(f, "q({}) <- {}", head.join(", "), body.join(" UNION "))
    }
}

/// A parsed top-level query: the SPARQL-subset forms the engine accepts.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Query {
    /// `SELECT ?x … WHERE { … }` (body may be a UNION of groups).
    Select(UnionQuery),
    /// `ASK { … }` (body may be a UNION of groups).
    Ask(UnionQuery),
}

impl Query {
    /// The underlying UCQ.
    pub fn as_union(&self) -> &UnionQuery {
        match self {
            Query::Select(u) | Query::Ask(u) => u,
        }
    }

    /// Evaluates the query; ASK queries return a singleton/empty answer
    /// set encoding true/false.
    pub fn evaluate(&self, graph: &Graph, semantics: Semantics) -> QueryResult {
        match self {
            Query::Select(u) => QueryResult::Tuples(u.evaluate(graph, semantics)),
            Query::Ask(u) => QueryResult::Boolean(u.ask(graph)),
        }
    }
}

/// The result of evaluating a [`Query`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum QueryResult {
    /// Answer tuples of a SELECT.
    Tuples(BTreeSet<Vec<Term>>),
    /// Truth value of an ASK.
    Boolean(bool),
}

impl QueryResult {
    /// The tuple set, if this is a SELECT result.
    pub fn tuples(&self) -> Option<&BTreeSet<Vec<Term>>> {
        match self {
            QueryResult::Tuples(t) => Some(t),
            QueryResult::Boolean(_) => None,
        }
    }

    /// The Boolean, if this is an ASK result.
    pub fn boolean(&self) -> Option<bool> {
        match self {
            QueryResult::Boolean(b) => Some(*b),
            QueryResult::Tuples(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::TermOrVar;

    fn graph() -> Graph {
        rps_rdf::turtle::parse(
            "@prefix e: <http://e/> .\n\
             e:a e:p e:b .\n\
             e:c e:q e:d .\n",
        )
        .unwrap()
    }

    fn v(n: &str) -> Variable {
        Variable::new(n)
    }

    #[test]
    fn union_evaluates_all_branches() {
        let g = graph();
        let b1 = GraphPattern::triple(
            TermOrVar::var("x"),
            TermOrVar::iri("http://e/p"),
            TermOrVar::var("y"),
        );
        let b2 = GraphPattern::triple(
            TermOrVar::var("x"),
            TermOrVar::iri("http://e/q"),
            TermOrVar::var("y"),
        );
        let u = UnionQuery::new(vec![v("x"), v("y")], vec![b1, b2]);
        let ans = u.evaluate(&g, Semantics::Certain);
        assert_eq!(ans.len(), 2);
    }

    #[test]
    fn union_dedups_branches() {
        let b = GraphPattern::triple(
            TermOrVar::var("x"),
            TermOrVar::iri("p"),
            TermOrVar::var("y"),
        );
        let mut u = UnionQuery::new(vec![v("x")], vec![b.clone()]);
        u.add_branch(b);
        assert_eq!(u.len(), 1);
    }

    #[test]
    fn ask_short_circuits_branches() {
        let g = graph();
        let dead = GraphPattern::triple(
            TermOrVar::iri("http://e/none"),
            TermOrVar::var("p"),
            TermOrVar::var("o"),
        );
        let live = GraphPattern::triple(
            TermOrVar::var("s"),
            TermOrVar::iri("http://e/q"),
            TermOrVar::var("o"),
        );
        let u = UnionQuery::new(vec![], vec![dead, live]);
        assert!(u.ask(&g));
        assert!(Query::Ask(u)
            .evaluate(&g, Semantics::Certain)
            .boolean()
            .unwrap());
    }

    #[test]
    fn empty_union_is_false_and_empty() {
        let g = graph();
        let u = UnionQuery::new(vec![v("x")], vec![]);
        assert!(u.is_empty());
        assert!(u.evaluate(&g, Semantics::Star).is_empty());
        assert!(!u.ask(&g));
    }

    #[test]
    fn select_result_accessors() {
        let g = graph();
        let u = UnionQuery::new(
            vec![v("x")],
            vec![GraphPattern::triple(
                TermOrVar::var("x"),
                TermOrVar::iri("http://e/p"),
                TermOrVar::var("y"),
            )],
        );
        let r = Query::Select(u).evaluate(&g, Semantics::Certain);
        assert_eq!(r.tuples().unwrap().len(), 1);
        assert!(r.boolean().is_none());
    }
}
