//! Mappings (µ) from variables to terms, and their join semantics.
//!
//! This module implements the Pérez-et-al. semantics the paper adopts in
//! Section 2.1: a mapping is a partial function `µ : V → (I ∪ B ∪ L)`,
//! two mappings are *compatible* when they agree on their shared domain,
//! and `Ω₁ ⋈ Ω₂` is the set of unions of compatible pairs.

use crate::pattern::Variable;
use rps_rdf::Term;
use std::collections::BTreeMap;
use std::fmt;

/// A mapping `µ : V → (I ∪ B ∪ L)` (partial, term-level).
#[derive(Clone, PartialEq, Eq, Default, Hash, PartialOrd, Ord)]
pub struct Mapping {
    entries: BTreeMap<Variable, Term>,
}

impl Mapping {
    /// The empty mapping.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a mapping from `(variable, term)` pairs.
    pub fn from_pairs<I: IntoIterator<Item = (Variable, Term)>>(pairs: I) -> Self {
        Mapping {
            entries: pairs.into_iter().collect(),
        }
    }

    /// `dom(µ)` — the variables on which the mapping is defined.
    pub fn domain(&self) -> impl Iterator<Item = &Variable> {
        self.entries.keys()
    }

    /// Looks up `µ(v)`.
    pub fn get(&self, v: &Variable) -> Option<&Term> {
        self.entries.get(v)
    }

    /// Binds a variable. Returns `false` (and leaves the mapping
    /// unchanged) if the variable is already bound to a *different* term.
    pub fn bind(&mut self, v: Variable, t: Term) -> bool {
        match self.entries.get(&v) {
            Some(existing) => existing == &t,
            None => {
                self.entries.insert(v, t);
                true
            }
        }
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Two mappings are *compatible* when they agree on every shared
    /// variable (i.e. `µ₁ ∪ µ₂` is still a function).
    pub fn compatible(&self, other: &Mapping) -> bool {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small
            .entries
            .iter()
            .all(|(v, t)| large.entries.get(v).is_none_or(|u| u == t))
    }

    /// `µ₁ ∪ µ₂` for compatible mappings; `None` otherwise.
    pub fn union(&self, other: &Mapping) -> Option<Mapping> {
        if !self.compatible(other) {
            return None;
        }
        let mut entries = self.entries.clone();
        for (v, t) in &other.entries {
            entries.insert(v.clone(), t.clone());
        }
        Some(Mapping { entries })
    }

    /// Projects the mapping to an answer tuple over the given variables.
    /// Returns `None` if some variable is unbound.
    pub fn project(&self, vars: &[Variable]) -> Option<Vec<Term>> {
        vars.iter().map(|v| self.get(v).cloned()).collect()
    }

    /// Iterates over `(variable, term)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&Variable, &Term)> {
        self.entries.iter()
    }
}

impl fmt::Debug for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .entries
            .iter()
            .map(|(v, t)| format!("{v} -> {t}"))
            .collect();
        write!(f, "{{{}}}", parts.join(", "))
    }
}

/// Joins two sets of mappings: `Ω₁ ⋈ Ω₂ = {µ₁ ∪ µ₂ | compatible}`.
pub fn join(left: &[Mapping], right: &[Mapping]) -> Vec<Mapping> {
    let mut out = Vec::new();
    for l in left {
        for r in right {
            if let Some(u) = l.union(r) {
                out.push(u);
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Variable {
        Variable::new(n)
    }

    #[test]
    fn bind_and_get() {
        let mut m = Mapping::new();
        assert!(m.bind(v("x"), Term::iri("a")));
        assert!(m.bind(v("x"), Term::iri("a"))); // same value ok
        assert!(!m.bind(v("x"), Term::iri("b"))); // conflicting value
        assert_eq!(m.get(&v("x")), Some(&Term::iri("a")));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn compatibility() {
        let m1 = Mapping::from_pairs([(v("x"), Term::iri("a")), (v("y"), Term::iri("b"))]);
        let m2 = Mapping::from_pairs([(v("y"), Term::iri("b")), (v("z"), Term::iri("c"))]);
        let m3 = Mapping::from_pairs([(v("y"), Term::iri("DIFFERENT"))]);
        assert!(m1.compatible(&m2));
        assert!(!m1.compatible(&m3));
        assert!(m1.compatible(&Mapping::new()));
        let u = m1.union(&m2).unwrap();
        assert_eq!(u.len(), 3);
        assert!(m1.union(&m3).is_none());
    }

    #[test]
    fn join_semantics() {
        let l = vec![
            Mapping::from_pairs([(v("x"), Term::iri("a")), (v("y"), Term::iri("b"))]),
            Mapping::from_pairs([(v("x"), Term::iri("a2")), (v("y"), Term::iri("b2"))]),
        ];
        let r = vec![
            Mapping::from_pairs([(v("y"), Term::iri("b")), (v("z"), Term::iri("c"))]),
            Mapping::from_pairs([(v("y"), Term::iri("zzz")), (v("z"), Term::iri("c"))]),
        ];
        let joined = join(&l, &r);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined[0].get(&v("z")), Some(&Term::iri("c")));
    }

    #[test]
    fn join_with_empty_mapping_is_cross_product_identity() {
        let l = vec![Mapping::new()];
        let r = vec![
            Mapping::from_pairs([(v("x"), Term::iri("a"))]),
            Mapping::from_pairs([(v("x"), Term::iri("b"))]),
        ];
        assert_eq!(join(&l, &r).len(), 2);
    }

    #[test]
    fn projection() {
        let m = Mapping::from_pairs([(v("x"), Term::iri("a")), (v("y"), Term::literal("1"))]);
        assert_eq!(
            m.project(&[v("y"), v("x")]),
            Some(vec![Term::literal("1"), Term::iri("a")])
        );
        assert_eq!(m.project(&[v("zz")]), None);
    }
}
