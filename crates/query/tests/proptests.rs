//! Randomised property tests for the query layer: the compatible-join
//! semantics laws from Pérez et al. and planner-order invariance.
//!
//! Seeded SplitMix64 case generation stands in for `proptest` (no
//! crates.io access in the build container); the invariants are the same.

use rps_query::{
    evaluate_pattern, evaluate_query, GraphPattern, GraphPatternQuery, Mapping, Semantics,
    TermOrVar, TriplePattern, Variable,
};
use rps_rdf::{Graph, Term};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

fn pool_iri(i: usize) -> Term {
    Term::iri(format!("http://q/{i}"))
}

fn arb_graph(rng: &mut Rng) -> Graph {
    let mut g = Graph::new();
    for _ in 0..rng.below(30) {
        let (s, p, o) = (rng.below(6), rng.below(4), rng.below(6));
        let _ = g.insert_terms(pool_iri(s), pool_iri(p + 20), pool_iri(o));
    }
    g
}

fn arb_tv(rng: &mut Rng) -> TermOrVar {
    if rng.below(2) == 0 {
        TermOrVar::Term(pool_iri(rng.below(6)))
    } else {
        TermOrVar::Var(Variable::new(format!("v{}", rng.below(4))))
    }
}

fn arb_pred(rng: &mut Rng) -> TermOrVar {
    if rng.below(2) == 0 {
        TermOrVar::Term(pool_iri(rng.below(4) + 20))
    } else {
        TermOrVar::Var(Variable::new(format!("p{}", rng.below(2))))
    }
}

fn arb_pattern(rng: &mut Rng) -> TriplePattern {
    TriplePattern::new(arb_tv(rng), arb_pred(rng), arb_tv(rng))
}

fn arb_bgp(rng: &mut Rng) -> GraphPattern {
    let n = 1 + rng.below(3);
    GraphPattern::from_patterns((0..n).map(|_| arb_pattern(rng)).collect())
}

/// Reference evaluator: textbook mapping-join semantics, no planner.
fn reference_eval(graph: &Graph, gp: &GraphPattern) -> Vec<Mapping> {
    let mut acc: Option<Vec<Mapping>> = None;
    for pat in gp.patterns() {
        let mut sols = Vec::new();
        for t in graph.iter() {
            let mut m = Mapping::new();
            let ok = [
                (&pat.s, t.subject()),
                (&pat.p, t.predicate()),
                (&pat.o, t.object()),
            ]
            .into_iter()
            .all(|(tv, term)| match tv {
                TermOrVar::Term(c) => c == term,
                TermOrVar::Var(v) => m.bind(v.clone(), term.clone()),
            });
            if ok {
                sols.push(m);
            }
        }
        sols.sort();
        sols.dedup();
        acc = Some(match acc {
            None => sols,
            Some(prev) => rps_query::join(&prev, &sols),
        });
    }
    let mut out = acc.unwrap_or_else(|| vec![Mapping::new()]);
    out.sort();
    out.dedup();
    out
}

const CASES: u64 = 96;

#[test]
fn planner_matches_reference_semantics() {
    for seed in 0..CASES {
        let rng = &mut Rng(seed);
        let g = arb_graph(rng);
        let gp = arb_bgp(rng);
        let mut fast = evaluate_pattern(&g, &gp);
        fast.sort();
        let slow = reference_eval(&g, &gp);
        assert_eq!(fast, slow, "seed {seed}");
    }
}

#[test]
fn and_is_commutative() {
    for seed in 0..CASES {
        let rng = &mut Rng(seed);
        let g = arb_graph(rng);
        let a = arb_pattern(rng);
        let b = arb_pattern(rng);
        let ab = GraphPattern::from_patterns(vec![a.clone(), b.clone()]);
        let ba = GraphPattern::from_patterns(vec![b, a]);
        let mut l = evaluate_pattern(&g, &ab);
        let mut r = evaluate_pattern(&g, &ba);
        l.sort();
        r.sort();
        assert_eq!(l, r, "seed {seed}");
    }
}

#[test]
fn conjunct_duplication_is_idempotent() {
    for seed in 0..CASES {
        let rng = &mut Rng(seed);
        let g = arb_graph(rng);
        let a = arb_pattern(rng);
        let single = GraphPattern::from_patterns(vec![a.clone()]);
        let twice = GraphPattern::from_patterns(vec![a.clone(), a]);
        let mut l = evaluate_pattern(&g, &single);
        let mut r = evaluate_pattern(&g, &twice);
        l.sort();
        r.sort();
        assert_eq!(l, r, "seed {seed}");
    }
}

#[test]
fn star_superset_of_certain() {
    for seed in 0..CASES {
        let rng = &mut Rng(seed);
        let g = arb_graph(rng);
        let gp = arb_bgp(rng);
        let vars: Vec<Variable> = gp.vars().into_iter().collect();
        if vars.is_empty() {
            continue;
        }
        let q = GraphPatternQuery::new(vars, gp);
        let star = evaluate_query(&g, &q, Semantics::Star);
        let certain = evaluate_query(&g, &q, Semantics::Certain);
        assert!(certain.is_subset(&star), "seed {seed}");
    }
}

#[test]
fn has_match_agrees_with_nonempty() {
    for seed in 0..CASES {
        let rng = &mut Rng(seed);
        let g = arb_graph(rng);
        let gp = arb_bgp(rng);
        assert_eq!(
            rps_query::has_match(&g, &gp),
            !evaluate_pattern(&g, &gp).is_empty(),
            "seed {seed}"
        );
    }
}
