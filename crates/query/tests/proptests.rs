//! Property-based tests for the query layer: the compatible-join
//! semantics laws from Pérez et al. and planner-order invariance.

use proptest::prelude::*;
use rps_query::{
    evaluate_pattern, evaluate_query, GraphPattern, GraphPatternQuery, Mapping, Semantics,
    TermOrVar, TriplePattern, Variable,
};
use rps_rdf::{Graph, Term};

fn pool_iri(i: usize) -> Term {
    Term::iri(format!("http://q/{i}"))
}

prop_compose! {
    fn arb_graph()(
        triples in prop::collection::vec((0usize..6, 0usize..4, 0usize..6), 0..30)
    ) -> Graph {
        let mut g = Graph::new();
        for (s, p, o) in triples {
            let _ = g.insert_terms(pool_iri(s), pool_iri(p + 20), pool_iri(o));
        }
        g
    }
}

fn arb_tv() -> impl Strategy<Value = TermOrVar> {
    prop_oneof![
        (0usize..6).prop_map(|i| TermOrVar::Term(pool_iri(i))),
        (0usize..4).prop_map(|i| TermOrVar::Var(Variable::new(format!("v{i}")))),
    ]
}

fn arb_pred() -> impl Strategy<Value = TermOrVar> {
    prop_oneof![
        (0usize..4).prop_map(|i| TermOrVar::Term(pool_iri(i + 20))),
        (0usize..2).prop_map(|i| TermOrVar::Var(Variable::new(format!("p{i}")))),
    ]
}

prop_compose! {
    fn arb_pattern()(s in arb_tv(), p in arb_pred(), o in arb_tv()) -> TriplePattern {
        TriplePattern::new(s, p, o)
    }
}

prop_compose! {
    fn arb_bgp()(pats in prop::collection::vec(arb_pattern(), 1..4)) -> GraphPattern {
        GraphPattern::from_patterns(pats)
    }
}

/// Reference evaluator: textbook mapping-join semantics, no planner.
fn reference_eval(graph: &Graph, gp: &GraphPattern) -> Vec<Mapping> {
    let mut acc: Option<Vec<Mapping>> = None;
    for pat in gp.patterns() {
        let mut sols = Vec::new();
        for t in graph.iter() {
            let mut m = Mapping::new();
            let ok = [
                (&pat.s, t.subject()),
                (&pat.p, t.predicate()),
                (&pat.o, t.object()),
            ]
            .into_iter()
            .all(|(tv, term)| match tv {
                TermOrVar::Term(c) => c == term,
                TermOrVar::Var(v) => m.bind(v.clone(), term.clone()),
            });
            if ok {
                sols.push(m);
            }
        }
        sols.sort();
        sols.dedup();
        acc = Some(match acc {
            None => sols,
            Some(prev) => rps_query::join(&prev, &sols),
        });
    }
    let mut out = acc.unwrap_or_else(|| vec![Mapping::new()]);
    out.sort();
    out.dedup();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn planner_matches_reference_semantics(g in arb_graph(), gp in arb_bgp()) {
        let mut fast = evaluate_pattern(&g, &gp);
        fast.sort();
        let slow = reference_eval(&g, &gp);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn and_is_commutative(g in arb_graph(), a in arb_pattern(), b in arb_pattern()) {
        let ab = GraphPattern::from_patterns(vec![a.clone(), b.clone()]);
        let ba = GraphPattern::from_patterns(vec![b, a]);
        let mut l = evaluate_pattern(&g, &ab);
        let mut r = evaluate_pattern(&g, &ba);
        l.sort();
        r.sort();
        prop_assert_eq!(l, r);
    }

    #[test]
    fn conjunct_duplication_is_idempotent(g in arb_graph(), a in arb_pattern()) {
        let single = GraphPattern::from_patterns(vec![a.clone()]);
        let twice = GraphPattern::from_patterns(vec![a.clone(), a]);
        let mut l = evaluate_pattern(&g, &single);
        let mut r = evaluate_pattern(&g, &twice);
        l.sort();
        r.sort();
        prop_assert_eq!(l, r);
    }

    #[test]
    fn star_superset_of_certain(g in arb_graph(), gp in arb_bgp()) {
        let vars: Vec<Variable> = gp.vars().into_iter().collect();
        if vars.is_empty() {
            return Ok(());
        }
        let q = GraphPatternQuery::new(vars, gp);
        let star = evaluate_query(&g, &q, Semantics::Star);
        let certain = evaluate_query(&g, &q, Semantics::Certain);
        prop_assert!(certain.is_subset(&star));
    }

    #[test]
    fn has_match_agrees_with_nonempty(g in arb_graph(), gp in arb_bgp()) {
        prop_assert_eq!(
            rps_query::has_match(&g, &gp),
            !evaluate_pattern(&g, &gp).is_empty()
        );
    }
}
