//! Randomised property tests for the RDF substrate: store index
//! coherence, serialisation round-trips, and merge/equality laws.
//!
//! The container has no crates.io access, so instead of `proptest` these
//! run a fixed number of cases over a seeded SplitMix64 generator — same
//! invariants, deterministic inputs.

use rps_rdf::{turtle, Graph, Term, Triple};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

fn arb_term(rng: &mut Rng, allow_literal: bool, allow_blank: bool) -> Term {
    match rng.below(7) {
        0 if allow_blank => Term::blank(format!("b{}", rng.below(4))),
        1 | 2 if allow_literal => Term::literal(format!("v{}", rng.below(6))),
        _ => Term::iri(format!("http://t/{}", rng.below(12))),
    }
}

fn arb_triple(rng: &mut Rng) -> Triple {
    Triple::new(
        arb_term(rng, false, true),
        arb_term(rng, false, false),
        arb_term(rng, true, true),
    )
    .expect("generated terms satisfy positions")
}

fn arb_graph(rng: &mut Rng) -> Graph {
    let n = rng.below(40);
    Graph::from_triples((0..n).map(|_| arb_triple(rng)))
}

const CASES: u64 = 128;

#[test]
fn insert_then_contains() {
    for seed in 0..CASES {
        let rng = &mut Rng(seed);
        let mut g = arb_graph(rng);
        let t = arb_triple(rng);
        g.insert(&t);
        assert!(g.contains(&t));
    }
}

#[test]
fn remove_inverts_insert() {
    for seed in 0..CASES {
        let rng = &mut Rng(seed);
        let mut g = arb_graph(rng);
        let t = arb_triple(rng);
        g.insert(&t);
        g.remove(&t);
        assert!(!g.contains(&t));
    }
}

#[test]
fn all_indexes_agree() {
    for seed in 0..CASES {
        let rng = &mut Rng(seed);
        let g = arb_graph(rng);
        // Every triple found by the full scan is found by each
        // single-position probe, and counts match.
        let all: Vec<_> = g.iter_ids().collect();
        for t in &all {
            assert!(g.match_ids(Some(t.s), None, None).any(|x| x == *t));
            assert!(g.match_ids(None, Some(t.p), None).any(|x| x == *t));
            assert!(g.match_ids(None, None, Some(t.o)).any(|x| x == *t));
            assert_eq!(g.match_ids(Some(t.s), Some(t.p), Some(t.o)).count(), 1);
        }
        let by_pred: usize = {
            let mut preds: Vec<_> = all.iter().map(|t| t.p).collect();
            preds.sort();
            preds.dedup();
            preds
                .iter()
                .map(|p| g.match_ids(None, Some(*p), None).count())
                .sum()
        };
        assert_eq!(by_pred, g.len());
    }
}

#[test]
fn ntriples_roundtrip() {
    for seed in 0..CASES {
        let rng = &mut Rng(seed);
        let g = arb_graph(rng);
        let text = turtle::to_ntriples(&g);
        let g2 = turtle::parse(&text).expect("serialised graph reparses");
        assert_eq!(g, g2);
    }
}

#[test]
fn merge_is_union() {
    for seed in 0..CASES {
        let rng = &mut Rng(seed);
        let a = arb_graph(rng);
        let b = arb_graph(rng);
        let mut m = a.clone();
        m.merge(&b);
        for t in a.iter() {
            assert!(m.contains(&t));
        }
        for t in b.iter() {
            assert!(m.contains(&t));
        }
        // Merge is idempotent.
        let before = m.len();
        m.merge(&b);
        assert_eq!(m.len(), before);
    }
}

#[test]
fn predicate_counts_consistent() {
    for seed in 0..CASES {
        let rng = &mut Rng(seed);
        let g = arb_graph(rng);
        let mut preds: Vec<_> = g.iter_ids().map(|t| t.p).collect();
        preds.sort();
        preds.dedup();
        for p in preds {
            assert_eq!(
                g.predicate_count(p),
                g.match_ids(None, Some(p), None).count()
            );
        }
    }
}
