//! Property-based tests for the RDF substrate: store index coherence,
//! serialisation round-trips, and merge/equality laws.

use proptest::prelude::*;
use rps_rdf::{turtle, Graph, Term, Triple};

fn arb_term(allow_literal: bool, allow_blank: bool) -> impl Strategy<Value = Term> {
    let iri = (0usize..12).prop_map(|i| Term::iri(format!("http://t/{i}")));
    let blank = (0usize..4).prop_map(|i| Term::blank(format!("b{i}")));
    let lit = (0usize..6).prop_map(|i| Term::literal(format!("v{i}")));
    match (allow_literal, allow_blank) {
        (true, true) => prop_oneof![4 => iri, 1 => blank, 2 => lit].boxed(),
        (false, true) => prop_oneof![4 => iri, 1 => blank].boxed(),
        (true, false) => prop_oneof![4 => iri, 2 => lit].boxed(),
        (false, false) => iri.boxed(),
    }
}

prop_compose! {
    fn arb_triple()(
        s in arb_term(false, true),
        p in arb_term(false, false),
        o in arb_term(true, true),
    ) -> Triple {
        Triple::new(s, p, o).expect("generated terms satisfy positions")
    }
}

prop_compose! {
    fn arb_graph()(triples in prop::collection::vec(arb_triple(), 0..40)) -> Graph {
        Graph::from_triples(triples)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn insert_then_contains(g in arb_graph(), t in arb_triple()) {
        let mut g = g;
        g.insert(&t);
        prop_assert!(g.contains(&t));
    }

    #[test]
    fn remove_inverts_insert(g in arb_graph(), t in arb_triple()) {
        let mut g = g;
        let was_present = g.contains(&t);
        g.insert(&t);
        g.remove(&t);
        prop_assert!(!g.contains(&t));
        // Size is back to the original minus the removed triple.
        let _ = was_present;
    }

    #[test]
    fn all_indexes_agree(g in arb_graph()) {
        // Every triple found by the full scan is found by each
        // single-position probe, and counts match.
        let all: Vec<_> = g.iter_ids().collect();
        for t in &all {
            prop_assert!(g.match_ids(Some(t.s), None, None).any(|x| x == *t));
            prop_assert!(g.match_ids(None, Some(t.p), None).any(|x| x == *t));
            prop_assert!(g.match_ids(None, None, Some(t.o)).any(|x| x == *t));
            prop_assert!(g.match_ids(Some(t.s), Some(t.p), Some(t.o)).count() == 1);
        }
        let by_pred: usize = {
            let mut preds: Vec<_> = all.iter().map(|t| t.p).collect();
            preds.sort();
            preds.dedup();
            preds.iter().map(|p| g.match_ids(None, Some(*p), None).count()).sum()
        };
        prop_assert_eq!(by_pred, g.len());
    }

    #[test]
    fn ntriples_roundtrip(g in arb_graph()) {
        let text = turtle::to_ntriples(&g);
        let g2 = turtle::parse(&text).expect("serialised graph reparses");
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn merge_is_union(a in arb_graph(), b in arb_graph()) {
        let mut m = a.clone();
        m.merge(&b);
        for t in a.iter() {
            prop_assert!(m.contains(&t));
        }
        for t in b.iter() {
            prop_assert!(m.contains(&t));
        }
        // Merge is idempotent.
        let before = m.len();
        m.merge(&b);
        prop_assert_eq!(m.len(), before);
    }

    #[test]
    fn predicate_counts_consistent(g in arb_graph()) {
        let mut preds: Vec<_> = g.iter_ids().map(|t| t.p).collect();
        preds.sort();
        preds.dedup();
        for p in preds {
            prop_assert_eq!(
                g.predicate_count(p),
                g.match_ids(None, Some(p), None).count()
            );
        }
    }
}
