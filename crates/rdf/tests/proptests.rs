//! Randomised property tests for the RDF substrate: store index
//! coherence, serialisation round-trips, and merge/equality laws.
//!
//! The container has no crates.io access, so instead of `proptest` these
//! run a fixed number of cases over a seeded SplitMix64 generator — same
//! invariants, deterministic inputs.

use rps_rdf::{turtle, Graph, StorageBackend, Term, Triple};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

fn arb_term(rng: &mut Rng, allow_literal: bool, allow_blank: bool) -> Term {
    match rng.below(7) {
        0 if allow_blank => Term::blank(format!("b{}", rng.below(4))),
        1 | 2 if allow_literal => Term::literal(format!("v{}", rng.below(6))),
        _ => Term::iri(format!("http://t/{}", rng.below(12))),
    }
}

fn arb_triple(rng: &mut Rng) -> Triple {
    Triple::new(
        arb_term(rng, false, true),
        arb_term(rng, false, false),
        arb_term(rng, true, true),
    )
    .expect("generated terms satisfy positions")
}

fn arb_graph(rng: &mut Rng) -> Graph {
    let n = rng.below(40);
    Graph::from_triples((0..n).map(|_| arb_triple(rng)))
}

const CASES: u64 = 128;

#[test]
fn insert_then_contains() {
    for seed in 0..CASES {
        let rng = &mut Rng(seed);
        let mut g = arb_graph(rng);
        let t = arb_triple(rng);
        g.insert(&t);
        assert!(g.contains(&t));
    }
}

#[test]
fn remove_inverts_insert() {
    for seed in 0..CASES {
        let rng = &mut Rng(seed);
        let mut g = arb_graph(rng);
        let t = arb_triple(rng);
        g.insert(&t);
        g.remove(&t);
        assert!(!g.contains(&t));
    }
}

#[test]
fn all_indexes_agree() {
    for seed in 0..CASES {
        let rng = &mut Rng(seed);
        let g = arb_graph(rng);
        // Every triple found by the full scan is found by each
        // single-position probe, and counts match.
        let all: Vec<_> = g.iter_ids().collect();
        for t in &all {
            assert!(g.match_ids(Some(t.s), None, None).any(|x| x == *t));
            assert!(g.match_ids(None, Some(t.p), None).any(|x| x == *t));
            assert!(g.match_ids(None, None, Some(t.o)).any(|x| x == *t));
            assert_eq!(g.match_ids(Some(t.s), Some(t.p), Some(t.o)).count(), 1);
        }
        let by_pred: usize = {
            let mut preds: Vec<_> = all.iter().map(|t| t.p).collect();
            preds.sort();
            preds.dedup();
            preds
                .iter()
                .map(|p| g.match_ids(None, Some(*p), None).count())
                .sum()
        };
        assert_eq!(by_pred, g.len());
    }
}

#[test]
fn ntriples_roundtrip() {
    for seed in 0..CASES {
        let rng = &mut Rng(seed);
        let g = arb_graph(rng);
        let text = turtle::to_ntriples(&g);
        let g2 = turtle::parse(&text).expect("serialised graph reparses");
        assert_eq!(g, g2);
    }
}

#[test]
fn merge_is_union() {
    for seed in 0..CASES {
        let rng = &mut Rng(seed);
        let a = arb_graph(rng);
        let b = arb_graph(rng);
        let mut m = a.clone();
        m.merge(&b);
        for t in a.iter() {
            assert!(m.contains(&t));
        }
        for t in b.iter() {
            assert!(m.contains(&t));
        }
        // Merge is idempotent.
        let before = m.len();
        m.merge(&b);
        assert_eq!(m.len(), before);
    }
}

#[test]
fn storage_backends_agree_under_mixed_workloads() {
    // The sorted-run store must be observationally identical to the
    // B-tree oracle: same insert/remove results, same membership, and
    // the same triples in the same order for every pattern shape —
    // across flushes, tiered merges, tombstones and batch inserts.
    for seed in 0..24 {
        let rng = &mut Rng(1000 + seed);
        let mut runs = Graph::new();
        let mut btree = Graph::with_backend(StorageBackend::BTree);
        // Interleave single inserts, batches and removals. Volume is
        // chosen to exceed the tail threshold several times over.
        for _ in 0..rng.below(40) + 20 {
            match rng.below(4) {
                0 => {
                    // A batch large enough to flush straight into a run.
                    let batch: Vec<Triple> =
                        (0..rng.below(300) + 50).map(|_| arb_triple(rng)).collect();
                    let ids_runs: Vec<_> = batch
                        .iter()
                        .map(|t| {
                            let s = runs.intern(t.subject());
                            let p = runs.intern(t.predicate());
                            let o = runs.intern(t.object());
                            rps_rdf::IdTriple::new(s, p, o)
                        })
                        .collect();
                    let ids_btree: Vec<_> = batch
                        .iter()
                        .map(|t| {
                            let s = btree.intern(t.subject());
                            let p = btree.intern(t.predicate());
                            let o = btree.intern(t.object());
                            rps_rdf::IdTriple::new(s, p, o)
                        })
                        .collect();
                    assert_eq!(
                        runs.insert_batch(ids_runs),
                        btree.insert_batch(ids_btree),
                        "batch add counts agree"
                    );
                }
                1 => {
                    let t = arb_triple(rng);
                    assert_eq!(runs.remove(&t), btree.remove(&t));
                }
                _ => {
                    let t = arb_triple(rng);
                    assert_eq!(runs.insert(&t), btree.insert(&t));
                }
            }
            assert_eq!(runs.len(), btree.len());
        }
        assert_eq!(runs, btree, "same owned-triple sets");
        // Same interning sequence ⇒ comparable ids; check scan order for
        // every pattern shape over a sample of present triples.
        let all: Vec<_> = runs.iter_ids().collect();
        assert_eq!(all, btree.iter_ids().collect::<Vec<_>>());
        for t in all.iter().take(25) {
            for (s, p, o) in [
                (Some(t.s), None, None),
                (None, Some(t.p), None),
                (None, None, Some(t.o)),
                (Some(t.s), Some(t.p), None),
                (Some(t.s), None, Some(t.o)),
                (None, Some(t.p), Some(t.o)),
                (Some(t.s), Some(t.p), Some(t.o)),
            ] {
                let a: Vec<_> = runs.match_ids(s, p, o).collect();
                let b: Vec<_> = btree.match_ids(s, p, o).collect();
                assert_eq!(a, b, "pattern ({s:?},{p:?},{o:?})");
            }
        }
    }
}

#[test]
fn delta_windows_survive_removals_and_compaction() {
    // Satellite invariant: a mark taken at any point bounds exactly the
    // live triples inserted after it, regardless of how many flushes,
    // merges and tombstone purges happen around it.
    for seed in 0..16 {
        let rng = &mut Rng(2000 + seed);
        let mut g = Graph::new();
        // Phase 1: bulk load past several flush thresholds.
        for _ in 0..400 {
            g.insert(&arb_triple(rng));
        }
        let mark = g.log_len();
        let mut expected: Vec<rps_rdf::IdTriple> = Vec::new();
        // Phase 2: interleave inserts and removals; track what a
        // delta consumer must see (insertion order, minus triples
        // removed again before being consumed).
        for _ in 0..300 {
            if rng.below(3) == 0 {
                let t = arb_triple(rng);
                if g.remove(&t) {
                    // If it was a post-mark insertion, it must vanish
                    // from the window too.
                    let (Some(s), Some(p), Some(o)) = (
                        g.term_id(t.subject()),
                        g.term_id(t.predicate()),
                        g.term_id(t.object()),
                    ) else {
                        unreachable!("removed triple had interned terms")
                    };
                    expected.retain(|&x| x != rps_rdf::IdTriple::new(s, p, o));
                }
            } else {
                let t = arb_triple(rng);
                let s = g.intern(t.subject());
                let p = g.intern(t.predicate());
                let o = g.intern(t.object());
                if g.insert_ids(rps_rdf::IdTriple::new(s, p, o)) {
                    expected.push(rps_rdf::IdTriple::new(s, p, o));
                }
            }
        }
        let window: Vec<_> = g.log_since(mark).collect();
        assert_eq!(window, expected, "seed {seed}");
    }
}

#[test]
fn predicate_counts_consistent() {
    for seed in 0..CASES {
        let rng = &mut Rng(seed);
        let g = arb_graph(rng);
        let mut preds: Vec<_> = g.iter_ids().map(|t| t.p).collect();
        preds.sort();
        preds.dedup();
        for p in preds {
            assert_eq!(
                g.predicate_count(p),
                g.match_ids(None, Some(p), None).count()
            );
        }
    }
}
