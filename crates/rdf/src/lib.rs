//! # rps-rdf — RDF substrate for the RPS peer-to-peer integration system
//!
//! This crate implements the RDF data model of Section 2.1 of *Peer-to-Peer
//! Semantic Integration of Linked Data* (Dimartino, Calì, Poulovassilis,
//! Wood; EDBT/ICDT 2015 workshops): terms drawn from the pairwise-disjoint
//! sets `I` (IRIs), `B` (blank nodes) and `L` (literals); RDF triples
//! `(s, p, o) ∈ (I ∪ B) × I × (I ∪ B ∪ L)`; and RDF databases as sets of
//! triples.
//!
//! The concrete pieces are:
//!
//! * [`term`] — [`Term`], [`Iri`], [`BlankNode`], [`Literal`];
//! * [`dict`] — dictionary interning of terms to dense [`TermId`]s;
//! * [`triple`] — owned and interned triples, position helpers;
//! * [`graph`] — the indexed triple store ([`Graph`]) with SPO/POS/OSP
//!   permutation indexes answering all eight triple-pattern shapes via
//!   range scans;
//! * [`store`] — the physical index layouts behind [`StorageBackend`]:
//!   sorted-run / merge-batch storage (immutable sorted runs + mutable
//!   tail, size-tiered compaction) by default, with the historical
//!   B-tree layout kept as oracle and benchmark baseline;
//! * [`durable`] — the durable storage tier: graphs checkpoint to
//!   checksummed paged run files plus a write-ahead log behind an
//!   atomically-committed manifest ([`Graph::persist`] /
//!   [`Graph::open`] / [`DurableGraph`]), with crash recovery that
//!   replays the WAL and refuses corrupt state with typed errors;
//! * [`turtle`] — an N-Triples / Turtle-lite parser and serialiser;
//! * [`namespace`] — prefix maps and well-known vocabulary constants
//!   (notably `owl:sameAs`, which the paper's equivalence mappings model).
//!
//! The store is deliberately self-contained (no sophia/oxigraph): the paper
//! only requires the conjunctive fragment of SPARQL, and building the
//! substrate ourselves keeps the chase and rewriting engines in full
//! control of blank-node (labelled-null) identity.

#![warn(missing_docs)]

pub mod dict;
pub mod durable;
pub mod error;
pub mod graph;
pub mod namespace;
pub mod stats;
pub mod store;
pub mod term;
pub mod triple;
pub mod turtle;

pub use dict::{TermDict, TermId};
pub use durable::DurableGraph;
pub use error::RdfError;
pub use graph::{Graph, LogWindow, MatchIter};
pub use namespace::{vocab, PrefixMap};
pub use stats::{GraphStats, PredicateStats};
pub use store::{SealConfig, StorageBackend, StorageStats};
pub use term::{BlankNode, Iri, Literal, LiteralAnnotation, Term, TermKind};
pub use triple::{IdTriple, Triple, TriplePosition};
