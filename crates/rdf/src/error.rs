//! Error types for the RDF substrate.

use std::fmt;

/// Errors produced by the RDF layer (validation, parsing, durability).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdfError {
    /// A triple violated the RDF positional constraints.
    InvalidTriple(String),
    /// A syntax error while parsing N-Triples / Turtle-lite input.
    Parse {
        /// 1-based line of the error.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An undeclared prefix was used in a prefixed name.
    UnknownPrefix(String),
    /// An I/O failure while persisting or opening durable state. The
    /// original `std::io::Error` is flattened into its kind and message
    /// so the error type stays `Clone + Eq`.
    Io {
        /// What the failing operation was doing (e.g. `"write run file"`).
        context: String,
        /// The `std::io::ErrorKind` of the underlying failure.
        kind: std::io::ErrorKind,
        /// The underlying error's message.
        message: String,
    },
    /// Committed on-disk state failed validation: a bad magic number or
    /// checksum, a torn page, a manifest that references missing or
    /// inconsistent files. Recovery refuses to serve from such state
    /// rather than answering over silently wrong data. (A torn *WAL
    /// tail* is not corruption — it is discarded cleanly, see
    /// `store::wal`.)
    Corrupt {
        /// The offending file (or directory) as a display path.
        file: String,
        /// What failed to validate.
        detail: String,
    },
}

impl RdfError {
    /// Convenience constructor for parse errors.
    pub fn parse(line: usize, message: impl Into<String>) -> Self {
        RdfError::Parse {
            line,
            message: message.into(),
        }
    }

    /// Wraps an `std::io::Error`, recording what the operation was doing.
    pub fn io(context: impl Into<String>, err: &std::io::Error) -> Self {
        RdfError::Io {
            context: context.into(),
            kind: err.kind(),
            message: err.to_string(),
        }
    }

    /// Convenience constructor for corruption reports.
    pub fn corrupt(file: impl Into<String>, detail: impl Into<String>) -> Self {
        RdfError::Corrupt {
            file: file.into(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for RdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdfError::InvalidTriple(msg) => write!(f, "invalid triple: {msg}"),
            RdfError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            RdfError::UnknownPrefix(p) => write!(f, "unknown prefix: {p}"),
            RdfError::Io {
                context,
                kind,
                message,
            } => write!(
                f,
                "I/O error while trying to {context} ({kind:?}): {message}"
            ),
            RdfError::Corrupt { file, detail } => {
                write!(f, "corrupt durable state in {file}: {detail}")
            }
        }
    }
}

impl std::error::Error for RdfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            RdfError::InvalidTriple("x".into()).to_string(),
            "invalid triple: x"
        );
        assert_eq!(
            RdfError::parse(3, "bad token").to_string(),
            "parse error at line 3: bad token"
        );
        assert_eq!(
            RdfError::UnknownPrefix("foaf".into()).to_string(),
            "unknown prefix: foaf"
        );
    }
}
