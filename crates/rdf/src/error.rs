//! Error types for the RDF substrate.

use std::fmt;

/// Errors produced by the RDF layer (validation, parsing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdfError {
    /// A triple violated the RDF positional constraints.
    InvalidTriple(String),
    /// A syntax error while parsing N-Triples / Turtle-lite input.
    Parse {
        /// 1-based line of the error.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An undeclared prefix was used in a prefixed name.
    UnknownPrefix(String),
}

impl RdfError {
    /// Convenience constructor for parse errors.
    pub fn parse(line: usize, message: impl Into<String>) -> Self {
        RdfError::Parse {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for RdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdfError::InvalidTriple(msg) => write!(f, "invalid triple: {msg}"),
            RdfError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            RdfError::UnknownPrefix(p) => write!(f, "unknown prefix: {p}"),
        }
    }
}

impl std::error::Error for RdfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            RdfError::InvalidTriple("x".into()).to_string(),
            "invalid triple: x"
        );
        assert_eq!(
            RdfError::parse(3, "bad token").to_string(),
            "parse error at line 3: bad token"
        );
        assert_eq!(
            RdfError::UnknownPrefix("foaf".into()).to_string(),
            "unknown prefix: foaf"
        );
    }
}
