//! RDF triples, in both owned-term and interned-id form.

use crate::dict::TermId;
use crate::error::RdfError;
use crate::term::{Term, TermKind};
use std::fmt;

/// An owned RDF triple `(s, p, o) ∈ (I ∪ B) × I × (I ∪ B ∪ L)`.
///
/// Construction through [`Triple::new`] enforces the positional constraints
/// of the RDF data model (Section 2.1 of the paper).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    subject: Term,
    predicate: Term,
    object: Term,
}

impl Triple {
    /// Creates a triple, validating the RDF positional constraints:
    /// the subject must be an IRI or blank node, and the predicate an IRI.
    pub fn new(subject: Term, predicate: Term, object: Term) -> Result<Self, RdfError> {
        if subject.is_literal() {
            return Err(RdfError::InvalidTriple(
                "subject must be an IRI or blank node, found literal".into(),
            ));
        }
        if !predicate.is_iri() {
            return Err(RdfError::InvalidTriple("predicate must be an IRI".into()));
        }
        Ok(Triple {
            subject,
            predicate,
            object,
        })
    }

    /// Creates a triple without validation.
    ///
    /// Used internally when the components are already known to be valid
    /// (e.g. when materialising chase results whose positions are copied
    /// from existing triples).
    pub fn new_unchecked(subject: Term, predicate: Term, object: Term) -> Self {
        Triple {
            subject,
            predicate,
            object,
        }
    }

    /// The subject term.
    pub fn subject(&self) -> &Term {
        &self.subject
    }

    /// The predicate term.
    pub fn predicate(&self) -> &Term {
        &self.predicate
    }

    /// The object term.
    pub fn object(&self) -> &Term {
        &self.object
    }

    /// Destructures the triple into its components.
    pub fn into_parts(self) -> (Term, Term, Term) {
        (self.subject, self.predicate, self.object)
    }

    /// `true` iff no component is a blank node (the triple is "ground" in
    /// the labelled-null sense used by the chase).
    pub fn is_ground(&self) -> bool {
        !self.subject.is_blank() && !self.object.is_blank()
    }
}

impl fmt::Debug for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

/// An interned triple: three [`TermId`]s relative to some dictionary.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct IdTriple {
    /// Subject id.
    pub s: TermId,
    /// Predicate id.
    pub p: TermId,
    /// Object id.
    pub o: TermId,
}

impl IdTriple {
    /// Creates an interned triple.
    pub fn new(s: TermId, p: TermId, o: TermId) -> Self {
        IdTriple { s, p, o }
    }

    /// The component at a given [`TriplePosition`].
    pub fn get(&self, pos: TriplePosition) -> TermId {
        match pos {
            TriplePosition::Subject => self.s,
            TriplePosition::Predicate => self.p,
            TriplePosition::Object => self.o,
        }
    }

    /// Returns a copy with the component at `pos` replaced by `id`.
    pub fn with(&self, pos: TriplePosition, id: TermId) -> IdTriple {
        let mut t = *self;
        match pos {
            TriplePosition::Subject => t.s = id,
            TriplePosition::Predicate => t.p = id,
            TriplePosition::Object => t.o = id,
        }
        t
    }
}

/// One of the three positions of a triple.
///
/// Equivalence mappings `c ≡ₑ c'` propagate triples across all three
/// positions (the `subjQ`/`predQ`/`objQ` conditions of Definition 2), so
/// code frequently iterates over [`TriplePosition::ALL`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum TriplePosition {
    /// The subject position.
    Subject,
    /// The predicate position.
    Predicate,
    /// The object position.
    Object,
}

impl TriplePosition {
    /// All three positions, in subject/predicate/object order.
    pub const ALL: [TriplePosition; 3] = [
        TriplePosition::Subject,
        TriplePosition::Predicate,
        TriplePosition::Object,
    ];
}

/// Validates that a term may occupy a given triple position.
pub fn valid_at(kind: TermKind, pos: TriplePosition) -> bool {
    match pos {
        TriplePosition::Subject => kind != TermKind::Literal,
        TriplePosition::Predicate => kind == TermKind::Iri,
        TriplePosition::Object => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(s: &str) -> Term {
        Term::iri(s)
    }

    #[test]
    fn valid_triple() {
        let t = Triple::new(iri("s"), iri("p"), Term::literal("o")).unwrap();
        assert_eq!(t.subject(), &iri("s"));
        assert_eq!(t.predicate(), &iri("p"));
        assert_eq!(t.object(), &Term::literal("o"));
        assert!(t.is_ground());
    }

    #[test]
    fn literal_subject_rejected() {
        assert!(Triple::new(Term::literal("s"), iri("p"), iri("o")).is_err());
    }

    #[test]
    fn non_iri_predicate_rejected() {
        assert!(Triple::new(iri("s"), Term::blank("p"), iri("o")).is_err());
        assert!(Triple::new(iri("s"), Term::literal("p"), iri("o")).is_err());
    }

    #[test]
    fn blank_nodes_allowed_in_subject_and_object() {
        let t = Triple::new(Term::blank("x"), iri("p"), Term::blank("y")).unwrap();
        assert!(!t.is_ground());
    }

    #[test]
    fn id_triple_position_access() {
        let t = IdTriple::new(TermId(1), TermId(2), TermId(3));
        assert_eq!(t.get(TriplePosition::Subject), TermId(1));
        assert_eq!(t.get(TriplePosition::Predicate), TermId(2));
        assert_eq!(t.get(TriplePosition::Object), TermId(3));
        let t2 = t.with(TriplePosition::Object, TermId(9));
        assert_eq!(t2.o, TermId(9));
        assert_eq!(t2.s, TermId(1));
    }

    #[test]
    fn position_validity() {
        assert!(valid_at(TermKind::Iri, TriplePosition::Subject));
        assert!(valid_at(TermKind::Blank, TriplePosition::Subject));
        assert!(!valid_at(TermKind::Literal, TriplePosition::Subject));
        assert!(valid_at(TermKind::Iri, TriplePosition::Predicate));
        assert!(!valid_at(TermKind::Blank, TriplePosition::Predicate));
        assert!(valid_at(TermKind::Literal, TriplePosition::Object));
    }

    #[test]
    fn display_roundtrip_shape() {
        let t = Triple::new(iri("http://e/s"), iri("http://e/p"), Term::literal("v")).unwrap();
        assert_eq!(t.to_string(), "<http://e/s> <http://e/p> \"v\" .");
    }
}
