//! Planner statistics snapshot over a sealed graph.
//!
//! [`GraphStats`] is the cost model's view of a [`Graph`](crate::Graph):
//! per-predicate triple counts with distinct-subject/object counts, the
//! global distinct-term cardinalities, and the min/max key bounds of the
//! sealed SPO/POS scans. It is built lazily on first request against a
//! *sealed* graph (two O(n) passes over the permutation indexes — no
//! hashing of triples, the sorted scan orders make every distinct count a
//! transition count) and cached until the next mutation. The snapshot is
//! immutable and `Arc`-shared, so a frozen session's many threads read it
//! without synchronisation.
//!
//! Consumers: the cost-based join orderer in `rps-query` (see
//! `JoinOrder::CostBased` there) and the flat counters surfaced through
//! [`StorageStats`](crate::StorageStats) (`stats_*` fields).

use crate::dict::TermId;
use crate::triple::IdTriple;
use std::collections::BTreeMap;

/// Per-predicate statistics: how many triples carry the predicate, and
/// how many distinct subjects/objects they spread over. The ratios
/// `count / distinct_subjects` and `count / distinct_objects` are the
/// expected fan-out of a subject- or object-bound probe — exactly the
/// selectivities a join orderer needs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PredicateStats {
    /// Triples whose predicate is this predicate.
    pub count: usize,
    /// Distinct subjects among those triples.
    pub distinct_subjects: usize,
    /// Distinct objects among those triples.
    pub distinct_objects: usize,
}

/// An immutable statistics snapshot of a sealed graph, produced by
/// [`Graph::graph_stats`](crate::Graph::graph_stats).
#[derive(Clone, Debug, Default)]
pub struct GraphStats {
    /// Per-predicate statistics, keyed by the predicate's term id.
    pub(crate) preds: BTreeMap<TermId, PredicateStats>,
    /// Total triples in the snapshot.
    pub triples: usize,
    /// Distinct subjects across the whole graph.
    pub distinct_subjects: usize,
    /// Distinct objects across the whole graph.
    pub distinct_objects: usize,
    /// First and last key of the sealed SPO scan (`None` when empty) —
    /// the run min/max bounds the store's pruning already works from,
    /// recorded here so the planner can zero-estimate constants outside
    /// the key space.
    pub spo_bounds: Option<(IdTriple, IdTriple)>,
    /// First and last key of the sealed POS scan (`None` when empty).
    pub pos_bounds: Option<(IdTriple, IdTriple)>,
    /// Wall time the two statistics passes took, in nanoseconds.
    pub build_nanos: u64,
}

impl GraphStats {
    /// The statistics for predicate `p`, or `None` when no triple
    /// carries it (the planner treats that as cardinality zero).
    pub fn predicate(&self, p: TermId) -> Option<&PredicateStats> {
        self.preds.get(&p)
    }

    /// Number of distinct predicates in the snapshot.
    pub fn predicates(&self) -> usize {
        self.preds.len()
    }

    /// Iterates the per-predicate statistics in predicate-id order.
    pub fn iter_predicates(&self) -> impl Iterator<Item = (TermId, &PredicateStats)> {
        self.preds.iter().map(|(p, s)| (*p, s))
    }
}
