//! Sorted-run / merge-batch triple storage — the physical layer under
//! [`Graph`](crate::graph::Graph).
//!
//! The logical contract of the store is small: a *set* of `[u32; 3]` keys
//! per permutation (SPO, POS, OSP), answering membership probes and
//! contiguous range scans in key order. This module provides two
//! interchangeable implementations behind [`StorageBackend`]:
//!
//! * [`StorageBackend::SortedRuns`] (the default) — an LSM-flavoured
//!   layout. Each permutation index is a stack of **immutable sorted
//!   runs** (`Vec<[u32; 3]>`) plus one shared, insertion-ordered mutable
//!   **tail** kept sorted in each permutation's key order. Inserts are
//!   an `O(1)` hash probe plus three small sorted-tail insertions; when
//!   the tail reaches [`TAIL_MAX`] entries it becomes a fresh run per
//!   permutation, and a **size-tiered compaction** merges
//!   neighbouring runs while the older run is within `TIER_FACTOR`
//!   (4) times the newer one — keeping the run count logarithmic in
//!   the store size.
//!   Range scans binary-search every run — and the tail, which is kept
//!   sorted per permutation — for the key range and k-way merge the
//!   resulting slices, so iteration order is identical to a B-tree
//!   range scan and scan setup allocates nothing beyond the head list. Removals from runs are **tombstones** in a side set,
//!   filtered during scans and physically dropped by a full compaction
//!   once they outnumber half the run-resident keys.
//!
//! * [`StorageBackend::BTree`] — the original three
//!   `BTreeSet<[u32; 3]>` permutation indexes, retained as a correctness
//!   oracle and benchmark baseline (experiment `e13` in `rps-bench`
//!   measures both).
//!
//! **Why runs beat trees here.** The chase workload is insert-dominated:
//! every equivalence repair and GMA firing inserts triples, and each
//! insert into a balanced tree pays three `O(log n)` node traversals
//! with poor cache locality. The sorted-run layout moves that cost into
//! batched `sort_unstable` + linear merges — sequential memory traffic
//! that amortises to `O(log n)` comparisons per key — while keeping
//! scans contiguous. The same key never occurs in more than one run (or
//! the tail), so merged iteration needs no deduplication.
//!
//! Invariants relied on by [`Graph`](crate::graph::Graph):
//!
//! 1. a key is stored in **at most one** place: one run or the tail;
//! 2. `dead` (tombstoned SPO keys) only ever names keys inside runs —
//!    tail entries are removed physically — and a live copy of a key
//!    never coexists with a tombstoned one (re-insertion *revives* the
//!    run copy instead of adding another);
//! 3. the three permutation tails hold the same triples, each sorted in
//!    its own key order;
//! 4. compaction never changes the logical key set, so the insertion
//!    log kept by `Graph` (and every outstanding mark into it) is
//!    unaffected by flushes, merges and purges.
//!
//! ```
//! use rps_rdf::{Graph, StorageBackend, Term};
//!
//! let mut g = Graph::new();
//! assert_eq!(g.backend(), StorageBackend::SortedRuns);
//! for i in 0..1000 {
//!     g.insert_terms(
//!         Term::iri(format!("s{i}")), Term::iri("p"), Term::iri("o"),
//!     ).unwrap();
//! }
//! let stats = g.storage_stats();
//! // Tiered compaction keeps the run count logarithmic while the tail
//! // stays below its flush threshold.
//! assert!(stats.runs >= 1 && stats.runs <= 8, "{stats:?}");
//! assert!(stats.tail < 128);
//! assert_eq!(stats.run_keys + stats.tail, 1000);
//! ```

pub(crate) mod columnar;
pub mod disk;
pub mod page;
pub mod wal;

use crate::dict::TermId;
use crate::triple::IdTriple;
use columnar::{ColScan, ColumnarRun};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Tail capacity before a flush turns it into a sorted run.
///
/// Small enough that the sorted-insertion memmove (the tail is kept in
/// key order per permutation) stays a fraction of a cache line's worth
/// of work; large enough that flush sorting and tiered merging
/// amortise well. Exposed for documentation; not currently tunable per
/// graph.
pub const TAIL_MAX: usize = 128;

/// Tombstone count that triggers a full purge-compaction (together with
/// the relative threshold: dead keys must also outnumber half the
/// run-resident keys).
const PURGE_MIN: usize = 1024;

/// Size-tiering factor: a freshly pushed run cascades merges upward
/// until the next-older run is more than this many times its size. The
/// total merge traffic per key is `O(factor × log_factor n)` — constant
/// across factors — while the run count (and with it every scan's merge
/// width and every range's binary-search count) shrinks as the factor
/// grows, so a moderately aggressive factor favours the read path.
const TIER_FACTOR: usize = 4;

/// Merge width at or above which a range scan replaces the linear-min
/// k-way merge with a loser tree. Below this, scanning every head is
/// cheaper than maintaining the tournament; at 8+ sources (a sharded
/// sealed graph plus a few fresh runs) the tree's `O(log k)` replay
/// wins.
const LOSER_TREE_MIN: usize = 8;

/// How a [`Graph`](crate::graph::Graph) is physically laid out when it
/// is sealed via [`Graph::seal_with`](crate::graph::Graph::seal_with).
///
/// The default (`shards: 1`, no compression) is the classic sealed
/// form: one purged sorted-run stack per permutation. Raising `shards`
/// partitions the live keys by **subject hash** into that many
/// independent per-shard run sets — the substrate morsel-driven
/// parallel execution scans — and `compress` stores each large enough
/// shard run delta-varint encoded (the `store::columnar` module).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SealConfig {
    /// Number of subject-hash shards; `0` means "auto" (the machine's
    /// available parallelism), `1` means the classic unsharded form.
    pub shards: usize,
    /// Store shard runs delta-varint compressed when they are at least
    /// `compress_min_keys` long.
    pub compress: bool,
    /// Minimum keys in a shard before compression is worth the decode
    /// cost of its scans.
    pub compress_min_keys: usize,
}

impl Default for SealConfig {
    fn default() -> Self {
        SealConfig {
            shards: 1,
            compress: false,
            compress_min_keys: 256,
        }
    }
}

impl SealConfig {
    /// Resolves `shards: 0` ("auto") to the machine's available
    /// parallelism.
    pub fn effective_shards(&self) -> usize {
        match self.shards {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }
}

/// Maps a subject id to its shard. A SplitMix-style multiply-xor mix so
/// that dense interned ids (the common case) spread evenly instead of
/// striping by allocation order.
pub(crate) fn shard_of(s: u32, shards: usize) -> usize {
    let mut h = (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 32;
    (h % shards as u64) as usize
}

/// Which physical index layout a [`Graph`](crate::graph::Graph) uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum StorageBackend {
    /// Immutable sorted runs + mutable tail with size-tiered compaction
    /// (the default; see the module docs).
    #[default]
    SortedRuns,
    /// Three `BTreeSet<[u32; 3]>` permutation indexes (the historical
    /// layout, kept as oracle and benchmark baseline).
    BTree,
}

/// Counters describing the physical state of a store — used by tests
/// (to force and observe compaction) and by the `e13` storage benchmark.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct StorageStats {
    /// Immutable sorted runs per permutation index.
    pub runs: usize,
    /// Keys in the mutable tail (shared across the three permutations).
    pub tail: usize,
    /// Tombstoned keys awaiting a purge-compaction (always 0 for the
    /// B-tree backend, which removes in place).
    pub tombstones: usize,
    /// Keys resident in runs (live + tombstoned).
    pub run_keys: usize,
    /// Pages written by `Graph::persist` checkpoints over this graph's
    /// lifetime (0 until the graph touches the durable tier).
    pub pages_written: u64,
    /// Pages physically read through the buffer pool while opening or
    /// scanning persisted state.
    pub pages_read: u64,
    /// Buffer-pool pins served from a resident frame.
    pub pool_hits: u64,
    /// Buffer-pool pins that had to read from disk.
    pub pool_misses: u64,
    /// Bytes appended to the write-ahead log (frames + magic).
    pub wal_bytes: u64,
    /// WAL records replayed into the tail during recovery.
    pub wal_replayed: u64,
    /// Subject-hash shards in the sealed form (0 when unsharded).
    pub shards: usize,
    /// Keys resident in shard runs (disjoint from `run_keys`).
    pub shard_keys: usize,
    /// Shard runs stored delta-varint compressed (across permutations).
    pub compressed_runs: usize,
    /// Resident bytes of the compressed runs (codes + sync tables).
    pub compressed_bytes: usize,
    /// Bytes the same keys would occupy as plain `[u32; 3]` runs.
    pub compressed_raw_bytes: usize,
    /// Morsels handed to workers by parallel query execution over this
    /// graph.
    pub morsels_dispatched: u64,
    /// Morsels a worker claimed outside its round-robin share — the
    /// work-stealing that keeps uneven morsels from idling workers.
    pub morsel_steals: u64,
    /// Range scans that engaged the loser-tree merge (width ≥ 8).
    pub loser_tree_merges: u64,
    /// Widest k-way merge any scan of this graph has performed.
    pub widest_merge: u64,
    /// Distinct predicates in the planner statistics snapshot (0 until
    /// [`Graph::graph_stats`](crate::Graph::graph_stats) has built one).
    pub stats_predicates: usize,
    /// Distinct subjects across the graph per the statistics snapshot.
    pub stats_distinct_subjects: usize,
    /// Distinct objects across the graph per the statistics snapshot.
    pub stats_distinct_objects: usize,
    /// Wall nanoseconds the statistics build passes took (0 until
    /// built).
    pub stats_build_nanos: u64,
}

/// A live-only image of a store's physical shape, produced by
/// [`TripleStore::snapshot`] for the durable tier.
pub(crate) struct RunSnapshot {
    /// Live keys of each permutation's runs (SPO, POS, OSP order),
    /// oldest first, each sorted; empty runs are dropped.
    pub(crate) runs: [Vec<Vec<[u32; 3]>>; 3],
    /// Live tail triples in SPO key order.
    pub(crate) tail: Vec<IdTriple>,
}

/// One of the three permutation orders.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Perm {
    /// subject, predicate, object
    Spo,
    /// predicate, object, subject
    Pos,
    /// object, subject, predicate
    Osp,
}

impl Perm {
    /// Rebuilds the triple from a key in this permutation's order.
    pub(crate) fn unpermute(&self, key: [u32; 3]) -> IdTriple {
        let [a, b, c] = key;
        match self {
            Perm::Spo => IdTriple::new(TermId(a), TermId(b), TermId(c)),
            Perm::Pos => IdTriple::new(TermId(c), TermId(a), TermId(b)),
            Perm::Osp => IdTriple::new(TermId(b), TermId(c), TermId(a)),
        }
    }

    /// Projects a triple into this permutation's key order.
    fn permute(&self, t: IdTriple) -> [u32; 3] {
        match self {
            Perm::Spo => [t.s.0, t.p.0, t.o.0],
            Perm::Pos => [t.p.0, t.o.0, t.s.0],
            Perm::Osp => [t.o.0, t.s.0, t.p.0],
        }
    }
}

fn spo_key(t: IdTriple) -> [u32; 3] {
    [t.s.0, t.p.0, t.o.0]
}

/// The physical triple store: three permutation indexes in one of the
/// two layouts. All members take/return SPO-keyed [`IdTriple`]s; the
/// permutation plumbing is internal.
// One store per graph, never collections of them — the size gap
// between the layouts costs nothing, so indirection would only add a
// pointer chase to every triple operation.
#[allow(clippy::large_enum_variant)]
#[derive(Clone)]
pub(crate) enum TripleStore {
    BTree(BTreeStore),
    Runs(RunStore),
}

impl Default for TripleStore {
    fn default() -> Self {
        TripleStore::new(StorageBackend::default())
    }
}

impl TripleStore {
    pub(crate) fn new(backend: StorageBackend) -> Self {
        match backend {
            StorageBackend::BTree => TripleStore::BTree(BTreeStore::default()),
            StorageBackend::SortedRuns => TripleStore::Runs(RunStore::default()),
        }
    }

    pub(crate) fn backend(&self) -> StorageBackend {
        match self {
            TripleStore::BTree(_) => StorageBackend::BTree,
            TripleStore::Runs(_) => StorageBackend::SortedRuns,
        }
    }

    pub(crate) fn stats(&self) -> StorageStats {
        match self {
            TripleStore::BTree(_) => StorageStats::default(),
            TripleStore::Runs(s) => {
                let mut compressed_runs = 0;
                let mut compressed_bytes = 0;
                let mut compressed_raw_bytes = 0;
                for shard in &s.shards {
                    for run in [&shard.spo, &shard.pos, &shard.osp] {
                        if let SealedRun::Compressed(c) = run {
                            compressed_runs += 1;
                            compressed_bytes += c.encoded_bytes();
                            compressed_raw_bytes += c.raw_bytes();
                        }
                    }
                }
                StorageStats {
                    runs: s.spo.runs.len(),
                    tail: s.spo.tail.len(),
                    tombstones: s.dead.len(),
                    run_keys: s.spo.runs.iter().map(|r| r.len()).sum(),
                    shards: s.shards.len(),
                    shard_keys: s.shards.iter().map(|sh| sh.spo.len()).sum(),
                    compressed_runs,
                    compressed_bytes,
                    compressed_raw_bytes,
                    ..StorageStats::default()
                }
            }
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            TripleStore::BTree(s) => s.spo.len(),
            TripleStore::Runs(s) => s.len(),
        }
    }

    pub(crate) fn contains(&self, t: IdTriple) -> bool {
        match self {
            TripleStore::BTree(s) => s.spo.contains(&spo_key(t)),
            TripleStore::Runs(s) => s.contains(spo_key(t)),
        }
    }

    /// Inserts one triple; `true` iff it was not already present.
    pub(crate) fn insert(&mut self, t: IdTriple) -> bool {
        match self {
            TripleStore::BTree(s) => s.insert(t),
            TripleStore::Runs(s) => s.insert(t),
        }
    }

    /// Inserts many triples, pushing those actually added (first
    /// occurrence wins; duplicates and already-present keys are skipped)
    /// onto `added` in input order. For the sorted-run backend, a batch
    /// that overflows the tail is sorted **once** into a fresh run per
    /// permutation instead of paying per-key tail pushes and repeated
    /// flushes.
    pub(crate) fn insert_batch(
        &mut self,
        triples: impl Iterator<Item = IdTriple>,
        added: &mut Vec<IdTriple>,
    ) {
        match self {
            TripleStore::BTree(s) => {
                for t in triples {
                    if s.insert(t) {
                        added.push(t);
                    }
                }
            }
            TripleStore::Runs(s) => s.insert_batch(triples, added),
        }
    }

    /// Removes one triple; `true` iff it was present.
    pub(crate) fn remove(&mut self, t: IdTriple) -> bool {
        match self {
            TripleStore::BTree(s) => s.remove(t),
            TripleStore::Runs(s) => s.remove(t),
        }
    }

    /// Seals the physical layout for read-only sharing: the sorted-run
    /// backend flushes the mutable tail into a run and physically purges
    /// all tombstones, so subsequent scans merge immutable runs only
    /// (no tail subslice, no per-key tombstone probe). The logical key
    /// set is unchanged; the B-tree backend is a no-op. A sealed store
    /// accepts further writes (they simply start a new tail).
    pub(crate) fn seal(&mut self) {
        if let TripleStore::Runs(s) = self {
            s.seal();
        }
    }

    /// Seals into the physical layout described by `cfg`: live keys are
    /// repartitioned by subject hash into `cfg.effective_shards()`
    /// independent per-shard run sets (optionally delta-varint
    /// compressed), or folded back into the classic unsharded form for
    /// `shards <= 1` without compression. Logical content is untouched;
    /// the B-tree backend ignores the config ([`Self::seal`] semantics).
    pub(crate) fn seal_with(&mut self, cfg: &SealConfig) {
        if let TripleStore::Runs(s) = self {
            s.seal_with(cfg);
        }
    }

    /// `true` iff the store is in the sealed shape ([`Self::seal`]):
    /// empty tail, no tombstones. Trivially true for the B-tree backend.
    pub(crate) fn is_sealed(&self) -> bool {
        match self {
            TripleStore::BTree(_) => true,
            TripleStore::Runs(s) => s.spo.tail.is_empty() && s.dead.len() == 0,
        }
    }

    /// A live-only image of the physical shape, taken by the durable
    /// tier when writing a checkpoint. Tombstoned keys are filtered out
    /// of the run images — a persist doubles as a purge-compaction —
    /// and the mutable tail comes back as SPO-ordered triples so the
    /// checkpoint can re-log it through the WAL. The B-tree backend
    /// snapshots as one full run per permutation.
    pub(crate) fn snapshot(&self) -> RunSnapshot {
        match self {
            TripleStore::BTree(s) => RunSnapshot {
                runs: [
                    if s.spo.is_empty() {
                        Vec::new()
                    } else {
                        vec![s.spo.iter().copied().collect()]
                    },
                    if s.pos.is_empty() {
                        Vec::new()
                    } else {
                        vec![s.pos.iter().copied().collect()]
                    },
                    if s.osp.is_empty() {
                        Vec::new()
                    } else {
                        vec![s.osp.iter().copied().collect()]
                    },
                ],
                tail: Vec::new(),
            },
            TripleStore::Runs(s) => {
                let live = |perm: Perm, index: &RunIndex| -> Vec<Vec<[u32; 3]>> {
                    index
                        .runs
                        .iter()
                        .map(|run| {
                            if s.dead.len() == 0 {
                                run.as_ref().clone()
                            } else {
                                run.iter()
                                    .copied()
                                    .filter(|k| !s.dead.contains(spo_key(perm.unpermute(*k))))
                                    .collect()
                            }
                        })
                        .filter(|run: &Vec<[u32; 3]>| !run.is_empty())
                        .collect()
                };
                let mut runs = [
                    live(Perm::Spo, &s.spo),
                    live(Perm::Pos, &s.pos),
                    live(Perm::Osp, &s.osp),
                ];
                // Shard runs persist as additional plain run images —
                // the durable tier (and `from_runs` recovery) stays
                // unsharded; re-seal with a config to reshard after
                // opening.
                for shard in &s.shards {
                    for (slot, perm, run) in [
                        (0, Perm::Spo, &shard.spo),
                        (1, Perm::Pos, &shard.pos),
                        (2, Perm::Osp, &shard.osp),
                    ] {
                        let mut keys = run.decode_keys();
                        if s.dead.len() > 0 {
                            keys.retain(|k| !s.dead.contains(spo_key(perm.unpermute(*k))));
                        }
                        if !keys.is_empty() {
                            runs[slot].push(keys);
                        }
                    }
                }
                RunSnapshot {
                    runs,
                    // Tail keys are never tombstoned (removals from the
                    // tail are physical), so the tail is live as-is.
                    tail: s.spo.tail.iter().map(|&k| Perm::Spo.unpermute(k)).collect(),
                }
            }
        }
    }

    /// Rebuilds a sorted-run store from persisted run images, validating
    /// every structural invariant recovery depends on: each run strictly
    /// sorted, every id below `max_term`, no key stored twice, and the
    /// three permutations describing the same triple set. Violations are
    /// reported as a description for the caller to wrap in a typed
    /// corruption error — never a panic.
    pub(crate) fn from_runs(
        runs: [Vec<Vec<[u32; 3]>>; 3],
        max_term: u32,
    ) -> Result<TripleStore, String> {
        let mut present = KeySet::default();
        let [spo_runs, pos_runs, osp_runs] = runs;
        for (perm, perm_runs) in [
            (Perm::Spo, &spo_runs),
            (Perm::Pos, &pos_runs),
            (Perm::Osp, &osp_runs),
        ] {
            for (ri, run) in perm_runs.iter().enumerate() {
                for (i, &key) in run.iter().enumerate() {
                    if key.iter().any(|&id| id >= max_term) {
                        return Err(format!(
                            "{perm:?} run {ri} references term id beyond the dictionary \
                             ({key:?}, {max_term} terms)"
                        ));
                    }
                    if i > 0 && run[i - 1] >= key {
                        return Err(format!("{perm:?} run {ri} is not strictly sorted"));
                    }
                    if perm == Perm::Spo && !present.insert(key) {
                        return Err(format!("SPO key {key:?} stored more than once"));
                    }
                }
            }
        }
        let spo_total: usize = spo_runs.iter().map(Vec::len).sum();
        for (perm, perm_runs) in [(Perm::Pos, &pos_runs), (Perm::Osp, &osp_runs)] {
            let total: usize = perm_runs.iter().map(Vec::len).sum();
            if total != spo_total {
                return Err(format!(
                    "{perm:?} holds {total} keys, SPO holds {spo_total}"
                ));
            }
            for run in perm_runs.iter() {
                for &key in run {
                    if !present.contains(spo_key(perm.unpermute(key))) {
                        return Err(format!(
                            "{perm:?} key {key:?} names a triple absent from SPO"
                        ));
                    }
                }
            }
        }
        Ok(TripleStore::Runs(RunStore {
            spo: RunIndex {
                runs: spo_runs.into_iter().map(Arc::new).collect(),
                tail: Vec::new(),
            },
            pos: RunIndex {
                runs: pos_runs.into_iter().map(Arc::new).collect(),
                tail: Vec::new(),
            },
            osp: RunIndex {
                runs: osp_runs.into_iter().map(Arc::new).collect(),
                tail: Vec::new(),
            },
            present,
            dead: KeySet::default(),
            shards: Vec::new(),
        }))
    }

    /// A contiguous scan of `perm`'s index over the inclusive key range,
    /// yielding triples in that permutation's key order.
    pub(crate) fn range(&self, perm: Perm, lo: [u32; 3], hi: [u32; 3]) -> StoreRangeIter<'_> {
        match self {
            TripleStore::BTree(s) => {
                let index = match perm {
                    Perm::Spo => &s.spo,
                    Perm::Pos => &s.pos,
                    Perm::Osp => &s.osp,
                };
                StoreRangeIter::BTree {
                    iter: index.range(lo..=hi),
                    perm,
                }
            }
            TripleStore::Runs(s) => StoreRangeIter::Runs(s.range(perm, lo, hi)),
        }
    }
}

/// The historical layout: one `BTreeSet` per permutation.
#[derive(Clone, Default)]
pub(crate) struct BTreeStore {
    spo: BTreeSet<[u32; 3]>,
    pos: BTreeSet<[u32; 3]>,
    osp: BTreeSet<[u32; 3]>,
}

impl BTreeStore {
    fn insert(&mut self, t: IdTriple) -> bool {
        let added = self.spo.insert(Perm::Spo.permute(t));
        if added {
            self.pos.insert(Perm::Pos.permute(t));
            self.osp.insert(Perm::Osp.permute(t));
        }
        added
    }

    fn remove(&mut self, t: IdTriple) -> bool {
        let removed = self.spo.remove(&Perm::Spo.permute(t));
        if removed {
            self.pos.remove(&Perm::Pos.permute(t));
            self.osp.remove(&Perm::Osp.permute(t));
        }
        removed
    }
}

/// One permutation's sorted-run stack plus its view of the mutable
/// tail.
#[derive(Clone, Default)]
struct RunIndex {
    /// Immutable sorted runs, oldest first. Sizes decrease towards the
    /// newest run by at least the tiering factor, so there are
    /// `O(log n)` of them. Each run is `Arc`-shared: once written it is
    /// never mutated (compaction replaces whole runs), so cloning a
    /// graph — which the live epoch-publication path does once per
    /// committed epoch — shares the key arrays instead of deep-copying
    /// them.
    runs: Vec<Arc<Vec<[u32; 3]>>>,
    /// The mutable tail, **kept sorted in this permutation's key
    /// order** (binary-search insertion; the tail is at most
    /// [`TAIL_MAX`] 12-byte keys, so the shift is one small memmove).
    /// Scans then take a `partition_point` subslice of it with no
    /// per-scan allocation, filtering or sorting — the tail is just one
    /// more merge source. All three permutations' tails hold the same
    /// triples, each in its own order.
    tail: Vec<[u32; 3]>,
}

impl RunIndex {
    /// The subslices of each run — and of the sorted tail — intersecting
    /// `lo..=hi`. Each source is a sorted vector, so its first and last
    /// entries are its min/max key: a run whose key range cannot
    /// intersect the scan range is skipped with two O(1) comparisons
    /// before any binary search runs. On clustered key ranges (a fresh
    /// predicate or subject landing in one recent run) this prunes most
    /// of the run stack per scan.
    fn sorted_slices(&self, lo: [u32; 3], hi: [u32; 3]) -> Vec<&[[u32; 3]]> {
        let mut out = Vec::with_capacity(self.runs.len() + 1);
        for source in self
            .runs
            .iter()
            .map(|r| r.as_slice())
            .chain(std::iter::once(self.tail.as_slice()))
        {
            match (source.first(), source.last()) {
                (Some(min), Some(max)) if *min <= hi && lo <= *max => {}
                _ => continue, // empty, or disjoint from [lo, hi]
            }
            let start = source.partition_point(|k| *k < lo);
            let end = source.partition_point(|k| *k <= hi);
            if start < end {
                out.push(&source[start..end]);
            }
        }
        out
    }

    /// Inserts a key into the sorted tail. The caller guarantees it is
    /// not already present anywhere in the store.
    fn tail_insert(&mut self, key: [u32; 3]) {
        let at = self.tail.partition_point(|k| *k < key);
        self.tail.insert(at, key);
    }

    /// Removes a key from the sorted tail; `true` iff it was there.
    fn tail_remove(&mut self, key: [u32; 3]) -> bool {
        match self.tail.binary_search(&key) {
            Ok(i) => {
                self.tail.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Appends a new sorted run and merges neighbours while the older
    /// run is within the tiering factor of the newer one.
    fn push_run_tiered(&mut self, run: Vec<[u32; 3]>) {
        if run.is_empty() {
            return;
        }
        self.runs.push(Arc::new(run));
        while self.runs.len() >= 2 {
            let newer = self.runs[self.runs.len() - 1].len();
            let older = self.runs[self.runs.len() - 2].len();
            if older > newer * TIER_FACTOR {
                break;
            }
            let b = self.runs.pop().expect("len checked");
            let a = self.runs.pop().expect("len checked");
            self.runs.push(Arc::new(merge_sorted(&a, &b)));
        }
    }
}

/// Two-pointer merge of disjoint sorted key vectors.
fn merge_sorted(a: &[[u32; 3]], b: &[[u32; 3]]) -> Vec<[u32; 3]> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// One sealed shard run in either physical representation. Chosen per
/// shard at [`RunStore::seal_with`] time; scans are
/// representation-agnostic.
#[derive(Clone)]
enum SealedRun {
    /// A plain sorted key vector — binary-searched like any other run.
    Plain(Arc<Vec<[u32; 3]>>),
    /// Delta-varint columnar form — seek via sync table, then
    /// sequential decode.
    Compressed(Arc<ColumnarRun>),
}

impl SealedRun {
    fn new(keys: Vec<[u32; 3]>, compress: bool) -> SealedRun {
        if compress && !keys.is_empty() {
            SealedRun::Compressed(Arc::new(ColumnarRun::encode(&keys)))
        } else {
            SealedRun::Plain(Arc::new(keys))
        }
    }

    fn len(&self) -> usize {
        match self {
            SealedRun::Plain(v) => v.len(),
            SealedRun::Compressed(c) => c.len(),
        }
    }

    /// The keys back as a plain sorted vector (snapshotting, resealing,
    /// tombstone purges).
    fn decode_keys(&self) -> Vec<[u32; 3]> {
        match self {
            SealedRun::Plain(v) => v.as_ref().clone(),
            SealedRun::Compressed(c) => c.decode_all(),
        }
    }

    /// A merge source over `self ∩ [lo, hi]`, if non-empty.
    fn source<'g>(&'g self, lo: [u32; 3], hi: [u32; 3]) -> Option<ScanSource<'g>> {
        match self {
            SealedRun::Plain(v) => {
                match (v.first(), v.last()) {
                    (Some(min), Some(max)) if *min <= hi && lo <= *max => {}
                    _ => return None,
                }
                let start = v.partition_point(|k| *k < lo);
                let end = v.partition_point(|k| *k <= hi);
                (start < end).then(|| ScanSource::Slice(&v[start..end]))
            }
            SealedRun::Compressed(c) => {
                ColScan::over(c, lo, hi).map(|s| ScanSource::Col(Box::new(s)))
            }
        }
    }
}

/// One subject-hash shard of a sealed store: a single run per
/// permutation holding exactly the keys whose subject hashes to this
/// shard. Shards are mutually disjoint and disjoint from the unsharded
/// runs and tail, so merged scans need no deduplication — the same
/// invariant the unsharded layout relies on.
#[derive(Clone)]
struct Shard {
    spo: SealedRun,
    pos: SealedRun,
    osp: SealedRun,
}

impl Shard {
    /// Builds a shard from its (already sorted, disjoint) SPO keys.
    fn build(spo_keys: Vec<[u32; 3]>, cfg: &SealConfig) -> Shard {
        let compress = cfg.compress && spo_keys.len() >= cfg.compress_min_keys;
        let mut pos_keys: Vec<[u32; 3]> = spo_keys
            .iter()
            .map(|&k| Perm::Pos.permute(Perm::Spo.unpermute(k)))
            .collect();
        pos_keys.sort_unstable();
        let mut osp_keys: Vec<[u32; 3]> = spo_keys
            .iter()
            .map(|&k| Perm::Osp.permute(Perm::Spo.unpermute(k)))
            .collect();
        osp_keys.sort_unstable();
        Shard {
            spo: SealedRun::new(spo_keys, compress),
            pos: SealedRun::new(pos_keys, compress),
            osp: SealedRun::new(osp_keys, compress),
        }
    }

    fn run(&self, perm: Perm) -> &SealedRun {
        match perm {
            Perm::Spo => &self.spo,
            Perm::Pos => &self.pos,
            Perm::Osp => &self.osp,
        }
    }

    /// Rebuilds the shard without the tombstoned keys, preserving its
    /// representation (compressed shards re-encode).
    fn filter_dead(self, dead: &KeySet) -> Shard {
        let compress = matches!(self.spo, SealedRun::Compressed(_));
        let mut spo_keys = self.spo.decode_keys();
        spo_keys.retain(|k| !dead.contains(*k));
        Shard {
            spo: SealedRun::new(spo_keys.clone(), compress),
            pos: {
                let mut keys: Vec<[u32; 3]> = spo_keys
                    .iter()
                    .map(|&k| Perm::Pos.permute(Perm::Spo.unpermute(k)))
                    .collect();
                keys.sort_unstable();
                SealedRun::new(keys, compress)
            },
            osp: {
                let mut keys: Vec<[u32; 3]> = spo_keys
                    .iter()
                    .map(|&k| Perm::Osp.permute(Perm::Spo.unpermute(k)))
                    .collect();
                keys.sort_unstable();
                SealedRun::new(keys, compress)
            },
        }
    }
}

/// The sorted-run layout shared by the three permutation indexes.
///
/// Point membership never touches the runs: `present` is a fast
/// open-addressing sidecar holding **every live SPO key**, so inserts
/// and `contains` probes are one multiply-hash lookup instead of a
/// binary search per run (the LSM "memtable + filter" trick, collapsed
/// into one exact set since everything is in memory anyway).
#[derive(Clone, Default)]
pub(crate) struct RunStore {
    spo: RunIndex,
    pos: RunIndex,
    osp: RunIndex,
    /// Every live SPO key (runs + tail + shards). The single
    /// point-lookup structure; also the live count.
    present: KeySet,
    /// SPO keys tombstoned inside runs or shard runs. Disjoint from
    /// `present`; every member is resident in some run; filtered during
    /// scans and physically dropped by `purge`. A live copy of a key
    /// never coexists with a tombstoned copy (revival clears the
    /// tombstone instead of re-adding the key).
    dead: KeySet,
    /// Subject-hash shards produced by [`Self::seal_with`]; empty in
    /// the classic unsharded form. Writes after a sharded seal go to
    /// the tail/runs as usual — shards are immutable until the next
    /// reseal or purge.
    shards: Vec<Shard>,
}

impl RunStore {
    fn contains(&self, key: [u32; 3]) -> bool {
        self.present.contains(key)
    }

    fn len(&self) -> usize {
        self.present.len()
    }

    fn insert(&mut self, t: IdTriple) -> bool {
        let key = spo_key(t);
        if !self.present.insert(key) {
            return false;
        }
        // A tombstoned run copy is revived in place; otherwise the key
        // goes to the tail.
        if !self.dead.remove(key) {
            self.push_tail(t);
            if self.spo.tail.len() >= TAIL_MAX {
                self.flush(Vec::new());
            }
        }
        true
    }

    fn insert_batch(&mut self, triples: impl Iterator<Item = IdTriple>, added: &mut Vec<IdTriple>) {
        let mut fresh: Vec<IdTriple> = Vec::new();
        for t in triples {
            let key = spo_key(t);
            if !self.present.insert(key) {
                continue;
            }
            added.push(t);
            if !self.dead.remove(key) {
                fresh.push(t);
            }
        }
        if self.spo.tail.len() + fresh.len() < TAIL_MAX {
            // Small batch: the tail absorbs it without a flush.
            for t in fresh {
                self.push_tail(t);
            }
        } else {
            // Merge-batch: sort the batch together with the current tail
            // into one fresh run per permutation — one sort instead of
            // `fresh.len()` pushes and repeated threshold flushes.
            self.flush(fresh);
        }
    }

    fn push_tail(&mut self, t: IdTriple) {
        self.spo.tail_insert(Perm::Spo.permute(t));
        self.pos.tail_insert(Perm::Pos.permute(t));
        self.osp.tail_insert(Perm::Osp.permute(t));
    }

    /// Drains the (already sorted) tail plus `extra` into one fresh
    /// sorted run per permutation, then lets size-tiered merging
    /// restore the run-size ladder.
    fn flush(&mut self, extra: Vec<IdTriple>) {
        for (perm, index) in [
            (Perm::Spo, &mut self.spo),
            (Perm::Pos, &mut self.pos),
            (Perm::Osp, &mut self.osp),
        ] {
            let mut run = std::mem::take(&mut index.tail);
            run.extend(extra.iter().map(|&t| perm.permute(t)));
            // pdqsort exploits the sorted tail prefix; only the batch
            // part is genuinely unsorted.
            run.sort_unstable();
            index.push_run_tiered(run);
        }
    }

    fn remove(&mut self, t: IdTriple) -> bool {
        let key = spo_key(t);
        if !self.present.remove(key) {
            return false;
        }
        // Tail entries are removed physically (the tail is small and
        // removals rare); each permutation finds the key at its own
        // sorted position. Run-resident keys are tombstoned.
        if self.spo.tail_remove(key) {
            self.pos.tail_remove(Perm::Pos.permute(t));
            self.osp.tail_remove(Perm::Osp.permute(t));
        } else {
            self.dead.insert(key);
            self.maybe_purge();
        }
        true
    }

    /// Physically drops tombstoned keys once they outnumber half the
    /// run-resident keys (and exceed an absolute floor), by merging each
    /// index's whole run stack into one purged run and rebuilding any
    /// shard that still holds dead keys.
    fn maybe_purge(&mut self) {
        let run_keys: usize = self.spo.runs.iter().map(|r| r.len()).sum::<usize>()
            + self.shards.iter().map(|sh| sh.spo.len()).sum::<usize>();
        if self.dead.len() < PURGE_MIN || self.dead.len() * 2 < run_keys {
            return;
        }
        self.purge_dead();
    }

    /// Unconditionally filters every tombstoned key out of the runs and
    /// shards, then clears the tombstone set. Shards keep their
    /// partitioning and representation (dropping keys never moves one
    /// between shards).
    fn purge_dead(&mut self) {
        if self.dead.len() == 0 {
            return;
        }
        for (perm, index) in [
            (Perm::Spo, &mut self.spo),
            (Perm::Pos, &mut self.pos),
            (Perm::Osp, &mut self.osp),
        ] {
            let mut all: Vec<[u32; 3]> = Vec::new();
            for run in index.runs.drain(..) {
                all.extend(
                    run.iter()
                        .copied()
                        .filter(|k| !self.dead.contains(spo_key(perm.unpermute(*k)))),
                );
            }
            all.sort_unstable();
            if !all.is_empty() {
                index.runs.push(Arc::new(all));
            }
        }
        if self
            .shards
            .iter()
            .any(|sh| sh.spo.decode_keys().iter().any(|k| self.dead.contains(*k)))
        {
            let shards = std::mem::take(&mut self.shards);
            self.shards = shards
                .into_iter()
                .map(|sh| sh.filter_dead(&self.dead))
                .collect();
        }
        self.dead = KeySet::default();
    }

    /// Flushes the tail and drops every tombstone physically, leaving
    /// the store as immutable runs only (see [`TripleStore::seal`]).
    /// Existing shards are kept — only [`Self::seal_with`]
    /// repartitions.
    fn seal(&mut self) {
        if !self.spo.tail.is_empty() {
            self.flush(Vec::new());
        }
        self.purge_dead();
    }

    /// Seals, then repartitions every live key into the layout `cfg`
    /// asks for: `effective_shards()` subject-hash shards (optionally
    /// compressed), or the classic unsharded run stacks for `shards <=
    /// 1` without compression. The logical key set — and therefore
    /// `present` and every scan result — is unchanged.
    fn seal_with(&mut self, cfg: &SealConfig) {
        self.seal();
        let shards = cfg.effective_shards();
        if shards <= 1 && !cfg.compress && self.shards.is_empty() {
            return; // already in the classic sealed form
        }
        // Gather every live SPO key (runs are dead-free after seal()).
        let total: usize = self.spo.runs.iter().map(|r| r.len()).sum::<usize>()
            + self.shards.iter().map(|sh| sh.spo.len()).sum::<usize>();
        let mut all: Vec<[u32; 3]> = Vec::with_capacity(total);
        for run in self.spo.runs.drain(..) {
            all.extend(run.iter().copied());
        }
        for shard in self.shards.drain(..) {
            all.extend(shard.spo.decode_keys());
        }
        self.pos.runs.clear();
        self.osp.runs.clear();
        all.sort_unstable();
        if shards <= 1 && !cfg.compress {
            // Fold back to one plain run per permutation.
            if !all.is_empty() {
                let mut pos_keys: Vec<[u32; 3]> = all
                    .iter()
                    .map(|&k| Perm::Pos.permute(Perm::Spo.unpermute(k)))
                    .collect();
                pos_keys.sort_unstable();
                let mut osp_keys: Vec<[u32; 3]> = all
                    .iter()
                    .map(|&k| Perm::Osp.permute(Perm::Spo.unpermute(k)))
                    .collect();
                osp_keys.sort_unstable();
                self.spo.runs.push(Arc::new(all));
                self.pos.runs.push(Arc::new(pos_keys));
                self.osp.runs.push(Arc::new(osp_keys));
            }
            return;
        }
        // `all` is sorted, so each part inherits sorted order.
        let mut parts: Vec<Vec<[u32; 3]>> = vec![Vec::new(); shards];
        for &k in &all {
            parts[shard_of(k[0], shards)].push(k);
        }
        self.shards = parts
            .into_iter()
            .map(|spo_keys| Shard::build(spo_keys, cfg))
            .collect();
    }

    fn range(&self, perm: Perm, lo: [u32; 3], hi: [u32; 3]) -> RunRangeIter<'_> {
        let index = match perm {
            Perm::Spo => &self.spo,
            Perm::Pos => &self.pos,
            Perm::Osp => &self.osp,
        };
        let mut sources: Vec<ScanSource<'_>> = index
            .sorted_slices(lo, hi)
            .into_iter()
            .map(ScanSource::Slice)
            .collect();
        if !self.shards.is_empty() {
            // Shard pruning: when the scan fixes the subject, only the
            // subject's own shard can hold matches. The subject sits at
            // key position 0 for SPO, 1 for OSP ([o, s, p]) and 2 for
            // POS ([p, o, s]).
            let only = match perm {
                Perm::Spo if lo[0] == hi[0] => Some(shard_of(lo[0], self.shards.len())),
                Perm::Osp if lo[0] == hi[0] && lo[1] == hi[1] => {
                    Some(shard_of(lo[1], self.shards.len()))
                }
                Perm::Pos if lo == hi => Some(shard_of(lo[2], self.shards.len())),
                _ => None,
            };
            match only {
                Some(i) => sources.extend(self.shards[i].run(perm).source(lo, hi)),
                None => sources.extend(
                    self.shards
                        .iter()
                        .filter_map(|sh| sh.run(perm).source(lo, hi)),
                ),
            }
        }
        RunRangeIter::new(
            sources,
            hi,
            perm,
            (self.dead.len() > 0).then_some(&self.dead),
        )
    }
}

/// A minimal open-addressing hash set for `[u32; 3]` keys with a cheap
/// multiply-xor hash — the point-lookup sidecar of [`RunStore`]. The
/// std `HashSet` pays SipHash on every probe, which dominates the
/// insert path of a triple store whose keys are 12 bytes; this set is
/// the same trick as `rps_tgd`'s open-addressing `RowSet`.
///
/// Linear probing, power-of-two capacity, tombstone deletion, rehash at
/// 7/8 occupancy (rehashing also drops tombstones).
#[derive(Clone, Default)]
struct KeySet {
    /// 0 = empty, 1 = full, 2 = deleted.
    ctrl: Vec<u8>,
    keys: Vec<[u32; 3]>,
    /// Full slots.
    len: usize,
    /// Full + deleted slots (drives the rehash threshold).
    occupied: usize,
}

const CTRL_EMPTY: u8 = 0;
const CTRL_FULL: u8 = 1;
const CTRL_DELETED: u8 = 2;

fn key_hash(key: [u32; 3]) -> u64 {
    let mut h = (key[0] as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= (key[1] as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    h ^= (key[2] as u64).wrapping_mul(0x1656_67B1_9E37_79F9);
    h ^= h >> 29;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^ (h >> 32)
}

impl KeySet {
    fn len(&self) -> usize {
        self.len
    }

    /// Index of the slot holding `key`, if present.
    fn find(&self, key: [u32; 3]) -> Option<usize> {
        if self.ctrl.is_empty() {
            return None;
        }
        let mask = self.ctrl.len() - 1;
        let mut i = key_hash(key) as usize & mask;
        loop {
            match self.ctrl[i] {
                CTRL_EMPTY => return None,
                CTRL_FULL if self.keys[i] == key => return Some(i),
                _ => i = (i + 1) & mask,
            }
        }
    }

    fn contains(&self, key: [u32; 3]) -> bool {
        self.find(key).is_some()
    }

    /// Adds `key`; `true` iff it was not present.
    fn insert(&mut self, key: [u32; 3]) -> bool {
        if self.ctrl.is_empty() || (self.occupied + 1) * 8 > self.ctrl.len() * 7 {
            self.grow();
        }
        let mask = self.ctrl.len() - 1;
        let mut i = key_hash(key) as usize & mask;
        let mut insert_at = None;
        loop {
            match self.ctrl[i] {
                CTRL_EMPTY => {
                    // Reuse the first tombstone passed, if any.
                    let slot = insert_at.unwrap_or(i);
                    if self.ctrl[slot] == CTRL_EMPTY {
                        self.occupied += 1;
                    }
                    self.ctrl[slot] = CTRL_FULL;
                    self.keys[slot] = key;
                    self.len += 1;
                    return true;
                }
                CTRL_FULL if self.keys[i] == key => return false,
                CTRL_DELETED => {
                    insert_at.get_or_insert(i);
                    i = (i + 1) & mask;
                }
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Removes `key`; `true` iff it was present.
    fn remove(&mut self, key: [u32; 3]) -> bool {
        match self.find(key) {
            Some(i) => {
                self.ctrl[i] = CTRL_DELETED;
                self.len -= 1;
                true
            }
            None => false,
        }
    }

    fn grow(&mut self) {
        let new_cap = (self.ctrl.len() * 2).max(16);
        let old_ctrl = std::mem::replace(&mut self.ctrl, vec![CTRL_EMPTY; new_cap]);
        let old_keys = std::mem::replace(&mut self.keys, vec![[0; 3]; new_cap]);
        self.len = 0;
        self.occupied = 0;
        let mask = new_cap - 1;
        for (c, k) in old_ctrl.into_iter().zip(old_keys) {
            if c == CTRL_FULL {
                let mut i = key_hash(k) as usize & mask;
                while self.ctrl[i] == CTRL_FULL {
                    i = (i + 1) & mask;
                }
                self.ctrl[i] = CTRL_FULL;
                self.keys[i] = k;
                self.len += 1;
                self.occupied += 1;
            }
        }
    }
}

/// One source of a k-way merged range scan: a pre-bounded plain slice
/// (run or tail subslice) or a bounded cursor into a compressed shard
/// run.
pub(crate) enum ScanSource<'g> {
    /// A `[lo, hi]`-bounded subslice of a plain sorted run or tail.
    Slice(&'g [[u32; 3]]),
    /// A seeked cursor into a delta-varint compressed run (bounded by
    /// the iterator's `hi` at peek time). Boxed: the scan carries an
    /// inline block-decode buffer, and leaving it unboxed would inflate
    /// *every* `ScanSource` — and thus every plain point probe's source
    /// vector — to the buffer's size.
    Col(Box<ColScan<'g>>),
}

impl ScanSource<'_> {
    /// The source's current key, if it has one within the scan range.
    fn peek(&self, hi: [u32; 3]) -> Option<[u32; 3]> {
        match self {
            ScanSource::Slice(s) => s.first().copied(),
            ScanSource::Col(c) => c.peek_bounded(hi),
        }
    }

    fn advance(&mut self) {
        match self {
            ScanSource::Slice(s) => *s = &s[1..],
            ScanSource::Col(c) => c.advance(),
        }
    }
}

/// A loser tree (tournament tree) over the merge sources: each `next`
/// replays one leaf-to-root path (`O(log k)` comparisons) instead of
/// scanning all `k` heads. Exhausted sources compare as +∞ and simply
/// sink to the bottom — no removal needed, which is what lets the tree
/// keep stable source indices.
struct LoserTree {
    /// `node[0]` is the overall winner; `node[1..cap]` hold the loser
    /// of each internal match. Leaves are implicit: leaf `i` is source
    /// `i` (sources `>= k` are permanently exhausted padding).
    node: Vec<usize>,
    cap: usize,
}

/// Exhausted sources order after every real key.
fn ranked(key: Option<[u32; 3]>) -> (u8, [u32; 3]) {
    match key {
        Some(k) => (0, k),
        None => (1, [0; 3]),
    }
}

impl LoserTree {
    fn new(sources: &[ScanSource<'_>], hi: [u32; 3]) -> LoserTree {
        let cap = sources.len().next_power_of_two().max(2);
        let key = |s: usize| ranked(sources.get(s).and_then(|src| src.peek(hi)));
        let mut winner = vec![0usize; cap * 2];
        for (i, w) in winner.iter_mut().enumerate().skip(cap) {
            *w = i - cap;
        }
        let mut node = vec![0usize; cap];
        for i in (1..cap).rev() {
            let (a, b) = (winner[2 * i], winner[2 * i + 1]);
            let (w, l) = if key(a) <= key(b) { (a, b) } else { (b, a) };
            winner[i] = w;
            node[i] = l;
        }
        node[0] = winner[1];
        LoserTree { node, cap }
    }

    /// The source holding the smallest current key.
    fn winner(&self) -> usize {
        self.node[0]
    }

    /// After the winner's source advanced, replays its leaf-to-root
    /// path to find the new overall winner.
    fn replay(&mut self, sources: &[ScanSource<'_>], hi: [u32; 3]) {
        let key = |s: usize| ranked(sources.get(s).and_then(|src| src.peek(hi)));
        let mut s = self.node[0];
        let mut i = (self.cap + s) / 2;
        while i >= 1 {
            if key(self.node[i]) < key(s) {
                std::mem::swap(&mut s, &mut self.node[i]);
            }
            i /= 2;
        }
        self.node[0] = s;
    }
}

/// Iterator over one permutation's key range: a k-way merge of the
/// intersecting run slices, the sorted tail's subslice and any shard
/// runs (plain or compressed), yielding triples in the permutation's
/// key order with tombstones filtered. Narrow merges use a linear min
/// over the heads; merges of [`LOSER_TREE_MIN`] or more sources use a
/// loser tree.
pub(crate) struct RunRangeIter<'g> {
    sources: Vec<ScanSource<'g>>,
    hi: [u32; 3],
    perm: Perm,
    /// Tombstoned SPO keys, present only when non-empty.
    dead: Option<&'g KeySet>,
    /// Engaged once and for all at construction (sources only ever
    /// drain, so the width never grows mid-scan).
    loser: Option<LoserTree>,
    /// Merge width at construction, for the scan-shape counters.
    width: usize,
}

impl<'g> RunRangeIter<'g> {
    fn new(
        sources: Vec<ScanSource<'g>>,
        hi: [u32; 3],
        perm: Perm,
        dead: Option<&'g KeySet>,
    ) -> RunRangeIter<'g> {
        let width = sources.len();
        let loser = (width >= LOSER_TREE_MIN).then(|| LoserTree::new(&sources, hi));
        RunRangeIter {
            sources,
            hi,
            perm,
            dead,
            loser,
            width,
        }
    }

    /// Number of sources this scan merges (runs + tail + shard runs).
    pub(crate) fn merge_width(&self) -> usize {
        self.width
    }

    /// Whether the scan is wide enough to run on the loser tree.
    pub(crate) fn uses_loser_tree(&self) -> bool {
        self.loser.is_some()
    }

    /// The next key in merge order, or `None` when every source is
    /// exhausted.
    fn next_key(&mut self) -> Option<[u32; 3]> {
        if let Some(tree) = &mut self.loser {
            let w = tree.winner();
            let key = self.sources[w].peek(self.hi)?;
            self.sources[w].advance();
            tree.replay(&self.sources, self.hi);
            return Some(key);
        }
        // Fast path: one remaining source — no merge, just step it (the
        // common shape once tiered merging or sharded sealing has
        // concentrated the data, or after shard pruning).
        if self.sources.len() == 1 {
            match &mut self.sources[0] {
                ScanSource::Slice(s) => {
                    let (&key, rest) = s.split_first()?;
                    *s = rest;
                    return Some(key);
                }
                ScanSource::Col(c) => {
                    let key = c.peek_bounded(self.hi)?;
                    c.advance();
                    return Some(key);
                }
            }
        }
        // Pick the smallest head. The key sets are disjoint, so no
        // tie-breaking or deduplication is needed; exhausted heads are
        // dropped, so the linear min runs over live sources only.
        let mut best: Option<(usize, [u32; 3])> = None; // (source, key)
        let mut i = 0;
        while i < self.sources.len() {
            match self.sources[i].peek(self.hi) {
                None => {
                    // Swaps the (as yet unexamined) last source into
                    // place `i`, so recorded best indices stay valid.
                    self.sources.swap_remove(i);
                }
                Some(k) => {
                    if best.is_none_or(|(_, bk)| k < bk) {
                        best = Some((i, k));
                    }
                    i += 1;
                }
            }
        }
        let (i, key) = best?;
        self.sources[i].advance();
        Some(key)
    }
}

impl Iterator for RunRangeIter<'_> {
    type Item = IdTriple;

    fn next(&mut self) -> Option<IdTriple> {
        loop {
            let key = self.next_key()?;
            let t = self.perm.unpermute(key);
            if let Some(dead) = self.dead {
                // Tail keys are never tombstoned, so this probe is only
                // ever a (cheap) no-op for them.
                if dead.contains(spo_key(t)) {
                    continue;
                }
            }
            return Some(t);
        }
    }
}

/// Iterator over a permutation range of either backend.
pub(crate) enum StoreRangeIter<'g> {
    BTree {
        iter: std::collections::btree_set::Range<'g, [u32; 3]>,
        perm: Perm,
    },
    Runs(RunRangeIter<'g>),
}

impl StoreRangeIter<'_> {
    /// How many sorted sources this scan merges (1 for the B-tree
    /// backend, which is a single ordered structure).
    pub(crate) fn merge_width(&self) -> usize {
        match self {
            StoreRangeIter::BTree { .. } => 1,
            StoreRangeIter::Runs(it) => it.merge_width(),
        }
    }

    /// Whether the scan engaged the loser-tree merge.
    pub(crate) fn uses_loser_tree(&self) -> bool {
        match self {
            StoreRangeIter::BTree { .. } => false,
            StoreRangeIter::Runs(it) => it.uses_loser_tree(),
        }
    }
}

impl Iterator for StoreRangeIter<'_> {
    type Item = IdTriple;

    fn next(&mut self) -> Option<IdTriple> {
        match self {
            StoreRangeIter::BTree { iter, perm } => iter.next().map(|&k| perm.unpermute(k)),
            StoreRangeIter::Runs(it) => it.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u32, p: u32, o: u32) -> IdTriple {
        IdTriple::new(TermId(s), TermId(p), TermId(o))
    }

    fn collect_range(store: &TripleStore, perm: Perm, lo: [u32; 3], hi: [u32; 3]) -> Vec<IdTriple> {
        store.range(perm, lo, hi).collect()
    }

    /// Drives both backends through the same operation sequence and
    /// asserts every observable agrees.
    fn assert_backends_agree(ops: &[(bool, IdTriple)]) {
        let mut bt = TripleStore::new(StorageBackend::BTree);
        let mut rs = TripleStore::new(StorageBackend::SortedRuns);
        for &(is_insert, triple) in ops {
            if is_insert {
                assert_eq!(bt.insert(triple), rs.insert(triple), "insert {triple:?}");
            } else {
                assert_eq!(bt.remove(triple), rs.remove(triple), "remove {triple:?}");
            }
            assert_eq!(bt.len(), rs.len());
        }
        for perm in [Perm::Spo, Perm::Pos, Perm::Osp] {
            let full_bt = collect_range(&bt, perm, [0; 3], [u32::MAX; 3]);
            let full_rs = collect_range(&rs, perm, [0; 3], [u32::MAX; 3]);
            assert_eq!(full_bt, full_rs, "{perm:?} full scans agree, in order");
        }
        for &(_, triple) in ops {
            assert_eq!(bt.contains(triple), rs.contains(triple));
        }
    }

    #[test]
    fn backends_agree_on_seeded_mixed_workload() {
        // Seeded SplitMix64 stream; enough volume to force several
        // flushes and tiered merges (TAIL_MAX * ~8 inserts).
        let mut state: u64 = 0xDEAD_BEEF;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut ops = Vec::new();
        for _ in 0..(TAIL_MAX * 8) {
            let r = next();
            let triple = t(
                (r % 37) as u32,
                ((r >> 8) % 11) as u32,
                ((r >> 16) % 53) as u32,
            );
            // ~1 in 5 ops is a removal (of a likely-present key).
            ops.push((r % 5 != 0, triple));
        }
        assert_backends_agree(&ops);
    }

    #[test]
    fn tiered_merge_keeps_run_count_logarithmic() {
        let mut rs = TripleStore::new(StorageBackend::SortedRuns);
        for i in 0..(TAIL_MAX as u32 * 64) {
            rs.insert(t(i, i % 7, i % 13));
        }
        let stats = rs.stats();
        assert!(
            stats.runs <= 16,
            "expected O(log n) runs, got {}",
            stats.runs
        );
        assert_eq!(rs.len(), TAIL_MAX * 64);
    }

    #[test]
    fn revival_of_tombstoned_key() {
        let mut rs = TripleStore::new(StorageBackend::SortedRuns);
        let probe = t(1, 2, 3);
        rs.insert(probe);
        // Fill the tail exactly to the flush threshold, pushing the
        // probe into a run.
        for i in 0..(TAIL_MAX as u32 - 1) {
            rs.insert(t(1000 + i, 1, 1));
        }
        assert_eq!(rs.stats().tail, 0, "flush ran at the threshold");
        assert!(rs.remove(probe));
        assert!(!rs.contains(probe));
        assert!(rs.insert(probe), "re-insert of a tombstoned key adds it");
        assert!(rs.contains(probe));
        assert!(!rs.insert(probe), "now a duplicate again");
    }

    #[test]
    fn purge_drops_tombstones_physically() {
        let mut rs = TripleStore::new(StorageBackend::SortedRuns);
        let n = (PURGE_MIN * 3) as u32;
        for i in 0..n {
            rs.insert(t(i, 0, 0));
        }
        // Remove two thirds — crosses both purge thresholds along the
        // way (a sub-threshold remainder of fresh tombstones may be
        // left, but the purged bulk must be physically gone).
        let removed = n * 2 / 3;
        for i in 0..removed {
            assert!(rs.remove(t(i, 0, 0)));
        }
        let stats = rs.stats();
        assert!(
            stats.tombstones < PURGE_MIN,
            "bulk of the tombstones purged, {} left",
            stats.tombstones
        );
        assert!(stats.run_keys < n as usize, "purge dropped keys physically");
        assert_eq!(rs.len(), (n - removed) as usize);
        let all = collect_range(&rs, Perm::Spo, [0; 3], [u32::MAX; 3]);
        assert_eq!(all.len(), (n - removed) as usize);
        assert!(all.iter().all(|x| x.s.0 >= removed));
    }

    #[test]
    fn min_max_pruning_preserves_scan_results() {
        // Several runs with disjoint, clustered subject ranges: scans
        // over one cluster must skip the others' runs entirely (min/max
        // pruning) while returning exactly the B-tree results.
        let mut rs = TripleStore::new(StorageBackend::SortedRuns);
        let mut bt = TripleStore::new(StorageBackend::BTree);
        for cluster in 0..4u32 {
            let base = cluster * 100_000;
            for i in 0..(TAIL_MAX as u32 * 2) {
                let triple = t(base + i, i % 5, i % 17);
                rs.insert(triple);
                bt.insert(triple);
            }
        }
        assert!(rs.stats().runs >= 2, "needs several runs to prune");
        for cluster in 0..4u32 {
            let base = cluster * 100_000;
            let lo = [base, 0, 0];
            let hi = [base + TAIL_MAX as u32 * 2, u32::MAX, u32::MAX];
            let runs: Vec<IdTriple> = collect_range(&rs, Perm::Spo, lo, hi);
            let tree: Vec<IdTriple> = collect_range(&bt, Perm::Spo, lo, hi);
            assert_eq!(runs, tree, "cluster {cluster}");
            assert_eq!(runs.len(), TAIL_MAX * 2);
        }
        // A range beyond every run's max matches nothing.
        assert!(collect_range(&rs, Perm::Spo, [9_000_000, 0, 0], [u32::MAX; 3]).is_empty());
    }

    #[test]
    fn seal_flushes_tail_and_purges_tombstones() {
        let mut rs = TripleStore::new(StorageBackend::SortedRuns);
        let mut bt = TripleStore::new(StorageBackend::BTree);
        for i in 0..(TAIL_MAX as u32 * 3 + 17) {
            rs.insert(t(i, i % 5, i % 9));
            bt.insert(t(i, i % 5, i % 9));
        }
        // Tombstone some run-resident keys and leave a partial tail.
        for i in 0..24 {
            assert!(rs.remove(t(i, i % 5, i % 9)));
            assert!(bt.remove(t(i, i % 5, i % 9)));
        }
        assert!(!rs.is_sealed());
        rs.seal();
        assert!(rs.is_sealed());
        let stats = rs.stats();
        assert_eq!(stats.tail, 0);
        assert_eq!(stats.tombstones, 0);
        assert_eq!(rs.len(), bt.len());
        for perm in [Perm::Spo, Perm::Pos, Perm::Osp] {
            assert_eq!(
                collect_range(&rs, perm, [0; 3], [u32::MAX; 3]),
                collect_range(&bt, perm, [0; 3], [u32::MAX; 3]),
                "{perm:?} scans agree after sealing"
            );
        }
        // A sealed store still accepts writes (a fresh tail begins).
        assert!(rs.insert(t(9_999, 0, 0)));
        assert!(!rs.is_sealed());
        assert!(rs.contains(t(9_999, 0, 0)));
    }

    #[test]
    fn batch_insert_dedups_and_reports_in_order() {
        let mut rs = TripleStore::new(StorageBackend::SortedRuns);
        rs.insert(t(5, 5, 5));
        let mut added = Vec::new();
        rs.insert_batch(
            vec![t(1, 1, 1), t(5, 5, 5), t(2, 2, 2), t(1, 1, 1)].into_iter(),
            &mut added,
        );
        assert_eq!(added, vec![t(1, 1, 1), t(2, 2, 2)]);
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn big_batch_becomes_a_run() {
        let mut rs = TripleStore::new(StorageBackend::SortedRuns);
        let mut added = Vec::new();
        let batch: Vec<IdTriple> = (0..TAIL_MAX as u32 * 4).map(|i| t(i, 1, 2)).collect();
        rs.insert_batch(batch.into_iter(), &mut added);
        assert_eq!(added.len(), TAIL_MAX * 4);
        let stats = rs.stats();
        assert_eq!(stats.tail, 0, "batch flushed straight into a run");
        assert!(stats.runs >= 1);
    }

    /// A seeded SplitMix64 stream shared by the sharding proptests.
    fn splitmix(seed: u64) -> impl FnMut() -> u64 {
        let mut state = seed;
        move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Asserts every observable of `store` matches the B-tree oracle
    /// `bt`: length, per-key membership, and full + bounded scans in
    /// all three permutations.
    fn assert_matches_oracle(store: &TripleStore, bt: &TripleStore, what: &str) {
        assert_eq!(store.len(), bt.len(), "{what}: len");
        for perm in [Perm::Spo, Perm::Pos, Perm::Osp] {
            assert_eq!(
                collect_range(store, perm, [0; 3], [u32::MAX; 3]),
                collect_range(bt, perm, [0; 3], [u32::MAX; 3]),
                "{what}: {perm:?} full scan"
            );
        }
        // Bounded probes: per-subject SPO ranges exercise shard pruning.
        for s in 0..40u32 {
            assert_eq!(
                collect_range(store, Perm::Spo, [s, 0, 0], [s, u32::MAX, u32::MAX]),
                collect_range(bt, Perm::Spo, [s, 0, 0], [s, u32::MAX, u32::MAX]),
                "{what}: subject {s} range"
            );
        }
    }

    /// Sharded ≡ unsharded ≡ BTree, and compressed ≡ plain, under a
    /// mixed insert/remove/batch/seal/reseal workload — the seeded
    /// proptest the sharded seal path is pinned by.
    #[test]
    fn sharded_and_compressed_seals_agree_with_oracle() {
        for seed in [1u64, 0xBEEF, 0x5EED_5EED] {
            let mut next = splitmix(seed);
            let mut bt = TripleStore::new(StorageBackend::BTree);
            let mut rs = TripleStore::new(StorageBackend::SortedRuns);
            let configs = [
                SealConfig {
                    shards: 4,
                    ..SealConfig::default()
                },
                SealConfig {
                    shards: 4,
                    compress: true,
                    compress_min_keys: 8,
                },
                SealConfig {
                    shards: 2,
                    compress: true,
                    compress_min_keys: 1,
                },
                SealConfig::default(), // folds back to unsharded
                SealConfig {
                    shards: 7,
                    ..SealConfig::default()
                },
            ];
            for (round, cfg) in configs.iter().enumerate() {
                // A burst of mixed single ops...
                for _ in 0..TAIL_MAX * 3 {
                    let r = next();
                    let triple = t(
                        (r % 57) as u32,
                        ((r >> 8) % 7) as u32,
                        ((r >> 16) % 43) as u32,
                    );
                    if r.is_multiple_of(4) {
                        assert_eq!(
                            bt.remove(triple),
                            rs.remove(triple),
                            "seed {seed} round {round} remove {triple:?}"
                        );
                    } else {
                        assert_eq!(
                            bt.insert(triple),
                            rs.insert(triple),
                            "seed {seed} round {round} insert {triple:?}"
                        );
                    }
                }
                // ...then a batch insert...
                let batch: Vec<IdTriple> = (0..TAIL_MAX as u32)
                    .map(|_| {
                        let r = next();
                        t(
                            (r % 91) as u32,
                            ((r >> 8) % 5) as u32,
                            ((r >> 16) % 37) as u32,
                        )
                    })
                    .collect();
                let mut added_bt = Vec::new();
                let mut added_rs = Vec::new();
                bt.insert_batch(batch.iter().copied(), &mut added_bt);
                rs.insert_batch(batch.into_iter(), &mut added_rs);
                assert_eq!(added_bt, added_rs, "seed {seed} round {round} batch");
                // ...then a (re)seal under this round's config.
                rs.seal_with(cfg);
                assert!(rs.is_sealed(), "seed {seed} round {round}");
                let stats = rs.stats();
                if cfg.effective_shards() > 1 || cfg.compress {
                    assert_eq!(stats.shards, cfg.effective_shards());
                    assert_eq!(stats.run_keys, 0, "all keys live in shards");
                    assert_eq!(stats.shard_keys, rs.len());
                } else {
                    assert_eq!(stats.shards, 0, "folded back to unsharded");
                    assert_eq!(stats.run_keys, rs.len());
                }
                assert_matches_oracle(&rs, &bt, &format!("seed {seed} round {round}"));
            }
        }
    }

    /// Removals against shard-resident keys must not resurrect: the
    /// tombstone set is only cleared after shard runs are physically
    /// filtered.
    #[test]
    fn tombstones_of_shard_resident_keys_purge_physically() {
        let mut rs = TripleStore::new(StorageBackend::SortedRuns);
        let mut bt = TripleStore::new(StorageBackend::BTree);
        let n = (PURGE_MIN * 3) as u32;
        for i in 0..n {
            rs.insert(t(i, i % 3, i % 11));
            bt.insert(t(i, i % 3, i % 11));
        }
        rs.seal_with(&SealConfig {
            shards: 4,
            compress: true,
            compress_min_keys: 8,
        });
        // Remove two thirds of the (now shard-resident) keys; the purge
        // threshold trips along the way and must rebuild the shards.
        let removed = n * 2 / 3;
        for i in 0..removed {
            assert!(rs.remove(t(i, i % 3, i % 11)));
            assert!(bt.remove(t(i, i % 3, i % 11)));
        }
        assert!(
            rs.stats().tombstones < PURGE_MIN,
            "bulk of the tombstones purged"
        );
        assert_matches_oracle(&rs, &bt, "after shard purge");
        // Re-insert a purged key: it must come back exactly once.
        assert!(rs.insert(t(0, 0, 0)));
        assert!(!rs.insert(t(0, 0, 0)));
        assert!(bt.insert(t(0, 0, 0)));
        assert_matches_oracle(&rs, &bt, "after revival");
    }

    /// Sealing again (plain `seal`) after writes on top of a sharded
    /// seal keeps the shards and the logical content.
    #[test]
    fn plain_seal_preserves_shards() {
        let mut rs = TripleStore::new(StorageBackend::SortedRuns);
        let mut bt = TripleStore::new(StorageBackend::BTree);
        for i in 0..(TAIL_MAX as u32 * 4) {
            rs.insert(t(i, i % 5, i % 9));
            bt.insert(t(i, i % 5, i % 9));
        }
        rs.seal_with(&SealConfig {
            shards: 3,
            ..SealConfig::default()
        });
        assert_eq!(rs.stats().shards, 3);
        // Post-seal writes land in the tail; removing a shard-resident
        // key tombstones it.
        for i in 0..40u32 {
            rs.insert(t(100_000 + i, 1, 1));
            bt.insert(t(100_000 + i, 1, 1));
        }
        // Key 7 of the `t(i, i % 5, i % 9)` seeding loop above.
        assert!(rs.remove(t(7, 2, 7)));
        assert!(bt.remove(t(7, 2, 7)));
        assert!(!rs.is_sealed());
        rs.seal();
        assert!(rs.is_sealed());
        let stats = rs.stats();
        assert_eq!(stats.shards, 3, "plain seal never repartitions");
        assert_eq!(stats.tombstones, 0);
        assert_matches_oracle(&rs, &bt, "resealed over shards");
    }

    /// Empty shards (more shards than distinct subjects) scan cleanly,
    /// and single-key ranges hit exactly one shard.
    #[test]
    fn empty_shards_and_single_key_ranges() {
        let mut rs = TripleStore::new(StorageBackend::SortedRuns);
        let mut bt = TripleStore::new(StorageBackend::BTree);
        // Two subjects, 16 shards: at least 14 shards are empty.
        for o in 0..(TAIL_MAX as u32) {
            for s in [3u32, 4] {
                rs.insert(t(s, 1, o));
                bt.insert(t(s, 1, o));
            }
        }
        rs.seal_with(&SealConfig {
            shards: 16,
            compress: true,
            compress_min_keys: 1,
        });
        assert_eq!(rs.stats().shards, 16);
        assert_matches_oracle(&rs, &bt, "mostly-empty shards");
        // Exact triple probe (single-key range in every permutation).
        let probe = t(3, 1, 5);
        let key = spo_key(probe);
        assert_eq!(collect_range(&rs, Perm::Spo, key, key), vec![probe]);
        let pk = Perm::Pos.permute(probe);
        assert_eq!(collect_range(&rs, Perm::Pos, pk, pk), vec![probe]);
        let ok = Perm::Osp.permute(probe);
        assert_eq!(collect_range(&rs, Perm::Osp, ok, ok), vec![probe]);
    }

    /// Wide merges (many runs + shards) engage the loser tree and still
    /// agree with the oracle byte for byte.
    #[test]
    fn loser_tree_merge_agrees_with_oracle() {
        let mut rs = TripleStore::new(StorageBackend::SortedRuns);
        let mut bt = TripleStore::new(StorageBackend::BTree);
        let mut next = splitmix(0xCAFE);
        for i in 0..(TAIL_MAX as u32 * 2) {
            let triple = t(i % 97, (i % 7) + 1, (next() % 200) as u32);
            rs.insert(triple);
            bt.insert(triple);
        }
        // Shard widely, then pile fresh runs on top so full scans merge
        // shards + runs + tail.
        rs.seal_with(&SealConfig {
            shards: 12,
            ..SealConfig::default()
        });
        for i in 0..(TAIL_MAX as u32 * 3 + 7) {
            let triple = t(200 + (i % 83), (i % 5) + 1, (next() % 150) as u32);
            rs.insert(triple);
            bt.insert(triple);
        }
        let scan = rs.range(Perm::Spo, [0; 3], [u32::MAX; 3]);
        assert!(
            scan.merge_width() >= LOSER_TREE_MIN && scan.uses_loser_tree(),
            "width {} must engage the loser tree",
            scan.merge_width()
        );
        assert_matches_oracle(&rs, &bt, "loser-tree merge");
    }
}
