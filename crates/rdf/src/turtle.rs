//! A parser and serialiser for N-Triples plus a pragmatic subset of Turtle.
//!
//! Supported syntax: `@prefix` declarations, IRIs in angle brackets,
//! prefixed names, the `a` keyword, blank-node labels (`_:x`), string
//! literals with `\`-escapes and optional `@lang` / `^^datatype`
//! annotations, bare integers (typed as `xsd:integer`), and the `.` / `;`
//! / `,` statement punctuation. Collections and quoted triples are not
//! supported — the paper's data never needs them.

use crate::error::RdfError;
use crate::graph::Graph;
use crate::namespace::{vocab, PrefixMap};
use crate::term::{Iri, Literal, Term};
use crate::triple::{IdTriple, Triple};

/// How many parsed triples accumulate before the loader flushes them
/// through [`Graph::insert_batch`]. Large enough that bulk loads take
/// the sorted-run batch path (one sort per chunk instead of per-triple
/// tail pushes), small enough that the buffer stays cache-friendly.
const LOAD_CHUNK: usize = 4096;

/// Accumulates parsed triples and feeds the graph in
/// [`LOAD_CHUNK`]-sized batches. Terms are interned as they are parsed
/// (the dictionary is idempotent), only the store insertion is
/// deferred.
struct BatchLoader<'g> {
    graph: &'g mut Graph,
    buf: Vec<IdTriple>,
}

impl<'g> BatchLoader<'g> {
    fn new(graph: &'g mut Graph) -> Self {
        BatchLoader {
            graph,
            buf: Vec::with_capacity(LOAD_CHUNK),
        }
    }

    fn push(&mut self, t: &Triple) {
        let s = self.graph.intern(t.subject());
        let p = self.graph.intern(t.predicate());
        let o = self.graph.intern(t.object());
        self.buf.push(IdTriple::new(s, p, o));
        if self.buf.len() >= LOAD_CHUNK {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if !self.buf.is_empty() {
            self.graph.insert_batch(self.buf.drain(..));
        }
    }
}

/// Parses a Turtle-lite document into a fresh [`Graph`].
pub fn parse(input: &str) -> Result<Graph, RdfError> {
    let mut graph = Graph::new();
    parse_into(input, &mut graph)?;
    Ok(graph)
}

/// Parses a Turtle-lite document, inserting triples into an existing
/// graph through the chunked batch path ([`Graph::insert_batch`],
/// `LOAD_CHUNK` triples at a time), so bulk loads pay one sort per
/// chunk instead of per-triple tail maintenance. On a parse error the
/// graph keeps the chunks flushed before the offending statement.
pub fn parse_into(input: &str, graph: &mut Graph) -> Result<PrefixMap, RdfError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        prefixes: PrefixMap::new(),
    };
    parser.document(graph)?;
    Ok(parser.prefixes)
}

/// Serialises a graph as N-Triples, one triple per line, in SPO order.
pub fn to_ntriples(graph: &Graph) -> String {
    let mut out = String::new();
    for t in graph.iter() {
        out.push_str(&t.to_string());
        out.push('\n');
    }
    out
}

/// Serialises a graph as Turtle-lite using the given prefix map: `@prefix`
/// headers followed by one (possibly shrunk) triple per line.
pub fn to_turtle(graph: &Graph, prefixes: &PrefixMap) -> String {
    let mut out = String::new();
    for (p, ns) in prefixes.iter() {
        out.push_str(&format!("@prefix {p}: <{ns}> .\n"));
    }
    if !prefixes.is_empty() {
        out.push('\n');
    }
    let render = |term: &Term| -> String {
        if let Term::Iri(iri) = term {
            if let Some(short) = prefixes.shrink(iri) {
                return short;
            }
        }
        term.to_string()
    };
    for t in graph.iter() {
        out.push_str(&format!(
            "{} {} {} .\n",
            render(t.subject()),
            render(t.predicate()),
            render(t.object())
        ));
    }
    out
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Iri(String),
    PName(String),
    Blank(String),
    Literal {
        lexical: String,
        lang: Option<String>,
        datatype: Option<Box<Token>>,
    },
    Integer(String),
    A,
    Dot,
    Semi,
    Comma,
    PrefixDecl,
}

#[derive(Debug, Clone)]
struct Spanned {
    token: Token,
    line: usize,
}

fn tokenize(input: &str) -> Result<Vec<Spanned>, RdfError> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    let mut line = 1usize;

    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            ch if ch.is_whitespace() => {
                chars.next();
            }
            '#' => {
                for ch in chars.by_ref() {
                    if ch == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '<' => {
                chars.next();
                let mut iri = String::new();
                loop {
                    match chars.next() {
                        Some('>') => break,
                        Some('\n') | None => {
                            return Err(RdfError::parse(line, "unterminated IRI"));
                        }
                        Some(ch) => iri.push(ch),
                    }
                }
                tokens.push(Spanned {
                    token: Token::Iri(iri),
                    line,
                });
            }
            '"' => {
                chars.next();
                let mut lex = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some('"') => lex.push('"'),
                            Some('\\') => lex.push('\\'),
                            Some('n') => lex.push('\n'),
                            Some('r') => lex.push('\r'),
                            Some('t') => lex.push('\t'),
                            other => {
                                return Err(RdfError::parse(
                                    line,
                                    format!("bad escape: \\{:?}", other),
                                ))
                            }
                        },
                        Some('\n') | None => {
                            return Err(RdfError::parse(line, "unterminated string literal"));
                        }
                        Some(ch) => lex.push(ch),
                    }
                }
                // Optional @lang or ^^datatype.
                let mut lang = None;
                let mut datatype = None;
                if chars.peek() == Some(&'@') {
                    chars.next();
                    let mut tag = String::new();
                    while let Some(&ch) = chars.peek() {
                        if ch.is_ascii_alphanumeric() || ch == '-' {
                            tag.push(ch);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    if tag.is_empty() {
                        return Err(RdfError::parse(line, "empty language tag"));
                    }
                    lang = Some(tag);
                } else if chars.peek() == Some(&'^') {
                    chars.next();
                    if chars.next() != Some('^') {
                        return Err(RdfError::parse(line, "expected ^^ before datatype"));
                    }
                    if chars.peek() == Some(&'<') {
                        chars.next();
                        let mut iri = String::new();
                        loop {
                            match chars.next() {
                                Some('>') => break,
                                Some('\n') | None => {
                                    return Err(RdfError::parse(line, "unterminated datatype IRI"));
                                }
                                Some(ch) => iri.push(ch),
                            }
                        }
                        datatype = Some(Box::new(Token::Iri(iri)));
                    } else {
                        let name = read_name(&mut chars);
                        if !name.contains(':') {
                            return Err(RdfError::parse(line, "expected datatype after ^^"));
                        }
                        datatype = Some(Box::new(Token::PName(name)));
                    }
                }
                tokens.push(Spanned {
                    token: Token::Literal {
                        lexical: lex,
                        lang,
                        datatype,
                    },
                    line,
                });
            }
            '.' => {
                chars.next();
                tokens.push(Spanned {
                    token: Token::Dot,
                    line,
                });
            }
            ';' => {
                chars.next();
                tokens.push(Spanned {
                    token: Token::Semi,
                    line,
                });
            }
            ',' => {
                chars.next();
                tokens.push(Spanned {
                    token: Token::Comma,
                    line,
                });
            }
            '_' => {
                chars.next();
                if chars.next() != Some(':') {
                    return Err(RdfError::parse(line, "expected _: for blank node"));
                }
                let label = read_name(&mut chars);
                if label.is_empty() {
                    return Err(RdfError::parse(line, "empty blank node label"));
                }
                tokens.push(Spanned {
                    token: Token::Blank(label),
                    line,
                });
            }
            ch if ch.is_ascii_digit() || ch == '-' || ch == '+' => {
                let mut num = String::new();
                num.push(ch);
                chars.next();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        num.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Spanned {
                    token: Token::Integer(num),
                    line,
                });
            }
            '@' => {
                chars.next();
                let word = read_name(&mut chars);
                if word == "prefix" {
                    tokens.push(Spanned {
                        token: Token::PrefixDecl,
                        line,
                    });
                } else {
                    return Err(RdfError::parse(line, format!("unknown directive @{word}")));
                }
            }
            _ => {
                let name = read_name(&mut chars);
                if name.is_empty() {
                    return Err(RdfError::parse(line, format!("unexpected character {c:?}")));
                }
                if name == "a" {
                    tokens.push(Spanned {
                        token: Token::A,
                        line,
                    });
                } else {
                    tokens.push(Spanned {
                        token: Token::PName(name),
                        line,
                    });
                }
            }
        }
    }
    Ok(tokens)
}

/// Reads a prefixed-name-ish token: letters, digits, `:`, `_`, `-`.
///
/// Dots are never part of a name here, so `e:s.` tokenises as the name
/// `e:s` followed by a statement-terminating `Dot`. Locals containing dots
/// must be written in full `<...>` form.
fn read_name(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> String {
    let mut name = String::new();
    while let Some(&ch) = chars.peek() {
        if ch.is_alphanumeric() || ch == ':' || ch == '_' || ch == '-' {
            name.push(ch);
            chars.next();
        } else {
            break;
        }
    }
    name
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    prefixes: PrefixMap,
}

impl Parser {
    fn peek(&self) -> Option<&Spanned> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Spanned> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn line(&self) -> usize {
        self.peek().map(|s| s.line).unwrap_or(0)
    }

    fn document(&mut self, graph: &mut Graph) -> Result<(), RdfError> {
        let mut loader = BatchLoader::new(graph);
        while let Some(spanned) = self.peek() {
            match &spanned.token {
                Token::PrefixDecl => {
                    self.next();
                    self.prefix_decl()?;
                }
                _ => self.statement(&mut loader)?,
            }
        }
        loader.flush();
        Ok(())
    }

    fn prefix_decl(&mut self) -> Result<(), RdfError> {
        let line = self.line();
        let Some(Spanned {
            token: Token::PName(pname),
            ..
        }) = self.next()
        else {
            return Err(RdfError::parse(line, "expected prefix name after @prefix"));
        };
        let prefix = pname
            .strip_suffix(':')
            .ok_or_else(|| RdfError::parse(line, "prefix declaration must end with ':'"))?;
        let Some(Spanned {
            token: Token::Iri(ns),
            ..
        }) = self.next()
        else {
            return Err(RdfError::parse(line, "expected namespace IRI in @prefix"));
        };
        match self.next() {
            Some(Spanned {
                token: Token::Dot, ..
            }) => {
                self.prefixes.insert(prefix, ns);
                Ok(())
            }
            _ => Err(RdfError::parse(line, "expected '.' after @prefix")),
        }
    }

    fn statement(&mut self, loader: &mut BatchLoader<'_>) -> Result<(), RdfError> {
        let line = self.line();
        let subject = self.term()?;
        loop {
            let predicate = self.term()?;
            loop {
                let object = self.term()?;
                let t = Triple::new(subject.clone(), predicate.clone(), object)
                    .map_err(|e| RdfError::parse(line, e.to_string()))?;
                loader.push(&t);
                match self.peek().map(|s| &s.token) {
                    Some(Token::Comma) => {
                        self.next();
                    }
                    _ => break,
                }
            }
            match self.next() {
                Some(Spanned {
                    token: Token::Semi, ..
                }) => {
                    // Allow trailing ';' before '.'.
                    if matches!(self.peek().map(|s| &s.token), Some(Token::Dot)) {
                        self.next();
                        return Ok(());
                    }
                    continue;
                }
                Some(Spanned {
                    token: Token::Dot, ..
                }) => return Ok(()),
                other => {
                    return Err(RdfError::parse(
                        other.map(|s| s.line).unwrap_or(line),
                        "expected '.', ';' or ',' after object",
                    ))
                }
            }
        }
    }

    fn term(&mut self) -> Result<Term, RdfError> {
        let line = self.line();
        match self.next() {
            Some(Spanned {
                token: Token::Iri(iri),
                ..
            }) => Ok(Term::Iri(Iri::new(iri))),
            Some(Spanned {
                token: Token::PName(name),
                ..
            }) => Ok(Term::Iri(self.prefixes.expand(&name)?)),
            Some(Spanned {
                token: Token::Blank(label),
                ..
            }) => Ok(Term::blank(label)),
            Some(Spanned {
                token: Token::A, ..
            }) => Ok(Term::iri(vocab::RDF_TYPE)),
            Some(Spanned {
                token: Token::Integer(num),
                ..
            }) => Ok(Term::Literal(Literal::typed(
                num,
                Iri::new(format!("{}integer", vocab::XSD_NS)),
            ))),
            Some(Spanned {
                token:
                    Token::Literal {
                        lexical,
                        lang,
                        datatype,
                    },
                ..
            }) => {
                let lit = match (lang, datatype) {
                    (Some(tag), _) => Literal::lang(lexical, tag),
                    (None, Some(dt)) => {
                        let iri = match *dt {
                            Token::Iri(iri) => Iri::new(iri),
                            Token::PName(name) => self.prefixes.expand(&name)?,
                            _ => unreachable!("tokenizer only emits Iri/PName datatypes"),
                        };
                        Literal::typed(lexical, iri)
                    }
                    (None, None) => Literal::plain(lexical),
                };
                Ok(Term::Literal(lit))
            }
            other => Err(RdfError::parse(
                other.map(|s| s.line).unwrap_or(line),
                "expected a term",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_ntriples() {
        let g = parse("<http://e/s> <http://e/p> <http://e/o> .\n").unwrap();
        assert_eq!(g.len(), 1);
        assert!(g.contains(
            &Triple::new(
                Term::iri("http://e/s"),
                Term::iri("http://e/p"),
                Term::iri("http://e/o")
            )
            .unwrap()
        ));
    }

    #[test]
    fn parse_prefixes_and_a() {
        let src = "@prefix ex: <http://e/> .\nex:s a ex:Film .\n";
        let g = parse(src).unwrap();
        assert!(g.contains(
            &Triple::new(
                Term::iri("http://e/s"),
                Term::iri(vocab::RDF_TYPE),
                Term::iri("http://e/Film")
            )
            .unwrap()
        ));
    }

    #[test]
    fn parse_semicolons_and_commas() {
        let src = "@prefix e: <http://e/> .\n\
                   e:s e:p e:a , e:b ;\n\
                      e:q e:c .\n";
        let g = parse(src).unwrap();
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn parse_literals() {
        let src = r#"@prefix e: <http://e/> .
e:s e:name "Spider\"man" .
e:s e:label "film"@en .
e:s e:age "39"^^<http://www.w3.org/2001/XMLSchema#integer> .
e:s e:year 2002 .
"#;
        let g = parse(src).unwrap();
        assert_eq!(g.len(), 4);
        assert!(g.contains(
            &Triple::new(
                Term::iri("http://e/s"),
                Term::iri("http://e/name"),
                Term::Literal(Literal::plain("Spider\"man"))
            )
            .unwrap()
        ));
        assert!(g.contains(
            &Triple::new(
                Term::iri("http://e/s"),
                Term::iri("http://e/label"),
                Term::Literal(Literal::lang("film", "en"))
            )
            .unwrap()
        ));
        assert!(g.contains(
            &Triple::new(
                Term::iri("http://e/s"),
                Term::iri("http://e/year"),
                Term::Literal(Literal::typed(
                    "2002",
                    Iri::new("http://www.w3.org/2001/XMLSchema#integer")
                ))
            )
            .unwrap()
        ));
    }

    #[test]
    fn parse_blank_nodes() {
        let src = "_:x <http://e/p> _:y .\n";
        let g = parse(src).unwrap();
        assert!(g.contains(
            &Triple::new(Term::blank("x"), Term::iri("http://e/p"), Term::blank("y")).unwrap()
        ));
    }

    #[test]
    fn comments_ignored() {
        let src = "# a comment\n<http://e/s> <http://e/p> <http://e/o> . # trailing\n";
        let g = parse(src).unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("<http://e/s> <http://e/p>\n<unterminated").unwrap_err();
        match err {
            RdfError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unknown_prefix_is_an_error() {
        assert!(matches!(
            parse("nope:s nope:p nope:o .\n"),
            Err(RdfError::UnknownPrefix(_))
        ));
    }

    #[test]
    fn literal_subject_is_an_error() {
        assert!(parse("\"lit\" <http://e/p> <http://e/o> .\n").is_err());
    }

    #[test]
    fn ntriples_roundtrip() {
        let src = "@prefix e: <http://e/> .\ne:s e:p e:o .\ne:s e:p \"v\"@en .\n_:b e:p 42 .\n";
        let g = parse(src).unwrap();
        let nt = to_ntriples(&g);
        let g2 = parse(&nt).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn turtle_serialisation_shrinks() {
        let mut prefixes = PrefixMap::new();
        prefixes.insert("e", "http://e/");
        let g = parse("<http://e/s> <http://e/p> <http://e/o> .\n").unwrap();
        let ttl = to_turtle(&g, &prefixes);
        assert!(ttl.contains("@prefix e: <http://e/> ."));
        assert!(ttl.contains("e:s e:p e:o ."));
        let g2 = parse(&ttl).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn trailing_semicolon_before_dot() {
        let src = "@prefix e: <http://e/> .\ne:s e:p e:o ; .\n";
        let g = parse(src).unwrap();
        assert_eq!(g.len(), 1);
    }
}
