//! Term dictionary: bidirectional interning of [`Term`]s to dense `u32` ids.
//!
//! All hot-path operations in the triple store and the query evaluator work
//! on [`TermId`]s; the dictionary is consulted only at the boundaries
//! (parsing, serialisation, answer rendering). Ids are dense, so parallel
//! `Vec`s can be used for per-term metadata such as [`TermKind`].

use crate::term::{Term, TermKind};
use std::collections::HashMap;

/// A dense identifier for an interned [`Term`].
///
/// Ids are only meaningful relative to the [`TermDict`] that minted them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TermId(pub u32);

impl TermId {
    /// The raw index value.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A bidirectional interner from [`Term`] to [`TermId`].
#[derive(Clone, Default)]
pub struct TermDict {
    terms: Vec<Term>,
    kinds: Vec<TermKind>,
    lookup: HashMap<Term, TermId>,
}

impl TermDict {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a term, returning its id. Idempotent.
    pub fn intern(&mut self, term: &Term) -> TermId {
        if let Some(&id) = self.lookup.get(term) {
            return id;
        }
        let id = TermId(u32::try_from(self.terms.len()).expect("term dictionary overflow"));
        self.terms.push(term.clone());
        self.kinds.push(term.kind());
        self.lookup.insert(term.clone(), id);
        id
    }

    /// Looks up the id of a term without interning it.
    pub fn id(&self, term: &Term) -> Option<TermId> {
        self.lookup.get(term).copied()
    }

    /// Returns the term for an id.
    ///
    /// # Panics
    /// Panics if the id was not minted by this dictionary.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// Returns the kind of the term for an id without touching its payload.
    pub fn kind(&self, id: TermId) -> TermKind {
        self.kinds[id.index()]
    }

    /// Returns `true` iff the id denotes an IRI or literal (certain-answer
    /// eligible, element of `I ∪ L`).
    pub fn is_name(&self, id: TermId) -> bool {
        self.kinds[id.index()] != TermKind::Blank
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Interns every term of `other` into `self` and returns the
    /// translation table from `other`'s ids to `self`'s: entry `i` is the
    /// id in `self` of `other`'s term `i`.
    ///
    /// This is the cross-dictionary bridge federated evaluation builds
    /// on: each peer keeps its own dictionary, the originator absorbs
    /// them once, and per-tuple id translation is then a dense array
    /// lookup instead of a term re-interning.
    pub fn absorb(&mut self, other: &TermDict) -> Vec<TermId> {
        other.terms.iter().map(|t| self.intern(t)).collect()
    }

    /// Iterates over all `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t))
    }
}

impl std::fmt::Debug for TermDict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TermDict")
            .field("len", &self.terms.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = TermDict::new();
        let a1 = d.intern(&Term::iri("http://e/a"));
        let a2 = d.intern(&Term::iri("http://e/a"));
        assert_eq!(a1, a2);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn distinct_terms_get_distinct_ids() {
        let mut d = TermDict::new();
        let a = d.intern(&Term::iri("http://e/a"));
        let b = d.intern(&Term::literal("http://e/a"));
        let c = d.intern(&Term::blank("http://e/a"));
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn roundtrip_term() {
        let mut d = TermDict::new();
        let t = Term::literal("39");
        let id = d.intern(&t);
        assert_eq!(d.term(id), &t);
        assert_eq!(d.id(&t), Some(id));
        assert_eq!(d.id(&Term::literal("40")), None);
    }

    #[test]
    fn kinds_tracked() {
        let mut d = TermDict::new();
        let i = d.intern(&Term::iri("x"));
        let b = d.intern(&Term::blank("y"));
        let l = d.intern(&Term::literal("z"));
        assert_eq!(d.kind(i), TermKind::Iri);
        assert_eq!(d.kind(b), TermKind::Blank);
        assert_eq!(d.kind(l), TermKind::Literal);
        assert!(d.is_name(i));
        assert!(!d.is_name(b));
        assert!(d.is_name(l));
    }

    #[test]
    fn absorb_builds_translation_table() {
        let mut a = TermDict::new();
        a.intern(&Term::iri("shared"));
        let mut b = TermDict::new();
        b.intern(&Term::iri("b-only"));
        b.intern(&Term::iri("shared"));
        let table = a.absorb(&b);
        assert_eq!(table.len(), 2);
        for (id, term) in b.iter() {
            assert_eq!(a.term(table[id.index()]), term);
        }
        // Shared terms map onto the existing id, not a duplicate.
        assert_eq!(table[1], TermId(0));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn iter_in_id_order() {
        let mut d = TermDict::new();
        d.intern(&Term::iri("a"));
        d.intern(&Term::iri("b"));
        let ids: Vec<u32> = d.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
