//! The indexed triple store.
//!
//! A [`Graph`] owns a [`TermDict`] and keeps each triple in three B-tree
//! permutation indexes (SPO, POS, OSP). Every one of the eight
//! bound/unbound shapes of a triple pattern is answered by a contiguous
//! range scan over one of the indexes, which is what the graph-pattern
//! evaluator in `rps-query` builds on.

use crate::dict::{TermDict, TermId};
use crate::error::RdfError;
use crate::term::Term;
use crate::triple::{IdTriple, Triple};
use std::collections::{BTreeSet, HashMap};
use std::ops::RangeInclusive;

const MIN: u32 = u32::MIN;
const MAX: u32 = u32::MAX;

/// An RDF graph (a set of RDF triples) with dictionary-interned terms and
/// three permutation indexes.
#[derive(Clone, Default)]
pub struct Graph {
    dict: TermDict,
    spo: BTreeSet<[u32; 3]>,
    pos: BTreeSet<[u32; 3]>,
    osp: BTreeSet<[u32; 3]>,
    /// Number of triples per predicate id, maintained for selectivity
    /// estimation in the query planner.
    pred_counts: HashMap<TermId, usize>,
    /// Insertion-ordered, append-only log of the triples added to this
    /// graph, powering delta-driven (semi-naive) consumers: "the triples
    /// added since log index `n`" is the window `log_since(n)`. Removing
    /// a triple *tombstones* its entry (see [`Graph::remove_ids`])
    /// instead of erasing it, so log indexes — and outstanding marks —
    /// stay stable across removals.
    log: Vec<IdTriple>,
    /// Tombstone bitset over `log`, one bit per entry. Stays empty until
    /// the first removal, so insert-only consumers pay nothing.
    log_dead: Vec<u64>,
    /// Lazily-built map from a live triple to its log index. Built on the
    /// first removal (one pass over the log) and maintained incrementally
    /// afterwards, making removal O(1) amortised; insert-only workloads
    /// never allocate it.
    log_pos: Option<HashMap<IdTriple, u32>>,
}

fn bit_get(bits: &[u64], i: usize) -> bool {
    bits.get(i / 64).is_some_and(|w| w & (1 << (i % 64)) != 0)
}

fn bit_set(bits: &mut Vec<u64>, i: usize) {
    let word = i / 64;
    if bits.len() <= word {
        bits.resize(word + 1, 0);
    }
    bits[word] |= 1 << (i % 64);
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read access to the term dictionary.
    pub fn dict(&self) -> &TermDict {
        &self.dict
    }

    /// Interns a term in this graph's dictionary.
    pub fn intern(&mut self, term: &Term) -> TermId {
        self.dict.intern(term)
    }

    /// Looks up a term's id without interning.
    pub fn term_id(&self, term: &Term) -> Option<TermId> {
        self.dict.id(term)
    }

    /// Resolves an id to its term.
    pub fn term(&self, id: TermId) -> &Term {
        self.dict.term(id)
    }

    /// Inserts an owned triple, validating RDF positional constraints.
    /// Returns `true` if the triple was not already present.
    pub fn insert(&mut self, triple: &Triple) -> bool {
        let s = self.dict.intern(triple.subject());
        let p = self.dict.intern(triple.predicate());
        let o = self.dict.intern(triple.object());
        self.insert_ids(IdTriple::new(s, p, o))
    }

    /// Inserts a triple given as `(s, p, o)` terms. Validates positions.
    pub fn insert_terms(
        &mut self,
        subject: Term,
        predicate: Term,
        object: Term,
    ) -> Result<bool, RdfError> {
        let t = Triple::new(subject, predicate, object)?;
        Ok(self.insert(&t))
    }

    /// Inserts an interned triple (ids must come from this graph's
    /// dictionary). Returns `true` if newly added.
    pub fn insert_ids(&mut self, t: IdTriple) -> bool {
        let added = self.spo.insert([t.s.0, t.p.0, t.o.0]);
        if added {
            self.pos.insert([t.p.0, t.o.0, t.s.0]);
            self.osp.insert([t.o.0, t.s.0, t.p.0]);
            *self.pred_counts.entry(t.p).or_insert(0) += 1;
            if let Some(pos) = &mut self.log_pos {
                pos.insert(t, self.log.len() as u32);
            }
            self.log.push(t);
        }
        added
    }

    /// The number of log slots so far (insertions, including tombstoned
    /// ones). A snapshot of this value marks a delta window for
    /// [`Graph::log_since`].
    ///
    /// The log is append-only: removals tombstone their entry rather than
    /// erasing it, so indexes never shift and a mark taken before a
    /// removal still bounds exactly the insertions made after it.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// The still-present triples inserted at log index `from` or later,
    /// in insertion order (tombstoned entries are skipped).
    pub fn log_since(&self, from: usize) -> LogWindow<'_> {
        LogWindow {
            log: &self.log,
            dead: &self.log_dead,
            next: from.min(self.log.len()),
        }
    }

    /// The log entry at index `i`, or `None` if it is out of range or
    /// tombstoned by a removal.
    pub fn log_entry(&self, i: usize) -> Option<IdTriple> {
        if i < self.log.len() && !bit_get(&self.log_dead, i) {
            Some(self.log[i])
        } else {
            None
        }
    }

    /// Removes an interned triple. Returns `true` if it was present.
    ///
    /// The triple's insertion-log entry is tombstoned in O(1) amortised
    /// time (the triple→index map is built lazily on the first removal
    /// and maintained incrementally from then on).
    pub fn remove_ids(&mut self, t: IdTriple) -> bool {
        let removed = self.spo.remove(&[t.s.0, t.p.0, t.o.0]);
        if removed {
            self.pos.remove(&[t.p.0, t.o.0, t.s.0]);
            self.osp.remove(&[t.o.0, t.s.0, t.p.0]);
            if let Some(c) = self.pred_counts.get_mut(&t.p) {
                *c -= 1;
                if *c == 0 {
                    self.pred_counts.remove(&t.p);
                }
            }
            if self.log_pos.is_none() {
                // First removal: index the live log entries (each present
                // triple has exactly one non-tombstoned entry).
                let map: HashMap<IdTriple, u32> = self
                    .log
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| !bit_get(&self.log_dead, i))
                    .map(|(i, &entry)| (entry, i as u32))
                    .collect();
                self.log_pos = Some(map);
            }
            let pos = self.log_pos.as_mut().expect("just built");
            let i = pos.remove(&t).expect("present triple has a live log entry") as usize;
            bit_set(&mut self.log_dead, i);
        }
        removed
    }

    /// Removes an owned triple. Returns `true` if it was present.
    pub fn remove(&mut self, triple: &Triple) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.dict.id(triple.subject()),
            self.dict.id(triple.predicate()),
            self.dict.id(triple.object()),
        ) else {
            return false;
        };
        self.remove_ids(IdTriple::new(s, p, o))
    }

    /// Membership test on interned ids.
    pub fn contains_ids(&self, t: IdTriple) -> bool {
        self.spo.contains(&[t.s.0, t.p.0, t.o.0])
    }

    /// Membership test on an owned triple.
    pub fn contains(&self, triple: &Triple) -> bool {
        match (
            self.dict.id(triple.subject()),
            self.dict.id(triple.predicate()),
            self.dict.id(triple.object()),
        ) {
            (Some(s), Some(p), Some(o)) => self.contains_ids(IdTriple::new(s, p, o)),
            _ => false,
        }
    }

    /// Number of triples in the graph.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// Whether the graph has no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Iterates over all triples as interned ids, in SPO order.
    pub fn iter_ids(&self) -> impl Iterator<Item = IdTriple> + '_ {
        self.spo
            .iter()
            .map(|&[s, p, o]| IdTriple::new(TermId(s), TermId(p), TermId(o)))
    }

    /// Iterates over all triples as owned terms, in SPO order.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.iter_ids().map(|t| self.materialise(t))
    }

    /// Reconstructs an owned [`Triple`] from an interned one.
    pub fn materialise(&self, t: IdTriple) -> Triple {
        Triple::new_unchecked(
            self.dict.term(t.s).clone(),
            self.dict.term(t.p).clone(),
            self.dict.term(t.o).clone(),
        )
    }

    /// Matches a triple pattern given as optionally-bound interned ids.
    ///
    /// Every combination of bound positions is served by a contiguous range
    /// scan over one of the three permutation indexes.
    pub fn match_ids(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> MatchIter<'_> {
        let (index, range, perm) = match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                let key = [s.0, p.0, o.0];
                return if self.spo.contains(&key) {
                    MatchIter::single(IdTriple::new(s, p, o))
                } else {
                    MatchIter::empty()
                };
            }
            (Some(s), Some(p), None) => (&self.spo, [s.0, p.0, MIN]..=[s.0, p.0, MAX], Perm::Spo),
            (Some(s), None, None) => (&self.spo, [s.0, MIN, MIN]..=[s.0, MAX, MAX], Perm::Spo),
            (Some(s), None, Some(o)) => (&self.osp, [o.0, s.0, MIN]..=[o.0, s.0, MAX], Perm::Osp),
            (None, Some(p), Some(o)) => (&self.pos, [p.0, o.0, MIN]..=[p.0, o.0, MAX], Perm::Pos),
            (None, Some(p), None) => (&self.pos, [p.0, MIN, MIN]..=[p.0, MAX, MAX], Perm::Pos),
            (None, None, Some(o)) => (&self.osp, [o.0, MIN, MIN]..=[o.0, MAX, MAX], Perm::Osp),
            (None, None, None) => (&self.spo, [MIN; 3]..=[MAX; 3], Perm::Spo),
        };
        MatchIter::range(index, range, perm)
    }

    /// Estimated number of matches for a pattern, used by the planner.
    ///
    /// Fully bound patterns cost 0 or 1; predicate-bound patterns use the
    /// maintained per-predicate counts; subject/object-bound patterns are
    /// estimated optimistically as sqrt of the graph size; unbound patterns
    /// cost the full graph.
    pub fn estimate(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> usize {
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => usize::from(self.contains_ids(IdTriple::new(s, p, o))),
            (None, Some(p), None) => self.pred_counts.get(&p).copied().unwrap_or(0),
            (_, Some(p), _) => {
                // At least one of s/o bound in addition to p: refine the
                // predicate count by an ad-hoc factor.
                let base = self.pred_counts.get(&p).copied().unwrap_or(0);
                (base / 4).max(1).min(base)
            }
            (None, None, None) => self.len(),
            _ => {
                // s and/or o bound, predicate free.
                ((self.len() as f64).sqrt() as usize).max(1)
            }
        }
    }

    /// Number of triples whose predicate is `p`.
    pub fn predicate_count(&self, p: TermId) -> usize {
        self.pred_counts.get(&p).copied().unwrap_or(0)
    }

    /// The set of distinct term ids appearing anywhere in the graph.
    pub fn terms_used(&self) -> BTreeSet<TermId> {
        let mut out = BTreeSet::new();
        for t in self.iter_ids() {
            out.insert(t.s);
            out.insert(t.p);
            out.insert(t.o);
        }
        out
    }

    /// The set of IRIs used in the graph — the *peer schema* of a peer
    /// storing this graph, per Section 2.2 of the paper.
    pub fn iris_used(&self) -> BTreeSet<crate::term::Iri> {
        let mut out = BTreeSet::new();
        for id in self.terms_used() {
            if let Term::Iri(iri) = self.dict.term(id) {
                out.insert(iri.clone());
            }
        }
        out
    }

    /// Unions another graph into this one, re-interning terms. Each
    /// distinct term of `other` is interned once (memoised by its id),
    /// not once per occurrence.
    pub fn merge(&mut self, other: &Graph) {
        let mut memo: Vec<Option<TermId>> = vec![None; other.dict.len()];
        let mut map = |dict: &mut TermDict, id: TermId| match memo[id.index()] {
            Some(mapped) => mapped,
            None => {
                let mapped = dict.intern(other.term(id));
                memo[id.index()] = Some(mapped);
                mapped
            }
        };
        for t in other.iter_ids() {
            let s = map(&mut self.dict, t.s);
            let p = map(&mut self.dict, t.p);
            let o = map(&mut self.dict, t.o);
            self.insert_ids(IdTriple::new(s, p, o));
        }
    }

    /// Builds a graph from owned triples.
    pub fn from_triples<I: IntoIterator<Item = Triple>>(triples: I) -> Self {
        let mut g = Graph::new();
        for t in triples {
            g.insert(&t);
        }
        g
    }

    /// Returns `true` iff every triple of `self` occurs in `other`
    /// (set inclusion on owned triples; dictionaries may differ).
    pub fn is_subgraph_of(&self, other: &Graph) -> bool {
        self.iter().all(|t| other.contains(&t))
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("triples", &self.len())
            .field("terms", &self.dict.len())
            .finish()
    }
}

impl PartialEq for Graph {
    /// Graphs compare equal iff they contain the same set of owned triples
    /// (dictionaries and id assignments are irrelevant).
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.is_subgraph_of(other)
    }
}

impl Eq for Graph {}

/// A delta window over the insertion log: iterates the still-present
/// triples inserted at or after some log index, in insertion order
/// (see [`Graph::log_since`]). `Clone` is cheap — consumers that pass
/// over the window several times (e.g. one pass per pivot conjunct in
/// delta query evaluation) can re-clone the window instead of collecting
/// it.
#[derive(Clone)]
pub struct LogWindow<'g> {
    log: &'g [IdTriple],
    dead: &'g [u64],
    next: usize,
}

impl LogWindow<'_> {
    /// `true` iff the window holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.clone().next().is_none()
    }
}

impl Iterator for LogWindow<'_> {
    type Item = IdTriple;

    fn next(&mut self) -> Option<IdTriple> {
        while self.next < self.log.len() {
            let i = self.next;
            self.next += 1;
            if !bit_get(self.dead, i) {
                return Some(self.log[i]);
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.log.len() - self.next))
    }
}

enum Perm {
    Spo,
    Pos,
    Osp,
}

impl Perm {
    fn unpermute(&self, key: [u32; 3]) -> IdTriple {
        let [a, b, c] = key;
        match self {
            Perm::Spo => IdTriple::new(TermId(a), TermId(b), TermId(c)),
            Perm::Pos => IdTriple::new(TermId(c), TermId(a), TermId(b)),
            Perm::Osp => IdTriple::new(TermId(b), TermId(c), TermId(a)),
        }
    }
}

/// Iterator over the triples matching a pattern.
pub struct MatchIter<'g> {
    inner: MatchIterInner<'g>,
}

enum MatchIterInner<'g> {
    Empty,
    Single(Option<IdTriple>),
    Range {
        iter: std::collections::btree_set::Range<'g, [u32; 3]>,
        perm: Perm,
    },
}

impl<'g> MatchIter<'g> {
    fn empty() -> Self {
        MatchIter {
            inner: MatchIterInner::Empty,
        }
    }

    fn single(t: IdTriple) -> Self {
        MatchIter {
            inner: MatchIterInner::Single(Some(t)),
        }
    }

    fn range(index: &'g BTreeSet<[u32; 3]>, range: RangeInclusive<[u32; 3]>, perm: Perm) -> Self {
        MatchIter {
            inner: MatchIterInner::Range {
                iter: index.range(range),
                perm,
            },
        }
    }
}

impl Iterator for MatchIter<'_> {
    type Item = IdTriple;

    fn next(&mut self) -> Option<IdTriple> {
        match &mut self.inner {
            MatchIterInner::Empty => None,
            MatchIterInner::Single(t) => t.take(),
            MatchIterInner::Range { iter, perm } => iter.next().map(|&k| perm.unpermute(k)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut g = Graph::new();
        g.insert_terms(Term::iri("s1"), Term::iri("p1"), Term::iri("o1"))
            .unwrap();
        g.insert_terms(Term::iri("s1"), Term::iri("p1"), Term::iri("o2"))
            .unwrap();
        g.insert_terms(Term::iri("s1"), Term::iri("p2"), Term::iri("o1"))
            .unwrap();
        g.insert_terms(Term::iri("s2"), Term::iri("p1"), Term::iri("o1"))
            .unwrap();
        g.insert_terms(Term::iri("s2"), Term::iri("p2"), Term::literal("lit"))
            .unwrap();
        g
    }

    fn matches(g: &Graph, s: Option<&str>, p: Option<&str>, o: Option<&str>) -> usize {
        let id = |x: Option<&str>| x.map(|v| g.term_id(&Term::iri(v)).unwrap());
        g.match_ids(id(s), id(p), id(o)).count()
    }

    #[test]
    fn insert_is_set_semantics() {
        let mut g = Graph::new();
        let t = Triple::new(Term::iri("s"), Term::iri("p"), Term::iri("o")).unwrap();
        assert!(g.insert(&t));
        assert!(!g.insert(&t));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn all_eight_pattern_shapes() {
        let g = sample();
        assert_eq!(matches(&g, Some("s1"), Some("p1"), Some("o1")), 1);
        assert_eq!(matches(&g, Some("s1"), Some("p1"), None), 2);
        assert_eq!(matches(&g, Some("s1"), None, None), 3);
        assert_eq!(matches(&g, Some("s1"), None, Some("o1")), 2);
        assert_eq!(matches(&g, None, Some("p1"), Some("o1")), 2);
        assert_eq!(matches(&g, None, Some("p1"), None), 3);
        assert_eq!(matches(&g, None, None, Some("o1")), 3);
        assert_eq!(matches(&g, None, None, None), 5);
    }

    #[test]
    fn fully_bound_miss_is_empty() {
        let g = sample();
        assert_eq!(matches(&g, Some("s2"), Some("p1"), Some("o2")), 0);
    }

    #[test]
    fn remove_updates_all_indexes() {
        let mut g = sample();
        let t = Triple::new(Term::iri("s1"), Term::iri("p1"), Term::iri("o1")).unwrap();
        assert!(g.remove(&t));
        assert!(!g.remove(&t));
        assert_eq!(g.len(), 4);
        assert_eq!(matches(&g, Some("s1"), Some("p1"), None), 1);
        assert_eq!(matches(&g, None, Some("p1"), Some("o1")), 1);
        assert_eq!(matches(&g, None, None, Some("o1")), 2);
    }

    #[test]
    fn predicate_counts_maintained() {
        let mut g = sample();
        let p1 = g.term_id(&Term::iri("p1")).unwrap();
        assert_eq!(g.predicate_count(p1), 3);
        let t = Triple::new(Term::iri("s1"), Term::iri("p1"), Term::iri("o1")).unwrap();
        g.remove(&t);
        assert_eq!(g.predicate_count(p1), 2);
    }

    #[test]
    fn merge_reinterns() {
        let mut a = Graph::new();
        a.insert_terms(Term::iri("x"), Term::iri("p"), Term::iri("y"))
            .unwrap();
        let mut b = Graph::new();
        // Interleave so ids in b differ from ids in a for the same terms.
        b.insert_terms(Term::iri("q"), Term::iri("p"), Term::iri("x"))
            .unwrap();
        b.insert_terms(Term::iri("x"), Term::iri("p"), Term::iri("y"))
            .unwrap();
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert!(a.contains(&Triple::new(Term::iri("q"), Term::iri("p"), Term::iri("x")).unwrap()));
    }

    #[test]
    fn graph_equality_ignores_dictionaries() {
        let mut a = Graph::new();
        a.insert_terms(Term::iri("one"), Term::iri("p"), Term::iri("two"))
            .unwrap();
        let mut b = Graph::new();
        b.intern(&Term::iri("padding-term"));
        b.insert_terms(Term::iri("one"), Term::iri("p"), Term::iri("two"))
            .unwrap();
        assert_eq!(a, b);
        b.insert_terms(Term::iri("three"), Term::iri("p"), Term::iri("two"))
            .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn iris_used_excludes_literals_and_blanks() {
        let mut g = Graph::new();
        g.insert_terms(Term::blank("b"), Term::iri("p"), Term::literal("l"))
            .unwrap();
        let iris = g.iris_used();
        assert_eq!(iris.len(), 1);
        assert_eq!(iris.iter().next().unwrap().as_str(), "p");
    }

    #[test]
    fn insertion_log_windows() {
        let mut g = Graph::new();
        g.insert_terms(Term::iri("a"), Term::iri("p"), Term::iri("b"))
            .unwrap();
        let mark = g.log_len();
        assert_eq!(mark, 1);
        g.insert_terms(Term::iri("c"), Term::iri("p"), Term::iri("d"))
            .unwrap();
        // Duplicate insertion does not log.
        g.insert_terms(Term::iri("a"), Term::iri("p"), Term::iri("b"))
            .unwrap();
        assert_eq!(g.log_len(), 2);
        assert_eq!(g.log_since(mark).count(), 1);
        // Removal tombstones the log entry: indexes (and marks) stay
        // stable, but the window skips the removed triple.
        let t = Triple::new(Term::iri("c"), Term::iri("p"), Term::iri("d")).unwrap();
        g.remove(&t);
        assert_eq!(g.log_len(), 2);
        assert!(g.log_since(mark).is_empty());
        assert_eq!(
            g.log_entry(0).unwrap().s,
            g.term_id(&Term::iri("a")).unwrap()
        );
        assert!(g.log_entry(1).is_none());
        assert!(g.log_since(999).is_empty());
        // Re-insertion after removal logs a fresh entry in the window.
        g.insert_terms(Term::iri("c"), Term::iri("p"), Term::iri("d"))
            .unwrap();
        assert_eq!(g.log_since(mark).count(), 1);
        // A second removal exercises the incrementally-maintained map.
        g.remove(&t);
        assert!(g.log_since(mark).is_empty());
    }

    #[test]
    fn estimates_are_sane() {
        let g = sample();
        let p1 = g.term_id(&Term::iri("p1")).unwrap();
        let s1 = g.term_id(&Term::iri("s1")).unwrap();
        assert_eq!(g.estimate(None, Some(p1), None), 3);
        assert_eq!(g.estimate(None, None, None), 5);
        assert!(g.estimate(Some(s1), None, None) >= 1);
        let o1 = g.term_id(&Term::iri("o1")).unwrap();
        assert_eq!(g.estimate(Some(s1), Some(p1), Some(o1)), 1);
    }
}
